"""Synthetic knowledge-base generator.

Produces an Italian banking KB with the statistics the paper reports for
the real one (Section 4):

* **short documents** — a handful of paragraphs, ~250 words on average;
* **topical structure** — each document describes one *topic*, an
  (action, entity) pair carried out through an internal *system*;
* **near-duplicate content** — procedure topics come in 1–3 variants
  (customer segments) sharing almost all of their text, and error documents
  come in families that are "almost identical content except for specific
  error or procedure codes";
* **domain jargon** — internal application names appear prominently;
* **editor metadata** — domain, section, topic tags and keywords, exactly
  the fields the indexing service maps to filterable index fields.

Documents are HTML, ready for the real ingestion flow (parser → chunker →
enrichment → index).  Everything is generated from a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.vocabulary import BankingVocabulary, build_banking_vocabulary
from repro.embeddings.concepts import Concept
from repro.pipeline.store import KbDocument, KnowledgeBaseStore

# Customer-segment variants for near-duplicate procedure documents.
_SEGMENTS = ("clienti privati", "clienti business", "clienti private banking")

# Generic filler vocabulary shared by all documents: these words create the
# realistic lexical overlap between unrelated documents that makes exact
# matching noisy and BM25 non-trivial.
_FILLER_SENTENCES = (
    "La procedura è valida per tutte le filiali del territorio nazionale.",
    "L'operazione deve essere completata entro la giornata contabile.",
    "In caso di dubbi contattare il referente operativo di filiale.",
    "La documentazione deve essere conservata nel fascicolo del cliente.",
    "Il controllo di secondo livello viene svolto dall'ufficio centrale.",
    "Eventuali anomalie vanno segnalate tempestivamente al responsabile.",
    "La funzione è disponibile dal lunedì al venerdì in orario di sportello.",
    "Prima di procedere verificare l'identità del cliente allo sportello.",
    "Il modulo firmato va scansionato e allegato alla pratica.",
    "Le autorizzazioni richieste dipendono dal profilo abilitativo dell'operatore.",
)

_PREREQ_TEMPLATES = (
    "Per {action} {entity} è necessario disporre delle abilitazioni operative sul profilo.",
    "Prima di {action} {entity} verificare che la posizione del cliente sia aggiornata in anagrafe.",
    "L'operatore deve avere completato il corso abilitante per {action} {entity}.",
)

_CLOSING_TEMPLATES = (
    "Al termine dell'operazione il sistema {system} produce la ricevuta da consegnare al cliente.",
    "La conferma dell'avvenuta operazione è visibile in {system} nella sezione esiti.",
    "L'esito viene notificato automaticamente tramite {system} entro pochi minuti.",
)


@dataclass(frozen=True)
class Topic:
    """One procedure topic: an action applied to an entity via a system."""

    topic_id: str
    action: Concept
    entity: Concept
    system: Concept
    domain: str
    section: str


@dataclass(frozen=True)
class GeneratedDocument:
    """A KB document plus the generation ground truth."""

    document: KbDocument
    topic_id: str
    key_sentence: str
    error_code: str = ""

    @property
    def doc_id(self) -> str:
        """Shortcut to the underlying document id."""
        return self.document.doc_id


@dataclass(frozen=True)
class KbGeneratorConfig:
    """Sizing and randomness knobs of the generator.

    The defaults give a few hundred documents — large enough for the
    retrieval dynamics to be realistic, small enough for a fast test suite.
    The benchmarks scale ``num_topics`` up.
    """

    #: Requested topic count; silently capped at the number of available
    #: (action, entity) pairs in the vocabulary (~700 with the stock lists).
    num_topics: int = 220
    max_variants_per_topic: int = 3
    error_families: int = 14
    codes_per_family: int = 8
    seed: int = 1234
    base_time: float = 0.0


@dataclass
class SyntheticKb:
    """The generated corpus: documents, topics, and lookup structures."""

    vocabulary: BankingVocabulary
    topics: dict[str, Topic] = field(default_factory=dict)
    documents: list[GeneratedDocument] = field(default_factory=list)
    docs_by_topic: dict[str, list[str]] = field(default_factory=dict)
    docs_by_entity: dict[str, list[str]] = field(default_factory=dict)
    docs_by_system: dict[str, list[str]] = field(default_factory=dict)
    doc_by_error_code: dict[str, str] = field(default_factory=dict)

    def store(self) -> KnowledgeBaseStore:
        """Load every document into a fresh :class:`KnowledgeBaseStore`."""
        store = KnowledgeBaseStore()
        for generated in self.documents:
            store.put(generated.document)
        return store

    def document(self, doc_id: str) -> GeneratedDocument:
        """Find a generated document by id."""
        for generated in self.documents:
            if generated.doc_id == doc_id:
                return generated
        raise KeyError(doc_id)


class KbGenerator:
    """Deterministic generator of :class:`SyntheticKb` corpora."""

    def __init__(self, config: KbGeneratorConfig | None = None) -> None:
        self.config = config or KbGeneratorConfig()
        self._rng = random.Random(self.config.seed)
        self._vocabulary = build_banking_vocabulary()

    def generate(self) -> SyntheticKb:
        """Generate the full corpus (procedure topics + error families)."""
        kb = SyntheticKb(vocabulary=self._vocabulary)
        self._generate_procedure_documents(kb)
        self._generate_error_documents(kb)
        return kb

    # -- procedure documents ------------------------------------------------

    def _generate_procedure_documents(self, kb: SyntheticKb) -> None:
        rng = self._rng
        vocabulary = self._vocabulary
        pairs = [
            (action, entity) for entity in vocabulary.entities for action in vocabulary.actions
        ]
        rng.shuffle(pairs)
        pairs = pairs[: self.config.num_topics]

        for number, (action, entity) in enumerate(pairs):
            system = vocabulary.systems[rng.randrange(len(vocabulary.systems))]
            topic = Topic(
                topic_id=f"topic-{number:04d}",
                action=action,
                entity=entity,
                system=system,
                domain=entity.domain,
                section=f"sezione-{entity.domain}",
            )
            kb.topics[topic.topic_id] = topic

            variants = 1 + rng.randrange(self.config.max_variants_per_topic)
            key_sentence = self._key_sentence(topic)
            for variant in range(variants):
                generated = self._procedure_document(topic, variant, key_sentence, rng)
                self._register(kb, generated, topic)

    def _key_sentence(self, topic: Topic) -> str:
        return (
            f"Per {topic.action.canonical} {topic.entity.canonical} occorre accedere a "
            f"{topic.system.canonical}, selezionare la funzione dedicata e confermare "
            f"l'operazione con le proprie credenziali."
        )

    def _procedure_document(
        self, topic: Topic, variant: int, key_sentence: str, rng: random.Random
    ) -> GeneratedDocument:
        segment = _SEGMENTS[variant % len(_SEGMENTS)]
        action = topic.action.canonical
        entity = topic.entity.canonical
        system = topic.system.canonical

        title = f"{action.capitalize()} {entity} tramite {system}"
        if variant > 0:
            title += f" ({segment})"

        # Cross-references to sibling procedures: real KB pages point at the
        # other operations on the same product, which injects competing
        # action terms into every document (a major source of retrieval
        # confusion in the real system).
        vocabulary = self._vocabulary
        other_actions = [
            a.canonical for a in vocabulary.actions if a.concept_id != topic.action.concept_id
        ]
        rng.shuffle(other_actions)
        cross_reference = (
            f"Per {other_actions[0]}, {other_actions[1]}, {other_actions[2]} o "
            f"{other_actions[3]} {entity} consultare le pagine dedicate; la presente "
            f"guida riguarda esclusivamente come {action} {entity}."
        )

        paragraphs = [
            f"Questa pagina descrive la procedura per {action} {entity} "
            f"tramite l'applicativo {system}, riservata ai {segment}.",
            # Ubiquitous help-page boilerplate: generic verbs that appear in
            # nearly every page are what makes vague questions match *many*
            # documents in the legacy exact-match engine.
            "Questa guida aiuta a gestire la pratica del cliente e a procedere "
            "con l'operazione richiesta in modo corretto.",
            _PREREQ_TEMPLATES[rng.randrange(len(_PREREQ_TEMPLATES))].format(
                action=action, entity=entity
            ),
            key_sentence,
            f"All'interno di {system} aprire la sezione '{entity}' e compilare i campi "
            f"richiesti; il sistema propone in automatico i dati anagrafici del cliente.",
            cross_reference,
            _CLOSING_TEMPLATES[rng.randrange(len(_CLOSING_TEMPLATES))].format(system=system),
        ]
        # 1-3 shared filler paragraphs create realistic cross-document overlap.
        for _ in range(1 + rng.randrange(3)):
            paragraphs.append(_FILLER_SENTENCES[rng.randrange(len(_FILLER_SENTENCES))])
        rng.shuffle(paragraphs[3:])

        doc_id = f"kb/{topic.topic_id}/v{variant}"
        html = _render_html(title, paragraphs)
        document = KbDocument(
            doc_id=doc_id,
            html=html,
            domain=topic.domain,
            section=topic.section,
            topic=topic.entity.concept_id,
            keywords=(topic.entity.canonical, topic.action.canonical, system),
            modified_at=self.config.base_time,
        )
        return GeneratedDocument(document=document, topic_id=topic.topic_id, key_sentence=key_sentence)

    # -- error documents -------------------------------------------------------

    def _generate_error_documents(self, kb: SyntheticKb) -> None:
        rng = self._rng
        vocabulary = self._vocabulary
        for family in range(self.config.error_families):
            system = vocabulary.systems[family % len(vocabulary.systems)]
            entity = vocabulary.entities[rng.randrange(len(vocabulary.entities))]
            base_code = 1000 + family * 100
            family_cause = (
                f"L'errore si verifica quando la sessione di {system.canonical} scade durante "
                f"un'operazione su {entity.canonical}."
            )
            for offset in range(self.config.codes_per_family):
                code = f"ERR-{base_code + offset}"
                key_sentence = (
                    f"Per risolvere l'errore {code} chiudere la sessione di {system.canonical}, "
                    f"attendere due minuti e ripetere l'operazione su {entity.canonical}."
                )
                title = f"Errore {code} in {system.canonical}"
                paragraphs = [
                    f"Il codice {code} è un errore applicativo di {system.canonical}.",
                    family_cause,
                    key_sentence,
                    "Se il problema persiste aprire un ticket informatico al supporto tecnico "
                    "indicando il codice errore e l'orario dell'operazione.",
                    _FILLER_SENTENCES[rng.randrange(len(_FILLER_SENTENCES))],
                ]
                doc_id = f"kb/errors/{code}"
                document = KbDocument(
                    doc_id=doc_id,
                    html=_render_html(title, paragraphs),
                    domain="technical_topics",
                    section="sezione-errori",
                    topic=f"errori_{system.concept_id}",
                    keywords=(code, system.canonical),
                    modified_at=self.config.base_time,
                )
                generated = GeneratedDocument(
                    document=document,
                    topic_id=f"error-{code}",
                    key_sentence=key_sentence,
                    error_code=code,
                )
                kb.documents.append(generated)
                kb.docs_by_topic.setdefault(generated.topic_id, []).append(doc_id)
                kb.docs_by_system.setdefault(system.concept_id, []).append(doc_id)
                kb.doc_by_error_code[code] = doc_id

    # -- shared ------------------------------------------------------------------

    def _register(self, kb: SyntheticKb, generated: GeneratedDocument, topic: Topic) -> None:
        kb.documents.append(generated)
        kb.docs_by_topic.setdefault(topic.topic_id, []).append(generated.doc_id)
        kb.docs_by_entity.setdefault(topic.entity.concept_id, []).append(generated.doc_id)
        kb.docs_by_system.setdefault(topic.system.concept_id, []).append(generated.doc_id)


def _render_html(title: str, paragraphs: list[str]) -> str:
    body = "\n".join(f"    <p>{paragraph}</p>" for paragraph in paragraphs)
    return (
        "<html>\n"
        f"  <head><title>{title}</title></head>\n"
        "  <body>\n"
        f"    <h1>{title}</h1>\n"
        f"{body}\n"
        "  </body>\n"
        "</html>\n"
    )
