"""English banking vocabulary — the multilingual future-work demo.

Section 11: "We plan to capitalize on the success of UniAsk […] to adapt
our system to other languages and other use cases."  This module is the
adaptation recipe in miniature: a compact English concept vocabulary with
the same three-class structure (entities / actions / jargon systems) used
by the Italian deployment, assembled on the English language pack
(:mod:`repro.text.english`).  Every language-specific piece of the stack —
analyzer, lexicon, embedder, LLM answer templates — accepts these as
drop-in replacements; nothing else changes.
"""

from __future__ import annotations

from repro.corpus.vocabulary import BankingVocabulary
from repro.embeddings.concepts import Concept, ConceptLexicon
from repro.text.english import english_analyzer

# (concept_id, canonical form, synonyms, domain)
_ENTITY_ROWS: list[tuple[str, str, tuple[str, ...], str]] = [
    ("wire_transfer", "wire transfer", ("funds remittance", "SEPA payment order"), "banking_applications"),
    ("checking_account", "checking account", ("current deposit relationship", "demand deposit"), "banking_applications"),
    ("credit_card", "credit card", ("revolving card", "charge plate"), "banking_applications"),
    ("debit_card", "debit card", ("cash withdrawal plastic", "ATM badge"), "banking_applications"),
    ("mortgage", "mortgage loan", ("home financing", "property lending"), "banking_applications"),
    ("overdraft", "overdraft facility", ("credit line on the relationship", "negative balance allowance"), "banking_applications"),
    ("statement", "account statement", ("periodic balance report", "movement listing"), "banking_applications"),
    ("security_token", "security token", ("OTP keyfob", "one-time code generator"), "technical_topics"),
    ("credentials", "login credentials", ("username and password", "authentication details"), "technical_topics"),
    ("workstation", "branch workstation", ("teller computer", "desk terminal"), "technical_topics"),
    ("printer", "network printer", ("shared printing device", "floor multifunction unit"), "technical_topics"),
    ("aml_check", "anti money laundering check", ("customer due diligence", "AML screening"), "governance"),
    ("complaint", "customer complaint", ("client grievance", "formal dissatisfaction notice"), "governance"),
    ("expense_report", "expense report", ("travel reimbursement claim", "business trip costs form"), "general_processes"),
    ("payslip", "payslip", ("salary slip", "monthly remuneration summary"), "general_processes"),
    ("vacation_plan", "vacation plan", ("annual leave schedule", "holiday calendar"), "general_processes"),
]

_ACTION_ROWS: list[tuple[str, str, tuple[str, ...]]] = [
    ("act_activate", "activate", ("enable", "switch on")),
    ("act_block", "block", ("suspend", "freeze")),
    ("act_request", "request", ("apply for", "submit a demand for")),
    ("act_renew", "renew", ("extend", "prolong")),
    ("act_update", "update", ("amend", "modify")),
    ("act_close", "close", ("terminate", "wind down")),
]

_SYSTEM_NAMES = ("TellerDesk", "CardSuite", "LoanTrack", "HelpPoint", "PayRollNet")


def build_english_vocabulary() -> BankingVocabulary:
    """Assemble the English vocabulary on the English analysis chain."""
    entities = tuple(
        Concept(concept_id=cid, canonical=canonical, synonyms=synonyms, domain=domain)
        for cid, canonical, synonyms, domain in _ENTITY_ROWS
    )
    actions = tuple(
        Concept(concept_id=cid, canonical=canonical, synonyms=synonyms, domain="action")
        for cid, canonical, synonyms in _ACTION_ROWS
    )
    systems = tuple(
        Concept(
            concept_id=f"sys_{name.lower()}",
            canonical=name,
            synonyms=(),
            domain="system",
        )
        for name in _SYSTEM_NAMES
    )
    lexicon = ConceptLexicon(
        list(entities) + list(actions) + list(systems),
        analyzer=english_analyzer(remove_stopwords=True, apply_stemming=False),
    )
    return BankingVocabulary(entities=entities, actions=actions, systems=systems, lexicon=lexicon)


def build_english_lexicon() -> ConceptLexicon:
    """Just the English concept lexicon."""
    return build_english_vocabulary().lexicon
