"""Query-log simulation.

The paper's keyword dataset is sampled "among the frequent queries in the
log of the previous system", spanning one year of traffic.  This module
simulates such a log: keyword queries with a Zipf-like popularity profile
and timestamps spread over the log period, supporting the two operations
the paper performs on it — sampling frequent queries (keyword dataset,
Section 7) and listing the most frequent ones (UAT composition, Section 8).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LogEntry:
    """One logged search."""

    query: str
    timestamp: float


@dataclass
class QueryLog:
    """An append-only search log with frequency queries."""

    entries: list[LogEntry] = field(default_factory=list)

    def add(self, query: str, timestamp: float) -> None:
        """Record one search."""
        self.entries.append(LogEntry(query=query, timestamp=timestamp))

    def __len__(self) -> int:
        return len(self.entries)

    def counts(self) -> Counter[str]:
        """Query → occurrence count."""
        return Counter(entry.query for entry in self.entries)

    def most_frequent(self, n: int) -> list[str]:
        """The *n* most frequent distinct queries, ties broken alphabetically."""
        ranked = sorted(self.counts().items(), key=lambda pair: (-pair[1], pair[0]))
        return [query for query, _ in ranked[:n]]

    def sample_frequent(self, n: int, rng: random.Random, min_count: int = 2) -> list[str]:
        """Randomly sample *n* distinct queries among the frequent ones."""
        frequent = [query for query, count in self.counts().items() if count >= min_count]
        frequent.sort()
        rng.shuffle(frequent)
        return frequent[:n]


def simulate_query_log(
    query_pool: list[str],
    total_searches: int,
    seed: int = 99,
    period_seconds: float = 365 * 24 * 3600.0,
    zipf_exponent: float = 1.1,
) -> QueryLog:
    """Generate a year-long log over *query_pool* with Zipf popularity.

    The i-th query of the pool (0-based) receives weight ``1/(i+1)^s``;
    timestamps are uniform over the period.
    """
    if not query_pool:
        raise ValueError("query_pool must not be empty")
    if total_searches < 0:
        raise ValueError("total_searches must be non-negative")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** zipf_exponent for rank in range(len(query_pool))]
    log = QueryLog()
    for _ in range(total_searches):
        query = rng.choices(query_pool, weights=weights, k=1)[0]
        log.add(query, timestamp=rng.uniform(0.0, period_seconds))
    return log
