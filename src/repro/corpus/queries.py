"""Query dataset generation.

Builds the synthetic equivalents of the paper's evaluation datasets
(Sections 7–8), with ground truth attached at generation time:

* **human dataset** — natural-language questions authored "by experts":
  each question targets one topic and phrases it with a mix of canonical
  terms and synonyms/jargon paraphrases (the mix is configurable; its
  default is calibrated so the legacy exact-match engine answers roughly
  the reported ~19% of them).  Ground truth: the topic's near-duplicate
  documents and the topic's key sentence as reference answer.
* **keyword dataset** — keyword-style queries sampled from a simulated
  one-year log of the previous system.
* **corner cases** — out-of-scope and risk-sensitive questions (Section 8).
* **error-code queries**, **special cases** (case variations, missing
  words, duplicates) and the composed **UAT dataset** of 210 questions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.corpus.generator import SyntheticKb, Topic
from repro.corpus.log import QueryLog, simulate_query_log
from repro.text.similarity import jaccard

#: Query kinds.
KIND_HUMAN = "human"
KIND_KEYWORD = "keyword"
KIND_OUT_OF_SCOPE = "out_of_scope"
KIND_ERROR_CODE = "error_code"
KIND_SPECIAL = "special"
KIND_UNANSWERABLE = "unanswerable"
KIND_MULTI_HOP = "multi_hop"
KIND_CONVERSATIONAL = "conversational"
KIND_FOLLOW_UP = "follow_up"


@dataclass(frozen=True)
class LabeledQuery:
    """One evaluation query with its ground truth.

    Attributes:
        query_id: unique identifier within its dataset.
        text: the query string as a user would type it.
        kind: one of the ``KIND_*`` constants.
        relevant_docs: ids of the ground-truth relevant documents (empty
            for out-of-scope questions).
        answer: reference natural-language answer (human questions only).
        topic_id: generating topic, for error analysis.
    """

    query_id: str
    text: str
    kind: str
    relevant_docs: frozenset[str] = frozenset()
    answer: str = ""
    topic_id: str = ""


# Question scaffolds.  ``{a}`` = action surface form, ``{e}`` = entity
# surface form.  Scaffolds marked "plain" add no content words beyond the
# action/entity, so the legacy engine can match them when canonical forms
# are used; the others add words that may or may not occur in documents.
_PLAIN_TEMPLATES = (
    "Come posso {a} {e}?",
    "{a} {e}: come si fa?",
    "Devo {a} {e}, come devo fare?",
)
_RICH_TEMPLATES = (
    "Quali sono i passaggi operativi per {a} {e} per un cliente?",
    "Dove trovo le istruzioni per {a} {e} in filiale?",
    "È previsto un iter autorizzativo per {a} {e}?",
    "Un collega mi chiede come {a} {e}: qual è la prassi corretta?",
    "Qual è la procedura per {a} {e}?",
)

_OUT_OF_SCOPE_QUESTIONS = (
    "Che tempo farà domani a Milano?",
    "Chi ha vinto il campionato di calcio quest'anno?",
    "Puoi consigliarmi un ristorante vicino all'ufficio?",
    "Qual è la ricetta della carbonara?",
    "Quanto costa un biglietto del treno per Roma?",
    "Raccontami una barzelletta divertente.",
    "Qual è la capitale dell'Australia?",
    "Come si allena una maratona?",
    "Consigli per investire i miei risparmi personali in criptovalute?",
    "Scrivi una poesia sull'autunno.",
    "Qual è il senso della vita?",
    "Come posso convincere il mio capo a darmi un aumento?",
)


#: Generic verbs users substitute for the precise action when they do not
#: know the official name of the operation.
_GENERIC_VERBS = ("gestire", "sistemare", "procedere con", "occuparmi di")

#: Vague objects users substitute for the entity in action-only questions.
_VAGUE_OBJECTS = ("la pratica del cliente", "questa operazione", "la richiesta ricevuta")

#: Trailing situational details real users append to their questions.  The
#: detail words occur in *some* KB pages (they come from the shared filler
#: vocabulary) but usually not in the page that answers the question — so a
#: conjunctive exact-match engine gets dragged onto the wrong documents.
_DETAIL_SUFFIXES = (
    " Il responsabile della filiale deve verificare?",
    " Il modulo firmato va allegato alla pratica?",
    " La documentazione va conservata nel fascicolo?",
    " Le anomalie vanno segnalate al referente?",
    " Il controllo di secondo livello viene svolto in filiale?",
)


@dataclass(frozen=True)
class HumanDatasetConfig:
    """Knobs of the human-question generator.

    Questions are drawn from four realistic *modes*, mirroring the failure
    analysis of Section 8:

    * ``specific`` — the question names both the action and the entity
      (possibly via synonyms);
    * ``vague_action`` — the entity is named but the action is a generic
      verb ("gestire", "sistemare"), so sibling procedures compete;
    * ``action_only`` — the action is named but the object is vague
      ("la pratica del cliente"), so every entity competes;
    * ``oblique`` — the question leans on working context and names a
      *different* entity than the one actually needed, the hardest case.

    ``p_canonical_action`` / ``p_canonical_entity`` control how often the
    question uses the documents' own canonical term instead of a synonym;
    their product bounds how often a pure exact-match engine can succeed.
    """

    num_questions: int = 2700
    p_canonical_action: float = 0.60
    p_canonical_entity: float = 0.45
    p_plain_template: float = 0.55
    p_vague_action: float = 0.22
    p_action_only: float = 0.10
    p_oblique: float = 0.13
    p_extra_detail: float = 0.45
    p_inappropriate: float = 0.005
    seed: int = 2024


def generate_human_dataset(kb: SyntheticKb, config: HumanDatasetConfig | None = None) -> list[LabeledQuery]:
    """Author natural-language questions with ground-truth docs and answers."""
    config = config or HumanDatasetConfig()
    rng = random.Random(config.seed)
    topics = [t for t in kb.topics.values()]
    if not topics:
        raise ValueError("the knowledge base has no topics")

    entities = kb.vocabulary.entities
    queries: list[LabeledQuery] = []
    for number in range(config.num_questions):
        topic = topics[rng.randrange(len(topics))]
        action_form = _pick_form(topic.action, config.p_canonical_action, rng)
        entity_form = _pick_form(topic.entity, config.p_canonical_entity, rng)

        roll = rng.random()
        if roll < config.p_oblique:
            distractor = entities[rng.randrange(len(entities))]
            text = (
                f"Sto seguendo {distractor.canonical} per un cliente: come posso "
                f"{action_form} anche l'altro prodotto che ha in essere?"
            )
        elif roll < config.p_oblique + config.p_action_only:
            vague_object = _VAGUE_OBJECTS[rng.randrange(len(_VAGUE_OBJECTS))]
            text = f"Come posso {action_form} {vague_object}?"
        elif roll < config.p_oblique + config.p_action_only + config.p_vague_action:
            generic = _GENERIC_VERBS[rng.randrange(len(_GENERIC_VERBS))]
            text = f"Devo {generic} {entity_form} per un cliente, come devo procedere?"
        else:
            if rng.random() < config.p_plain_template:
                template = _PLAIN_TEMPLATES[rng.randrange(len(_PLAIN_TEMPLATES))]
            else:
                template = _RICH_TEMPLATES[rng.randrange(len(_RICH_TEMPLATES))]
            text = template.format(a=action_form, e=entity_form)
        if rng.random() < config.p_extra_detail:
            text += _DETAIL_SUFFIXES[rng.randrange(len(_DETAIL_SUFFIXES))]
        if rng.random() < config.p_inappropriate:
            # A handful of real questions vent frustration in terms the
            # content filter screens (the paper's 0.5% filtered share).
            text = f"Questo stupido applicativo non funziona mai: {text}"
        relevant = frozenset(kb.docs_by_topic.get(topic.topic_id, ()))
        key_sentence = _topic_key_sentence(kb, topic)
        queries.append(
            LabeledQuery(
                query_id=f"human-{number:05d}",
                text=text,
                kind=KIND_HUMAN,
                relevant_docs=relevant,
                answer=key_sentence,
                topic_id=topic.topic_id,
            )
        )
    return queries


def _pick_form(concept, p_canonical: float, rng: random.Random) -> str:
    if not concept.synonyms or rng.random() < p_canonical:
        return concept.canonical
    return concept.synonyms[rng.randrange(len(concept.synonyms))]


def _topic_key_sentence(kb: SyntheticKb, topic: Topic) -> str:
    doc_ids = kb.docs_by_topic.get(topic.topic_id, [])
    if not doc_ids:
        return ""
    return kb.document(doc_ids[0]).key_sentence


# -- keyword dataset -----------------------------------------------------------


@dataclass(frozen=True)
class KeywordDatasetConfig:
    """Knobs of the keyword-query generator."""

    num_queries: int = 800
    log_searches: int = 20_000
    max_relevant: int = 4
    seed: int = 4242


def keyword_query_pool(kb: SyntheticKb) -> list[tuple[str, frozenset[str]]]:
    """All keyword queries employees of the old system would type.

    Three families, in decreasing popularity: bare entity terms, internal
    system names, and "entity action" two-term queries.  Each query carries
    the ground-truth documents a domain expert would link.
    """
    pool: list[tuple[str, frozenset[str]]] = []
    for entity_id, doc_ids in sorted(kb.docs_by_entity.items()):
        entity = kb.vocabulary.lexicon.get(entity_id)
        pool.append((entity.canonical, frozenset(doc_ids[:4])))
    for system_id, doc_ids in sorted(kb.docs_by_system.items()):
        system = kb.vocabulary.lexicon.get(system_id)
        pool.append((system.canonical, frozenset(doc_ids[:4])))
    for topic in kb.topics.values():
        doc_ids = kb.docs_by_topic.get(topic.topic_id, [])
        if doc_ids:
            pool.append(
                (f"{topic.entity.canonical} {topic.action.canonical}", frozenset(doc_ids))
            )
    return pool


def generate_keyword_dataset(
    kb: SyntheticKb, config: KeywordDatasetConfig | None = None
) -> tuple[list[LabeledQuery], QueryLog]:
    """Sample keyword queries from a simulated year-long log.

    Returns the labeled dataset and the log it was sampled from (the log is
    reused by the UAT composition).
    """
    config = config or KeywordDatasetConfig()
    rng = random.Random(config.seed)
    pool = keyword_query_pool(kb)
    truth = {text: docs for text, docs in pool}
    log = simulate_query_log(
        [text for text, _ in pool], total_searches=config.log_searches, seed=config.seed
    )
    sampled = log.sample_frequent(config.num_queries, rng)
    queries = [
        LabeledQuery(
            query_id=f"keyword-{number:05d}",
            text=text,
            kind=KIND_KEYWORD,
            relevant_docs=frozenset(list(truth[text])[: config.max_relevant]),
        )
        for number, text in enumerate(sampled)
    ]
    return queries, log


# -- corner cases, error codes, special cases ---------------------------------


def generate_unanswerable_queries(
    kb: SyntheticKb, count: int = 50, seed: int = 66
) -> list[LabeledQuery]:
    """Banking enquiries the knowledge base cannot answer.

    Built from (action, entity) pairs that exist in the vocabulary but have
    **no page** in the KB — the enquiries behind the tickets no search
    system can prevent (the KB itself is incomplete; the paper's feedback
    loop exists to find and fill exactly these gaps).
    """
    rng = random.Random(seed)
    covered = {(t.action.concept_id, t.entity.concept_id) for t in kb.topics.values()}
    vocabulary = kb.vocabulary
    missing = [
        (action, entity)
        for entity in vocabulary.entities
        for action in vocabulary.actions
        if (action.concept_id, entity.concept_id) not in covered
    ]
    rng.shuffle(missing)
    queries = []
    for number, (action, entity) in enumerate(missing[:count]):
        queries.append(
            LabeledQuery(
                query_id=f"unans-{number:04d}",
                text=f"Come posso {action.canonical} {entity.canonical}?",
                kind=KIND_UNANSWERABLE,
            )
        )
    return queries


def generate_out_of_scope_queries(count: int = 10, seed: int = 77) -> list[LabeledQuery]:
    """Out-of-scope corner cases used to test guardrail triggering."""
    rng = random.Random(seed)
    questions = list(_OUT_OF_SCOPE_QUESTIONS)
    rng.shuffle(questions)
    picked = (questions * ((count // len(questions)) + 1))[:count]
    return [
        LabeledQuery(query_id=f"oos-{number:03d}", text=text, kind=KIND_OUT_OF_SCOPE)
        for number, text in enumerate(picked)
    ]


def generate_error_code_queries(kb: SyntheticKb, count: int = 20, seed: int = 88) -> list[LabeledQuery]:
    """Error-code lookups randomly picked from the SMEs' list (Section 8)."""
    rng = random.Random(seed)
    codes = sorted(kb.doc_by_error_code)
    rng.shuffle(codes)
    queries = []
    for number, code in enumerate(codes[:count]):
        text = code if number % 2 == 0 else f"errore {code}"
        queries.append(
            LabeledQuery(
                query_id=f"errq-{number:03d}",
                text=text,
                kind=KIND_ERROR_CODE,
                relevant_docs=frozenset({kb.doc_by_error_code[code]}),
            )
        )
    return queries


def generate_special_cases(base: list[LabeledQuery], count: int = 10, seed: int = 55) -> list[LabeledQuery]:
    """Lower/upper case, missing-word and duplicate variants of real queries."""
    if not base:
        return []
    rng = random.Random(seed)
    variants: list[LabeledQuery] = []
    mutations = ("upper", "lower", "missing", "duplicate")
    for number in range(count):
        source = base[rng.randrange(len(base))]
        mutation = mutations[number % len(mutations)]
        if mutation == "upper":
            text = source.text.upper()
        elif mutation == "lower":
            text = source.text.lower()
        elif mutation == "missing":
            words = source.text.split()
            if len(words) > 2:
                words.pop(rng.randrange(len(words)))
            text = " ".join(words)
        else:
            text = source.text
        variants.append(
            replace(
                source,
                query_id=f"special-{number:03d}",
                text=text,
                kind=KIND_SPECIAL,
            )
        )
    return variants


# -- agentic-routing datasets (multi-hop, conversational, follow-up) -----------

_CONVERSATIONAL_MESSAGES = (
    "Ciao!",
    "Buongiorno",
    "Buonasera",
    "Salve",
    "Grazie mille",
    "Ti ringrazio",
    "Perfetto grazie",
    "Chi sei?",
    "Cosa sai fare?",
    "Come funzioni?",
)

#: Short anaphoric follow-up turns (all ≤ 12 words, all opening with a
#: connective the intent classifier keys on).
_FOLLOW_UP_TURNS = (
    "E per i clienti business?",
    "E se il cliente è minorenne?",
    "Anche per il segmento private?",
    "Invece per le filiali estere?",
    "Quindi serve l'autorizzazione del responsabile?",
    "Lo stesso vale per i clienti retail?",
)


def _multi_hop_fragment(topic: Topic) -> str:
    """The "{action} {entity}" phrase of one comparison side."""
    return f"{topic.action.canonical} {topic.entity.canonical}"


def generate_multi_hop_queries(
    kb: SyntheticKb, count: int = 20, seed: int = 99
) -> list[LabeledQuery]:
    """Comparative two-topic questions for the multi-hop route.

    Each question compares two distinct topics with the "differenza tra X
    e Y" connective the decomposer splits on; topic phrases containing a
    bare " e " are excluded so the split point is unambiguous.  Ground
    truth is the union of both topics' documents.
    """
    rng = random.Random(seed)
    topics = [
        topic
        for topic in sorted(kb.topics.values(), key=lambda t: t.topic_id)
        if " e " not in f" {_multi_hop_fragment(topic)} ".lower()
    ]
    if len(topics) < 2:
        raise ValueError("the knowledge base needs at least 2 splittable topics")
    queries: list[LabeledQuery] = []
    for number in range(count):
        first, second = rng.sample(topics, 2)
        text = (
            f"Qual è la differenza tra {_multi_hop_fragment(first)} "
            f"e {_multi_hop_fragment(second)}?"
        )
        relevant = frozenset(kb.docs_by_topic.get(first.topic_id, ())) | frozenset(
            kb.docs_by_topic.get(second.topic_id, ())
        )
        queries.append(
            LabeledQuery(
                query_id=f"mhop-{number:04d}",
                text=text,
                kind=KIND_MULTI_HOP,
                relevant_docs=relevant,
                topic_id=first.topic_id,
            )
        )
    return queries


def generate_conversational_queries(count: int = 10, seed: int = 111) -> list[LabeledQuery]:
    """Smalltalk/capability messages that should never trigger retrieval."""
    rng = random.Random(seed)
    messages = list(_CONVERSATIONAL_MESSAGES)
    rng.shuffle(messages)
    picked = (messages * ((count // len(messages)) + 1))[:count]
    return [
        LabeledQuery(query_id=f"conv-{number:03d}", text=text, kind=KIND_CONVERSATIONAL)
        for number, text in enumerate(picked)
    ]


@dataclass(frozen=True)
class FollowUpDialogue:
    """A two-turn dialogue: a setup question and its anaphoric follow-up.

    Both turns share the setup topic's ground-truth documents — the
    follow-up is answerable only through the context the setup turn left
    in session memory.
    """

    setup: LabeledQuery
    follow_up: LabeledQuery


def generate_follow_up_dialogues(
    kb: SyntheticKb, count: int = 10, seed: int = 123
) -> list[FollowUpDialogue]:
    """Two-turn dialogues for the follow-up route."""
    rng = random.Random(seed)
    topics = sorted(kb.topics.values(), key=lambda t: t.topic_id)
    if not topics:
        raise ValueError("the knowledge base has no topics")
    dialogues: list[FollowUpDialogue] = []
    for number in range(count):
        topic = topics[rng.randrange(len(topics))]
        relevant = frozenset(kb.docs_by_topic.get(topic.topic_id, ()))
        setup = LabeledQuery(
            query_id=f"fup-{number:03d}-setup",
            text=f"Come posso {topic.action.canonical} {topic.entity.canonical}?",
            kind=KIND_HUMAN,
            relevant_docs=relevant,
            topic_id=topic.topic_id,
        )
        turn = _FOLLOW_UP_TURNS[rng.randrange(len(_FOLLOW_UP_TURNS))]
        follow_up = LabeledQuery(
            query_id=f"fup-{number:03d}",
            text=turn,
            kind=KIND_FOLLOW_UP,
            relevant_docs=relevant,
            topic_id=topic.topic_id,
        )
        dialogues.append(FollowUpDialogue(setup=setup, follow_up=follow_up))
    return dialogues


# -- UAT composition (Section 8) ------------------------------------------------


@dataclass(frozen=True)
class UatDataset:
    """The 210-question User Acceptance Test dataset, by component."""

    log_similar_human: list[LabeledQuery] = field(default_factory=list)
    sme_chosen: list[LabeledQuery] = field(default_factory=list)
    frequent_keywords: list[LabeledQuery] = field(default_factory=list)
    out_of_scope: list[LabeledQuery] = field(default_factory=list)
    error_codes: list[LabeledQuery] = field(default_factory=list)
    special_cases: list[LabeledQuery] = field(default_factory=list)

    @property
    def all_queries(self) -> list[LabeledQuery]:
        """Every UAT query, in the paper's listing order."""
        return (
            self.log_similar_human
            + self.sme_chosen
            + self.frequent_keywords
            + self.out_of_scope
            + self.error_codes
            + self.special_cases
        )


def build_uat_dataset(
    kb: SyntheticKb,
    human_dataset: list[LabeledQuery],
    keyword_validation: list[LabeledQuery],
    log: QueryLog,
    seed: int = 3030,
) -> UatDataset:
    """Compose the UAT dataset per the paper's recipe.

    70 human questions most similar (Jaccard on non-stop terms) to frequent
    log queries; 50 SME-chosen natural-language questions; the 50 most
    frequent keyword queries of the validation set; 10 out-of-scope
    questions; 20 error-code queries; 10 special cases.
    """
    rng = random.Random(seed)

    frequent = log.most_frequent(100)
    scored = [
        (max((jaccard(query.text, log_query) for log_query in frequent), default=0.0), query)
        for query in human_dataset
    ]
    scored.sort(key=lambda pair: (-pair[0], pair[1].query_id))
    log_similar = [query for _, query in scored[:70]]

    remaining = [query for query in human_dataset if query not in log_similar]
    rng.shuffle(remaining)
    sme_chosen = remaining[:50]

    frequency_rank = {text: rank for rank, text in enumerate(log.most_frequent(10_000))}
    keywords_sorted = sorted(
        keyword_validation, key=lambda q: frequency_rank.get(q.text, len(frequency_rank))
    )
    frequent_keywords = keywords_sorted[:50]

    out_of_scope = generate_out_of_scope_queries(10, seed=seed)
    error_codes = generate_error_code_queries(kb, 20, seed=seed)
    special = generate_special_cases(log_similar + frequent_keywords, 10, seed=seed)

    return UatDataset(
        log_similar_human=log_similar,
        sme_chosen=sme_chosen,
        frequent_keywords=frequent_keywords,
        out_of_scope=out_of_scope,
        error_codes=error_codes,
        special_cases=special,
    )
