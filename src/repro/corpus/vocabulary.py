"""Italian banking vocabulary.

The synthetic stand-in for the proprietary UniCredit knowledge base is
built on this vocabulary.  Its essential property mirrors what the paper
reports about the real KB: documents use **canonical terms and in-house
jargon** ("domain-specific jargon, for which comprehensive vocabularies are
not available"), while employees asking natural-language questions use
**synonyms and paraphrases**.  That gap is exactly why the pre-existing
exact-keyword engine fails on natural-language questions and why hybrid
semantic retrieval wins.

Three word classes are defined, each as a list of
:class:`~repro.embeddings.concepts.Concept`:

* **entities** — banking objects and products (bonifico, conto corrente,
  carta di credito, …), each with the canonical form used in documents and
  the synonym forms used in questions;
* **actions** — operations on entities (attivare, bloccare, richiedere, …);
* **systems** — internal application names; pure jargon with no synonyms
  (an employee either knows the name or doesn't), which is what makes
  keyword queries precise.

A *topic* is an (action, entity) pair; the generator assigns each topic a
system and writes one or more documents about it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.concepts import Concept, ConceptLexicon

#: The four topical domains of the paper's KB (Section 1).
DOMAINS = (
    "banking_applications",
    "governance",
    "general_processes",
    "technical_topics",
)

# (concept_id, canonical form, synonyms, domain)
_ENTITY_ROWS: list[tuple[str, str, tuple[str, ...], str]] = [
    ("bonifico", "bonifico", ("trasferimento fondi", "pagamento SEPA", "disposizione di pagamento"), "banking_applications"),
    ("conto_corrente", "conto corrente", ("rapporto di conto", "c/c", "deposito in conto"), "banking_applications"),
    ("carta_credito", "carta di credito", ("carta revolving", "carta a saldo"), "banking_applications"),
    ("carta_debito", "carta di debito", ("bancomat", "carta di prelievo"), "banking_applications"),
    ("mutuo", "mutuo ipotecario", ("finanziamento casa", "prestito immobiliare"), "banking_applications"),
    ("prestito", "prestito personale", ("finanziamento al consumo", "credito personale"), "banking_applications"),
    ("fido", "fido di conto", ("affidamento", "linea di credito"), "banking_applications"),
    ("estratto_conto", "estratto conto", ("rendiconto periodico", "lista movimenti"), "banking_applications"),
    ("assegno", "assegno bancario", ("titolo di pagamento", "assegno di conto"), "banking_applications"),
    ("deposito_titoli", "deposito titoli", ("dossier titoli", "custodia strumenti finanziari"), "banking_applications"),
    ("polizza", "polizza assicurativa", ("copertura assicurativa", "contratto di assicurazione"), "banking_applications"),
    ("domiciliazione", "domiciliazione bancaria", ("addebito diretto", "mandato SDD"), "banking_applications"),
    ("valuta_estera", "operazione in valuta estera", ("cambio divisa", "pagamento internazionale"), "banking_applications"),
    ("pos", "terminale POS", ("dispositivo di incasso", "lettore pagamenti"), "banking_applications"),
    ("anticipo_fatture", "anticipo fatture", ("smobilizzo crediti", "anticipo su crediti commerciali"), "banking_applications"),
    ("firma_digitale", "firma digitale", ("firma elettronica qualificata", "sottoscrizione remota"), "technical_topics"),
    ("credenziali", "credenziali di accesso", ("utenza e password", "dati di autenticazione"), "technical_topics"),
    ("token", "token di sicurezza", ("chiavetta OTP", "generatore di codici"), "technical_topics"),
    ("vpn", "connessione VPN", ("accesso remoto sicuro", "rete privata aziendale"), "technical_topics"),
    ("posta_aziendale", "posta elettronica aziendale", ("casella email interna", "account di posta"), "technical_topics"),
    ("telefono_aziendale", "telefono aziendale", ("dispositivo mobile di servizio", "smartphone aziendale"), "technical_topics"),
    ("stampante", "stampante di rete", ("periferica di stampa", "multifunzione di piano"), "technical_topics"),
    ("postazione", "postazione di lavoro", ("workstation", "pc di filiale"), "technical_topics"),
    ("certificato", "certificato digitale", ("chiave crittografica personale", "attestato elettronico"), "technical_topics"),
    ("backup", "salvataggio dati", ("copia di sicurezza", "backup dei documenti"), "technical_topics"),
    ("antivirus", "protezione antivirus", ("software di sicurezza", "difesa endpoint"), "technical_topics"),
    ("badge", "badge di accesso", ("tessera identificativa", "pass aziendale"), "technical_topics"),
    ("ticket_it", "ticket informatico", ("segnalazione al supporto", "richiesta di assistenza tecnica"), "technical_topics"),
    ("antiriciclaggio", "adeguata verifica antiriciclaggio", ("controlli AML", "verifica della clientela"), "governance"),
    ("privacy", "informativa privacy", ("trattamento dati personali", "consenso GDPR"), "governance"),
    ("trasparenza", "documentazione di trasparenza", ("fogli informativi", "condizioni contrattuali"), "governance"),
    ("reclamo", "reclamo della clientela", ("contestazione del cliente", "esposto"), "governance"),
    ("delibera", "delibera creditizia", ("approvazione della pratica", "decisione di affidamento"), "governance"),
    ("procura", "procura speciale", ("delega notarile", "potere di firma"), "governance"),
    ("successione", "pratica di successione", ("eredità del rapporto", "trasferimento mortis causa"), "governance"),
    ("pignoramento", "atto di pignoramento", ("vincolo giudiziario", "sequestro delle somme"), "governance"),
    ("garanzia", "garanzia fideiussoria", ("fideiussione", "garanzia personale"), "governance"),
    ("segnalazione_cr", "segnalazione in centrale rischi", ("reporting CR", "comunicazione a Banca d'Italia"), "governance"),
    ("nota_spese", "nota spese", ("rimborso spese di servizio", "rendicontazione trasferta"), "general_processes"),
    ("ferie", "piano ferie", ("congedo ordinario", "assenza programmata"), "general_processes"),
    ("trasferta", "trasferta di lavoro", ("missione fuori sede", "viaggio di servizio"), "general_processes"),
    ("formazione", "corso di formazione", ("percorso formativo", "aggiornamento professionale"), "general_processes"),
    ("cedolino", "cedolino stipendio", ("busta paga", "prospetto retributivo"), "general_processes"),
    ("orario", "orario di lavoro", ("turni di servizio", "fascia oraria lavorativa"), "general_processes"),
    ("smart_working", "lavoro agile", ("smart working", "telelavoro"), "general_processes"),
    ("cassa", "quadratura di cassa", ("bilanciamento contanti", "verifica di cassa"), "general_processes"),
    ("valori_bollati", "valori bollati", ("marche da bollo", "carte valori"), "general_processes"),
    ("cassette_sicurezza", "cassette di sicurezza", ("caveau clienti", "custodia valori"), "general_processes"),
    ("sportello", "operatività di sportello", ("servizio di cassa", "attività di front office"), "general_processes"),
    ("archivio", "archiviazione documentale", ("conservazione atti", "fascicolo elettronico"), "general_processes"),
    ("carta_prepagata", "carta prepagata", ("carta ricaricabile", "borsellino elettronico"), "banking_applications"),
    ("libretto", "libretto di risparmio", ("deposito a risparmio", "libretto nominativo"), "banking_applications"),
    ("pac", "piano di accumulo", ("investimento programmato", "versamenti periodici in fondi"), "banking_applications"),
    ("fondo_comune", "fondo comune di investimento", ("OICR", "gestione collettiva del risparmio"), "banking_applications"),
    ("obbligazione", "prestito obbligazionario", ("emissione di bond", "titolo obbligazionario"), "banking_applications"),
    ("cambiale", "cambiale agraria", ("effetto cambiario", "pagherò"), "banking_applications"),
    ("leasing", "contratto di leasing", ("locazione finanziaria", "noleggio con riscatto"), "banking_applications"),
    ("factoring", "operazione di factoring", ("cessione del credito commerciale", "smobilizzo del portafoglio"), "banking_applications"),
    ("home_banking", "servizio di home banking", ("internet banking", "operatività online del cliente"), "banking_applications"),
    ("app_mobile", "app mobile della banca", ("applicazione per smartphone", "mobile banking"), "banking_applications"),
    ("canone", "canone del conto", ("spese di tenuta", "costo periodico del rapporto"), "banking_applications"),
    ("giacenza", "giacenza media", ("saldo medio annuo", "consistenza del deposito"), "banking_applications"),
    ("monitor_rete", "monitoraggio della rete", ("supervisione degli apparati", "controllo infrastruttura"), "technical_topics"),
    ("licenza_sw", "licenza software", ("attivazione del programma", "chiave del prodotto"), "technical_topics"),
    ("tablet", "tablet di filiale", ("dispositivo per la firma in mobilità", "tavoletta grafometrica"), "technical_topics"),
    ("intranet", "intranet aziendale", ("rete interna del gruppo", "sito riservato ai dipendenti"), "technical_topics"),
    ("telefonia_voip", "telefonia VoIP", ("centralino digitale", "chiamate su rete dati"), "technical_topics"),
    ("usura", "verifica dei tassi soglia", ("controllo antiusura", "limiti sui tassi"), "governance"),
    ("mifid", "questionario di profilatura", ("valutazione di adeguatezza", "profilo dell'investitore"), "governance"),
    ("fatca", "adempimenti FATCA", ("normativa fiscale estera", "segnalazione dei contribuenti americani"), "governance"),
    ("audit", "verifica ispettiva interna", ("controllo di revisione", "accertamento dell'audit"), "governance"),
    ("sanzioni", "controllo liste sanzionatorie", ("verifica embarghi", "screening delle controparti"), "governance"),
    ("welfare", "piano welfare aziendale", ("benefit ai dipendenti", "flexible benefit"), "general_processes"),
    ("turnazione", "turnazione degli sportelli", ("rotazione del personale", "calendario dei presidi"), "general_processes"),
    ("inventario", "inventario di filiale", ("ricognizione delle dotazioni", "censimento dei beni"), "general_processes"),
    ("convenzione", "convenzione aziendale", ("accordo quadro", "intesa commerciale"), "general_processes"),
    ("rassegna", "rassegna stampa interna", ("notiziario del gruppo", "bollettino quotidiano"), "general_processes"),
]

_ACTION_ROWS: list[tuple[str, str, tuple[str, ...]]] = [
    ("attivare", "attivare", ("abilitare", "rendere operativo")),
    ("bloccare", "bloccare", ("sospendere", "disattivare")),
    ("richiedere", "richiedere", ("inoltrare la richiesta di", "domandare")),
    ("rinnovare", "rinnovare", ("prorogare", "estendere la validità di")),
    ("modificare", "modificare", ("aggiornare", "variare")),
    ("consultare", "consultare", ("visualizzare", "verificare lo stato di")),
    ("revocare", "revocare", ("annullare", "cancellare")),
    ("configurare", "configurare", ("impostare", "predisporre")),
    ("sbloccare", "sbloccare", ("riattivare", "ripristinare")),
    ("registrare", "registrare", ("censire", "inserire a sistema")),
    ("autorizzare", "autorizzare", ("approvare", "dare il benestare a")),
    ("stampare", "stampare", ("produrre la copia cartacea di", "generare il documento di")),
    ("trasmettere", "trasmettere", ("inviare", "spedire")),
    ("chiudere", "chiudere", ("estinguere", "cessare")),
    ("duplicare", "duplicare", ("emettere la copia di", "rilasciare il duplicato di")),
    ("sospendere_temp", "sospendere temporaneamente", ("congelare", "mettere in pausa")),
    ("esportare", "esportare", ("estrarre i dati di", "scaricare l'elenco di")),
    ("delegare", "delegare", ("assegnare ad altro operatore", "trasferire la competenza di")),
]

# Internal application names: unique jargon, no synonyms.
_SYSTEM_NAMES = (
    "Sportello Plus",
    "CreditFlow",
    "GestCarte",
    "AnagrafeOne",
    "FirmaWeb",
    "TesoNet",
    "PratiCredito",
    "DocuBank",
    "SegnalaCR",
    "HR Portal",
    "ServiceDesk 360",
    "MutuiExpress",
    "EsteroPay",
    "TitoliDesk",
    "CassaForte",
    "BadgePoint",
    "WelfareHub",
    "LeasingPro",
    "FidoManager",
    "AuditTrack",
    "ConvenzioniWeb",
    "InventarioNet",
)


@dataclass(frozen=True)
class BankingVocabulary:
    """The assembled vocabulary: concepts by class plus the shared lexicon."""

    entities: tuple[Concept, ...]
    actions: tuple[Concept, ...]
    systems: tuple[Concept, ...]
    lexicon: ConceptLexicon

    @property
    def all_concepts(self) -> tuple[Concept, ...]:
        """Every concept in the vocabulary."""
        return self.entities + self.actions + self.systems


def build_banking_vocabulary() -> BankingVocabulary:
    """Construct the Italian banking vocabulary and its concept lexicon."""
    entities = tuple(
        Concept(concept_id=cid, canonical=canonical, synonyms=synonyms, domain=domain)
        for cid, canonical, synonyms, domain in _ENTITY_ROWS
    )
    actions = tuple(
        Concept(concept_id=f"act_{cid}", canonical=canonical, synonyms=synonyms, domain="action")
        for cid, canonical, synonyms in _ACTION_ROWS
    )
    systems = tuple(
        Concept(
            concept_id=f"sys_{name.lower().replace(' ', '_')}",
            canonical=name,
            synonyms=(),
            domain="system",
        )
        for name in _SYSTEM_NAMES
    )
    lexicon = ConceptLexicon(list(entities) + list(actions) + list(systems))
    return BankingVocabulary(entities=entities, actions=actions, systems=systems, lexicon=lexicon)


def build_banking_lexicon() -> ConceptLexicon:
    """Just the concept lexicon (for embedder / reranker / LLM wiring)."""
    return build_banking_vocabulary().lexicon
