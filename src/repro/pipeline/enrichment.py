"""LLM metadata enrichment.

Section 3: "We augment the metadata generating via LLM a *summary* of the
whole document and a list of *keywords*."  The enrichment step runs inside
the indexing service, once per (re)indexed document, and its outputs become
the ``summary`` (searchable, retrievable) field of every chunk and the
optional ``llm_keywords`` field used by the Table 4 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.base import ChatCompletionClient
from repro.llm.prompts import build_keywords_prompt, build_summary_prompt


@dataclass(frozen=True)
class DocumentEnrichment:
    """The LLM-generated metadata of one document."""

    summary: str
    keywords: tuple[str, ...]


class MetadataEnricher:
    """Generates the summary + keyword metadata via the chat LLM."""

    def __init__(self, llm: ChatCompletionClient, keyword_variant: str = "none") -> None:
        if keyword_variant not in ("none", "kt", "ktc"):
            raise ValueError("keyword_variant must be 'none', 'kt' or 'ktc'")
        self._llm = llm
        self._keyword_variant = keyword_variant

    def enrich(self, title: str, text: str) -> DocumentEnrichment:
        """Summarize the whole document and optionally extract keywords."""
        summary_response = self._llm.complete(build_summary_prompt(title, text), max_tokens=96)

        keywords: tuple[str, ...] = ()
        if self._keyword_variant != "none":
            content = text if self._keyword_variant == "ktc" else None
            keyword_response = self._llm.complete(
                build_keywords_prompt(title, content), max_tokens=64
            )
            keywords = tuple(
                part.strip() for part in keyword_response.content.split(",") if part.strip()
            )
        return DocumentEnrichment(summary=summary_response.content, keywords=keywords)
