"""Ingestion & indexing pipeline: clock, queue, store, services."""

from repro.pipeline.clock import SimulatedClock
from repro.pipeline.enrichment import DocumentEnrichment, MetadataEnricher
from repro.pipeline.indexing import IndexingReport, IndexingService
from repro.pipeline.ingestion import DEFAULT_POLL_INTERVAL, IngestionService, PollReport
from repro.pipeline.queue import MessageQueue, QueueMessage
from repro.pipeline.store import KbDocument, KnowledgeBaseStore

__all__ = [
    "SimulatedClock",
    "DocumentEnrichment",
    "MetadataEnricher",
    "IndexingReport",
    "IndexingService",
    "DEFAULT_POLL_INTERVAL",
    "IngestionService",
    "PollReport",
    "MessageQueue",
    "QueueMessage",
    "KbDocument",
    "KnowledgeBaseStore",
]
