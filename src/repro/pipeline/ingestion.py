"""Ingestion service.

Section 3: "The Ingestion service extracts information from each HTML
document in the Knowledge Base.  Given that the KB is edited on daily
basis, this service is also in charge to keep data updated by polling
modifications every 15 minutes.  It is deployed on a serverless
infrastructure component, triggered by a cron-job mechanism."

The simulation keeps the same shape: a cron tick (:meth:`poll_due` /
:meth:`run_due_polls`) fires every ``poll_interval`` simulated seconds; each
poll publishes one queue message per created/updated/deleted document since
the previous poll.

Where the paper's deployment then folds those changes into a nightly batch
index refresh, this reproduction goes further: the downstream indexing
service writes into the segmented index's live buffer, so a change is
queryable as soon as its queue message is consumed — continuous freshness
at the cost of background segment merges instead of a stop-the-world
rebuild window (see :mod:`repro.search.segment`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.clock import SimulatedClock
from repro.pipeline.queue import MessageQueue
from repro.pipeline.store import KnowledgeBaseStore

#: The production polling cadence (15 minutes).
DEFAULT_POLL_INTERVAL = 15 * 60.0


@dataclass(frozen=True)
class PollReport:
    """What one polling cycle published."""

    polled_at: float
    upserts: int
    deletes: int


class IngestionService:
    """Cron-triggered change detector publishing to the indexing queue."""

    def __init__(
        self,
        store: KnowledgeBaseStore,
        queue: MessageQueue,
        clock: SimulatedClock,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self._store = store
        self._queue = queue
        self._clock = clock
        self._poll_interval = poll_interval
        self._last_poll = -1.0  # ensures the first poll sees everything
        self._next_due = 0.0
        self.reports: list[PollReport] = []

    @property
    def poll_interval(self) -> float:
        """Seconds between cron triggers."""
        return self._poll_interval

    def poll_now(self) -> PollReport:
        """Run one polling cycle immediately (also used for the initial load)."""
        now = self._clock.now()
        upserts = 0
        for document in self._store.modified_since(self._last_poll):
            self._queue.publish(
                {"action": "upsert", "doc_id": document.doc_id, "modified_at": document.modified_at}
            )
            upserts += 1
        deletes = 0
        for doc_id in self._store.deleted_since(self._last_poll):
            self._queue.publish({"action": "delete", "doc_id": doc_id})
            deletes += 1
        self._last_poll = now
        report = PollReport(polled_at=now, upserts=upserts, deletes=deletes)
        self.reports.append(report)
        return report

    def poll_due(self) -> bool:
        """True when the cron should fire at the current simulated time."""
        return self._clock.now() >= self._next_due

    def run_due_polls(self) -> list[PollReport]:
        """Fire every cron trigger that has come due; returns their reports."""
        reports = []
        while self.poll_due():
            reports.append(self.poll_now())
            self._next_due += self._poll_interval
        return reports
