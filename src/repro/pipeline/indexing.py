"""Indexing service.

Section 3: event-triggered consumer of the ingestion queue.  For every
message it fetches the document from the KB store, parses the HTML, chunks
it with the paragraph-aligned strategy (512-token chunks, Section 4),
enriches the metadata via the LLM (summary + keywords), and feeds the
search index.  Document updates replace all previous chunks of the page;
deletes tombstone them.

Writes land in the index's segment write buffer and are queryable the
moment :meth:`IndexingService.process_one` returns — no batch rebuild sits
between an upsert and its visibility.  After each drain the service runs
the index's background segment maintenance on the simulated clock (seals,
merges, tombstone compaction), the continuous-freshness counterpart of the
paper's nightly batch refresh.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htmlproc.chunking import HtmlParagraphChunker
from repro.htmlproc.parser import parse_html
from repro.pipeline.clock import SimulatedClock
from repro.pipeline.enrichment import MetadataEnricher
from repro.pipeline.queue import MessageQueue
from repro.pipeline.store import KbDocument, KnowledgeBaseStore
from repro.search.index import SearchIndex
from repro.search.schema import ChunkRecord


@dataclass(frozen=True)
class IndexingReport:
    """What one drain of the queue accomplished."""

    messages: int
    documents_indexed: int
    documents_deleted: int
    chunks_written: int
    maintenance_ops: int = 0


class IndexingService:
    """Queue consumer that turns KB documents into index chunks."""

    def __init__(
        self,
        store: KnowledgeBaseStore,
        queue: MessageQueue,
        index: SearchIndex,
        enricher: MetadataEnricher | None = None,
        chunker: HtmlParagraphChunker | None = None,
        clock: SimulatedClock | None = None,
    ) -> None:
        self._store = store
        self._queue = queue
        self._index = index
        self._enricher = enricher
        self._chunker = chunker or HtmlParagraphChunker()
        self._clock = clock

    def build_records(self, document: KbDocument) -> list[ChunkRecord]:
        """Parse, chunk and enrich one document into its chunk records."""
        parsed = parse_html(document.html)
        chunks = self._chunker.chunk_document(parsed)
        if not chunks:
            return []

        summary = ""
        llm_keywords: tuple[str, ...] = ()
        if self._enricher is not None:
            enrichment = self._enricher.enrich(parsed.title, parsed.text)
            summary = enrichment.summary
            llm_keywords = enrichment.keywords

        return [
            ChunkRecord(
                chunk_id=f"{document.doc_id}#{chunk.index}",
                doc_id=document.doc_id,
                title=parsed.title,
                content=chunk.text,
                summary=summary,
                domain=document.domain,
                section=document.section,
                topic=document.topic,
                keywords=document.keywords,
                llm_keywords=llm_keywords,
            )
            for chunk in chunks
        ]

    def process_one(self) -> bool:
        """Consume one queue message; returns False when the queue is empty."""
        message = self._queue.receive()
        if message is None:
            return False
        try:
            action = message.body.get("action")
            doc_id = message.body["doc_id"]
            if action == "delete":
                self._index.delete_document(doc_id)
            elif action == "upsert":
                if doc_id in self._store:
                    self._index.delete_document(doc_id)
                    self._index.add_chunks(self.build_records(self._store.get(doc_id)))
                # The document may have been deleted after the message was
                # published; a missing doc means the delete message follows.
            else:
                raise ValueError(f"unknown action {action!r}")
        except Exception:
            self._queue.abandon(message.message_id)
            raise
        self._queue.acknowledge(message.message_id)
        return True

    def drain(self) -> IndexingReport:
        """Consume every pending message; returns an aggregate report."""
        messages = 0
        indexed = 0
        deleted = 0
        chunks_before = len(self._index)
        while True:
            message = self._queue.receive()
            if message is None:
                break
            messages += 1
            action = message.body.get("action")
            doc_id = message.body["doc_id"]
            try:
                if action == "delete":
                    self._index.delete_document(doc_id)
                    deleted += 1
                elif doc_id in self._store:
                    self._index.delete_document(doc_id)
                    self._index.add_chunks(self.build_records(self._store.get(doc_id)))
                    indexed += 1
            except Exception:
                self._queue.abandon(message.message_id)
                raise
            self._queue.acknowledge(message.message_id)
        maintenance_ops = self.run_maintenance()
        return IndexingReport(
            messages=messages,
            documents_indexed=indexed,
            documents_deleted=deleted,
            chunks_written=max(0, len(self._index) - chunks_before),
            maintenance_ops=maintenance_ops,
        )

    def run_maintenance(self) -> int:
        """Segment maintenance on the simulated clock; returns ops performed.

        A no-op without a clock (the index then merges only on explicit
        ``vacuum``) or on an index without segment maintenance.
        """
        if self._clock is None:
            return 0
        maintain = getattr(self._index, "run_maintenance", None)
        if maintain is None:
            return 0
        return sum(maintain(self._clock.now()).values())
