"""Message queue between the ingestion and indexing services.

Section 3: "The Indexing service communicates with the Ingestion service by
means of a message queue.  Using an event-based trigger, it reads messages
posted by the ingester and it feeds the index."  This in-process queue
reproduces the at-least-once semantics of a cloud queue: messages are
*leased* for processing and must be acknowledged; unacknowledged messages
return to the queue, so a crashed indexer never loses a document update.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class QueueMessage:
    """One message with its delivery metadata."""

    message_id: int
    body: dict[str, Any]
    delivery_count: int = 1


@dataclass
class _Stats:
    enqueued: int = 0
    delivered: int = 0
    acknowledged: int = 0
    redelivered: int = 0


class MessageQueue:
    """FIFO queue with lease/acknowledge delivery."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._ready: deque[QueueMessage] = deque()
        self._leased: dict[int, QueueMessage] = {}
        self.stats = _Stats()

    def __len__(self) -> int:
        return len(self._ready)

    @property
    def in_flight(self) -> int:
        """Messages leased but not yet acknowledged."""
        return len(self._leased)

    def publish(self, body: dict[str, Any]) -> int:
        """Enqueue *body*; returns the message id."""
        message = QueueMessage(message_id=next(self._ids), body=dict(body))
        self._ready.append(message)
        self.stats.enqueued += 1
        return message.message_id

    def receive(self) -> QueueMessage | None:
        """Lease the next message, or None when the queue is empty."""
        if not self._ready:
            return None
        message = self._ready.popleft()
        self._leased[message.message_id] = message
        self.stats.delivered += 1
        return message

    def acknowledge(self, message_id: int) -> None:
        """Complete processing of a leased message."""
        if message_id not in self._leased:
            raise KeyError(f"message {message_id} is not leased")
        del self._leased[message_id]
        self.stats.acknowledged += 1

    def abandon(self, message_id: int) -> None:
        """Return a leased message to the queue (front) for redelivery."""
        message = self._leased.pop(message_id, None)
        if message is None:
            raise KeyError(f"message {message_id} is not leased")
        self._ready.appendleft(
            QueueMessage(
                message_id=message.message_id,
                body=message.body,
                delivery_count=message.delivery_count + 1,
            )
        )
        self.stats.redelivered += 1
