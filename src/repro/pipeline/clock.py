"""Simulated clock.

All time-dependent components — the 15-minute ingestion polling cron, the
token-bucket rate limiter, the load-test arrival process, response-time
accounting — read time from an injected clock instead of the wall clock, so
hour-long scenarios replay deterministically in milliseconds.
"""

from __future__ import annotations


class SimulatedClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds*; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot advance by a negative duration")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to *timestamp* (no-op if already past)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now
