"""Knowledge-base store.

The system of record the ingestion service polls: HTML pages written by
employees, each carrying the editor-provided *domain*, *section*, *topic*
and *keywords* metadata described in Section 3, plus a modification
timestamp.  The KB "is edited on a daily basis"; the store exposes a
changes-since query so that the 15-minute polling cycle only touches
modified documents.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class KbDocument:
    """One knowledge-base page.

    Attributes:
        doc_id: stable document identifier (the page URL in the real KB).
        html: raw HTML markup of the page.
        domain / section / topic: editor-provided classification tags.
        keywords: editor-provided keyword tags.
        modified_at: last-modification time (simulated seconds).
    """

    doc_id: str
    html: str
    domain: str = ""
    section: str = ""
    topic: str = ""
    keywords: tuple[str, ...] = ()
    modified_at: float = 0.0


class KnowledgeBaseStore:
    """Mutable collection of :class:`KbDocument` with change tracking."""

    def __init__(self) -> None:
        self._documents: dict[str, KbDocument] = {}
        self._deleted: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def put(self, document: KbDocument) -> None:
        """Create or replace a document (the editor saved the page)."""
        self._documents[document.doc_id] = document
        self._deleted.pop(document.doc_id, None)

    def update_html(self, doc_id: str, html: str, modified_at: float) -> None:
        """Edit the markup of an existing page."""
        current = self._documents[doc_id]
        self._documents[doc_id] = replace(current, html=html, modified_at=modified_at)

    def delete(self, doc_id: str, deleted_at: float) -> None:
        """Remove a page; the deletion is visible to changes-since polling."""
        if doc_id in self._documents:
            del self._documents[doc_id]
            self._deleted[doc_id] = deleted_at

    def get(self, doc_id: str) -> KbDocument:
        """Fetch one page by id."""
        return self._documents[doc_id]

    def all_documents(self) -> list[KbDocument]:
        """Every live page, in insertion order."""
        return list(self._documents.values())

    def modified_since(self, timestamp: float) -> list[KbDocument]:
        """Pages created or edited strictly after *timestamp*."""
        return [doc for doc in self._documents.values() if doc.modified_at > timestamp]

    def deleted_since(self, timestamp: float) -> list[str]:
        """Ids of pages deleted strictly after *timestamp*."""
        return [doc_id for doc_id, at in self._deleted.items() if at > timestamp]
