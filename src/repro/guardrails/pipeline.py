"""Guardrail pipeline.

Runs the answer-side guardrails of Section 6 in a fixed order — citation,
ROUGE-L, clarification — and reports the first failure.  The order mirrors
the paper's reporting in Table 5 (the citation guardrail fires most often
and is checked first; the clarification requirement applies on top of both).
When a guardrail invalidates the answer, the system returns an apology
message but still displays the retrieved document list, because a fired
guardrail is a failure of the generation module, not of retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guardrails.base import Guardrail, GuardrailVerdict
from repro.guardrails.citation import CitationGuardrail
from repro.guardrails.clarification import ClarificationGuardrail
from repro.guardrails.rouge import RougeGuardrail
from repro.obs import spans
from repro.obs.trace import RequestContext, null_context
from repro.search.results import RetrievedChunk

#: The apology shown when a guardrail invalidates the generated answer.
APOLOGY_TEXT = (
    "Ci scusiamo: il sistema non è riuscito a generare una risposta affidabile "
    "per la tua domanda. Puoi consultare la lista dei documenti recuperati."
)

#: The invitation shown when the clarification guardrail fires.
CLARIFICATION_TEXT = (
    "La domanda necessita di maggiori dettagli: ti invitiamo a riformularla "
    "in modo più specifico."
)


@dataclass(frozen=True)
class GuardrailReport:
    """Aggregate result of running the pipeline on one answer.

    Attributes:
        passed: True when every guardrail passed.
        fired: name of the guardrail that invalidated the answer ("" if none).
        verdicts: every individual verdict, in execution order.
        user_message: what the frontend should display instead of the answer
            when invalidated.
    """

    passed: bool
    fired: str = ""
    verdicts: tuple[GuardrailVerdict, ...] = field(default_factory=tuple)
    user_message: str = ""


class GuardrailPipeline:
    """Ordered execution of answer guardrails with first-failure semantics."""

    def __init__(self, guardrails: list[Guardrail] | None = None, registry=None) -> None:
        from repro.obs.metrics import NULL_REGISTRY

        if guardrails is None:
            guardrails = [CitationGuardrail(), RougeGuardrail(), ClarificationGuardrail()]
        self._guardrails = guardrails
        registry = registry or NULL_REGISTRY
        self._m_checks = registry.counter(
            "uniask_guardrail_checks_total",
            "Guardrail checks run, by guardrail and result.",
            ("guardrail", "result"),
        )

    @property
    def guardrail_names(self) -> tuple[str, ...]:
        """Names in execution order."""
        return tuple(guardrail.name for guardrail in self._guardrails)

    def run(
        self,
        question: str,
        answer: str,
        context: list[RetrievedChunk],
        ctx: RequestContext | None = None,
    ) -> GuardrailReport:
        """Validate *answer*; stop at the first guardrail that fires."""
        ctx = ctx or null_context()
        trace = ctx.trace
        verdicts: list[GuardrailVerdict] = []
        for guardrail in self._guardrails:
            with trace.span(spans.guardrail_stage(guardrail.name)) as span:
                verdict = guardrail.check(question, answer, context)
                span.set("passed", verdict.passed)
                if verdict.score is not None:
                    span.set("score", round(verdict.score, 4))
            self._m_checks.labels(
                guardrail.name, "passed" if verdict.passed else "fired"
            ).inc()
            verdicts.append(verdict)
            if not verdict.passed:
                message = (
                    CLARIFICATION_TEXT if verdict.guardrail == "clarification" else APOLOGY_TEXT
                )
                return GuardrailReport(
                    passed=False,
                    fired=verdict.guardrail,
                    verdicts=tuple(verdicts),
                    user_message=message,
                )
        return GuardrailReport(passed=True, verdicts=tuple(verdicts))
