"""Citation guardrail.

Section 6's secondary guardrail: preliminary experiments showed that an
answer with **no valid citation to the context** was invariably
hallucinated, so any such answer is invalidated.  A valid citation is a
``[docK]`` marker whose key actually appears in the provided context (a
citation to a non-existent document is itself a hallucination).
"""

from __future__ import annotations

import re

from repro.guardrails.base import GuardrailVerdict
from repro.llm.prompts import CITATION_PREFIX
from repro.search.results import RetrievedChunk

_CITATION_RE = re.compile(rf"\[({CITATION_PREFIX}\d+)\]")


def extract_citations(answer: str) -> list[str]:
    """All ``[docK]`` citation keys appearing in *answer*, in order."""
    return _CITATION_RE.findall(answer)


class CitationGuardrail:
    """Requires at least one citation resolving to a context document."""

    @property
    def name(self) -> str:
        """Guardrail identifier."""
        return "citation"

    def check(
        self, question: str, answer: str, context: list[RetrievedChunk]
    ) -> GuardrailVerdict:
        """Fire when no citation resolves against the context."""
        cited = extract_citations(answer)
        valid_keys = {f"{CITATION_PREFIX}{i}" for i in range(1, len(context) + 1)}
        resolved = [key for key in cited if key in valid_keys]
        if not resolved:
            detail = "no citations present" if not cited else "citations do not resolve to context"
            return GuardrailVerdict(passed=False, guardrail=self.name, detail=detail)
        return GuardrailVerdict(passed=True)
