"""ROUGE-L topical guardrail — the primary hallucination defence.

Section 6: after generation, compute ROUGE-L between the answer and *each*
chunk of the retrieval context, keep the **maximum** score, and invalidate
the answer when that maximum falls below a threshold heuristically set to
**0.15** on real user questions.  An answer that shares so little surface
material with every retrieved chunk cannot be grounded in them.
"""

from __future__ import annotations

from repro.guardrails.base import GuardrailVerdict
from repro.search.results import RetrievedChunk
from repro.text.similarity import rouge_l

#: The production threshold from the paper.
DEFAULT_ROUGE_THRESHOLD = 0.15


class RougeGuardrail:
    """Max-over-chunks ROUGE-L threshold check."""

    def __init__(self, threshold: float = DEFAULT_ROUGE_THRESHOLD) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        self._threshold = threshold

    @property
    def name(self) -> str:
        """Guardrail identifier."""
        return "rouge"

    @property
    def threshold(self) -> float:
        """The ROUGE-L cut-off in force."""
        return self._threshold

    def similarity(self, answer: str, context: list[RetrievedChunk]) -> float:
        """Max ROUGE-L of *answer* against any context chunk."""
        if not context:
            return 0.0
        return max(rouge_l(answer, chunk.record.content) for chunk in context)

    def check(
        self, question: str, answer: str, context: list[RetrievedChunk]
    ) -> GuardrailVerdict:
        """Fire when the answer is not syntactically grounded in the context."""
        score = self.similarity(answer, context)
        if score < self._threshold:
            return GuardrailVerdict(
                passed=False,
                guardrail=self.name,
                detail=f"max ROUGE-L {score:.3f} below threshold {self._threshold}",
                score=score,
            )
        return GuardrailVerdict(passed=True, score=score)
