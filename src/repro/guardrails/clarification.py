"""Clarification-requirement guardrail.

Section 6: UniAsk must return *self-contained* answers, so an answer that
ends with a request for further details is invalidated and the user is
invited to reformulate the question with more details.  Detection is on
the final sentence: a question mark combined with a request-for-details
phrasing.
"""

from __future__ import annotations

import re

from repro.guardrails.base import GuardrailVerdict
from repro.search.results import RetrievedChunk
from repro.text.tokenizer import sentence_split

_DETAIL_REQUEST_RE = re.compile(
    r"(maggiori dettagli|più dettagli|puoi (specificare|indicare|precisare)|"
    r"potresti (specificare|indicare|precisare|fornire)|quale .* intendi)",
    re.IGNORECASE,
)


class ClarificationGuardrail:
    """Fires when the answer ends by asking the user for more details."""

    @property
    def name(self) -> str:
        """Guardrail identifier."""
        return "clarification"

    def check(
        self, question: str, answer: str, context: list[RetrievedChunk]
    ) -> GuardrailVerdict:
        """Fire on a trailing request-for-details question."""
        sentences = sentence_split(answer)
        if not sentences:
            return GuardrailVerdict(passed=True)
        last = sentences[-1]
        if last.rstrip().endswith("?") and _DETAIL_REQUEST_RE.search(last):
            return GuardrailVerdict(
                passed=False,
                guardrail=self.name,
                detail="answer ends with a request for further details",
            )
        return GuardrailVerdict(passed=True)
