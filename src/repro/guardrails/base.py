"""Guardrail interface and outcome types.

A guardrail (Section 6) inspects a generated answer against its question
and retrieval context and may *invalidate* it.  Guardrails run in a fixed
order inside :class:`~repro.guardrails.pipeline.GuardrailPipeline`; the
first one that fires decides the outcome.  A fired guardrail is counted as
a failure of the *generation* module, not of the whole system — the
document list is still shown to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.search.results import RetrievedChunk


@dataclass(frozen=True)
class GuardrailVerdict:
    """Outcome of one guardrail check.

    Attributes:
        passed: True when the answer survives this guardrail.
        guardrail: the guardrail's stable name (set when fired).
        detail: human-readable explanation of why it fired.
        score: the measured quantity, when the guardrail is score-based.
    """

    passed: bool
    guardrail: str = ""
    detail: str = ""
    score: float | None = None


@runtime_checkable
class Guardrail(Protocol):
    """One validity check on a generated answer."""

    @property
    def name(self) -> str:
        """Stable identifier used in monitoring and Table 5 reporting."""
        ...

    def check(
        self, question: str, answer: str, context: list[RetrievedChunk]
    ) -> GuardrailVerdict:
        """Return whether *answer* is valid for *question* given *context*."""
        ...
