"""Guardrails: citation, ROUGE-L, clarification checks and their pipeline."""

from repro.guardrails.base import Guardrail, GuardrailVerdict
from repro.guardrails.citation import CitationGuardrail, extract_citations
from repro.guardrails.clarification import ClarificationGuardrail
from repro.guardrails.pipeline import (
    APOLOGY_TEXT,
    CLARIFICATION_TEXT,
    GuardrailPipeline,
    GuardrailReport,
)
from repro.guardrails.rouge import DEFAULT_ROUGE_THRESHOLD, RougeGuardrail

__all__ = [
    "Guardrail",
    "GuardrailVerdict",
    "CitationGuardrail",
    "extract_citations",
    "ClarificationGuardrail",
    "APOLOGY_TEXT",
    "CLARIFICATION_TEXT",
    "GuardrailPipeline",
    "GuardrailReport",
    "DEFAULT_ROUGE_THRESHOLD",
    "RougeGuardrail",
]
