"""Operational tooling: experiment tracking, environments, promotion gates."""

from repro.ops.deployment import (
    DEV,
    PROD,
    QA,
    WORKBENCH,
    EnvironmentSpec,
    PromotionPipeline,
    ReleaseChecks,
    standard_environments,
)
from repro.ops.experiments import ExperimentRun, ExperimentTracker, track_evaluation

__all__ = [
    "DEV",
    "PROD",
    "QA",
    "WORKBENCH",
    "EnvironmentSpec",
    "PromotionPipeline",
    "ReleaseChecks",
    "standard_environments",
    "ExperimentRun",
    "ExperimentTracker",
    "track_evaluation",
]
