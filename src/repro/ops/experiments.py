"""Experiment tracking — the Workbench ops service.

Section 9: the Workbench environment includes "Ops Services for experiment
tracking, and metrics and notebooks for seamless data exploration".  The
agile development of Section 7 (several retrieval variants per iteration,
each judged on the validation datasets) needs exactly that: record every
run's parameters and metrics, list and compare runs, and persist the
ledger so a new session can pick up where the last one stopped.

The tracker is deliberately minimal — a JSON-lines ledger on disk — but
carries the full workflow: ``start_run`` → ``log_params`` / ``log_metrics``
→ ``finish_run``; ``best_run`` and ``compare`` answer the two questions a
team actually asks ("which variant won?", "what changed between these
two?").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class ExperimentRun:
    """One tracked run: parameters in, metrics out."""

    run_id: str
    name: str
    params: dict[str, object] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    finished: bool = False

    def to_json(self) -> str:
        """Serialize as one ledger line."""
        return json.dumps(
            {
                "run_id": self.run_id,
                "name": self.name,
                "params": self.params,
                "metrics": self.metrics,
                "tags": list(self.tags),
                "finished": self.finished,
            },
            ensure_ascii=False,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "ExperimentRun":
        """Parse one ledger line."""
        payload = json.loads(line)
        return cls(
            run_id=payload["run_id"],
            name=payload["name"],
            params=payload["params"],
            metrics=payload["metrics"],
            tags=tuple(payload["tags"]),
            finished=payload["finished"],
        )


class ExperimentTracker:
    """An append-only run ledger, optionally persisted to disk."""

    def __init__(self, ledger_path: str | Path | None = None) -> None:
        self._ledger_path = Path(ledger_path) if ledger_path else None
        self._runs: dict[str, ExperimentRun] = {}
        self._counter = 0
        if self._ledger_path and self._ledger_path.exists():
            for line in self._ledger_path.read_text().splitlines():
                if line.strip():
                    run = ExperimentRun.from_json(line)
                    self._runs[run.run_id] = run
                    self._counter = max(self._counter, int(run.run_id.split("-")[1]))

    def __len__(self) -> int:
        return len(self._runs)

    # -- workflow ------------------------------------------------------------

    def start_run(self, name: str, tags: tuple[str, ...] = ()) -> ExperimentRun:
        """Open a new run under *name*."""
        self._counter += 1
        run = ExperimentRun(run_id=f"run-{self._counter:04d}", name=name, tags=tags)
        self._runs[run.run_id] = run
        return run

    def log_params(self, run: ExperimentRun, **params: object) -> None:
        """Attach parameters to an open run."""
        self._require_open(run)
        run.params.update(params)

    def log_metrics(self, run: ExperimentRun, **metrics: float) -> None:
        """Attach metric values to an open run."""
        self._require_open(run)
        run.metrics.update({name: float(value) for name, value in metrics.items()})

    def finish_run(self, run: ExperimentRun) -> None:
        """Close the run and append it to the ledger."""
        self._require_open(run)
        run.finished = True
        if self._ledger_path:
            self._ledger_path.parent.mkdir(parents=True, exist_ok=True)
            with self._ledger_path.open("a") as ledger:
                ledger.write(run.to_json() + "\n")

    # -- queries ---------------------------------------------------------------

    def runs(self, name: str | None = None, tag: str | None = None) -> list[ExperimentRun]:
        """Finished runs, optionally filtered by experiment name or tag."""
        selected = [run for run in self._runs.values() if run.finished]
        if name is not None:
            selected = [run for run in selected if run.name == name]
        if tag is not None:
            selected = [run for run in selected if tag in run.tags]
        return selected

    def best_run(self, metric: str, name: str | None = None, maximize: bool = True) -> ExperimentRun:
        """The finished run with the best value of *metric*."""
        candidates = [run for run in self.runs(name=name) if metric in run.metrics]
        if not candidates:
            raise LookupError(f"no finished run carries metric {metric!r}")
        return (max if maximize else min)(candidates, key=lambda run: run.metrics[metric])

    def compare(self, run_a: ExperimentRun, run_b: ExperimentRun) -> dict[str, tuple[object, object]]:
        """Param/metric pairs that differ between two runs."""
        differences: dict[str, tuple[object, object]] = {}
        keys = set(run_a.params) | set(run_b.params)
        for key in sorted(keys):
            left, right = run_a.params.get(key), run_b.params.get(key)
            if left != right:
                differences[f"param:{key}"] = (left, right)
        keys = set(run_a.metrics) | set(run_b.metrics)
        for key in sorted(keys):
            left, right = run_a.metrics.get(key), run_b.metrics.get(key)
            if left != right:
                differences[f"metric:{key}"] = (left, right)
        return differences

    def _require_open(self, run: ExperimentRun) -> None:
        if run.finished:
            raise ValueError(f"run {run.run_id} is already finished")
        if run.run_id not in self._runs:
            raise KeyError(f"run {run.run_id} does not belong to this tracker")


def track_evaluation(tracker: ExperimentTracker, name: str, params: dict, result) -> ExperimentRun:
    """Record one :class:`~repro.eval.harness.EvaluationResult` as a run."""
    run = tracker.start_run(name)
    tracker.log_params(run, **params)
    tracker.log_metrics(
        run,
        answered_fraction=result.answered_fraction,
        **result.metrics.as_dict(),
    )
    tracker.finish_run(run)
    return run
