"""Deployment environments and promotion checks.

Section 9: "The application components can be grouped into four distinct
environments: Workbench, DEV (Development), QA (Quality), and PROD
(Production). […] The application environments differ in the tiering and
sizing of resources: DEV is equipped with minimal resources, whereas QA and
PROD are exactly equivalent."

This module models that promotion pipeline: an
:class:`EnvironmentSpec` captures the sizing knobs that actually matter to
this system (LLM token quota, index replicas, Kubernetes nodes, dataset
scale), :func:`standard_environments` encodes the paper's tiering, and
:class:`PromotionPipeline` enforces the two invariants the section states —
promotions go Workbench → DEV → QA → PROD in order and **QA and PROD must
be exactly equivalent** — plus the pre-production gates (tests green,
vulnerability assessment done, penetration test done).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Environment names, in promotion order.
WORKBENCH = "workbench"
DEV = "dev"
QA = "qa"
PROD = "prod"

PROMOTION_ORDER = (WORKBENCH, DEV, QA, PROD)


@dataclass(frozen=True)
class EnvironmentSpec:
    """Sizing of one environment."""

    name: str
    llm_tokens_per_minute: float
    index_replicas: int
    k8s_nodes: int
    corpus_scale: float  # fraction of the production KB mirrored here

    def __post_init__(self) -> None:
        if self.name not in PROMOTION_ORDER:
            raise ValueError(f"unknown environment {self.name!r}")
        if self.llm_tokens_per_minute <= 0 or self.index_replicas <= 0 or self.k8s_nodes <= 0:
            raise ValueError("resource sizes must be positive")
        if not 0.0 < self.corpus_scale <= 1.0:
            raise ValueError("corpus_scale must lie in (0, 1]")

    def sizing(self) -> dict[str, float]:
        """The comparable sizing vector (everything except the name)."""
        return {
            "llm_tokens_per_minute": self.llm_tokens_per_minute,
            "index_replicas": self.index_replicas,
            "k8s_nodes": self.k8s_nodes,
            "corpus_scale": self.corpus_scale,
        }


def standard_environments(
    production_quota: float = 1_310_000.0,
) -> dict[str, EnvironmentSpec]:
    """The paper's tiering: minimal DEV, QA exactly equivalent to PROD.

    The production LLM quota defaults to the value the Figure 2 load test
    recommends.
    """
    prod = EnvironmentSpec(
        name=PROD,
        llm_tokens_per_minute=production_quota,
        index_replicas=3,
        k8s_nodes=6,
        corpus_scale=1.0,
    )
    return {
        WORKBENCH: EnvironmentSpec(
            name=WORKBENCH,
            llm_tokens_per_minute=production_quota / 20,
            index_replicas=1,
            k8s_nodes=1,
            corpus_scale=0.05,
        ),
        DEV: EnvironmentSpec(
            name=DEV,
            llm_tokens_per_minute=production_quota / 10,
            index_replicas=1,
            k8s_nodes=2,
            corpus_scale=0.10,
        ),
        QA: replace(prod, name=QA),
        PROD: prod,
    }


@dataclass(frozen=True)
class ReleaseChecks:
    """Pre-production gates (Section 9's DevOps and security practices)."""

    tests_green: bool = False
    vulnerability_assessment_done: bool = False
    penetration_test_done: bool = False


@dataclass
class PromotionPipeline:
    """Tracks where a release stands and validates each promotion."""

    environments: dict[str, EnvironmentSpec] = field(default_factory=standard_environments)
    current: str = WORKBENCH

    def validate_environments(self) -> list[str]:
        """Configuration lint: the invariants Section 9 states.

        Returns a list of violations (empty when the setup is sound).
        """
        problems = []
        missing = [name for name in PROMOTION_ORDER if name not in self.environments]
        if missing:
            problems.append(f"missing environments: {', '.join(missing)}")
            return problems
        qa, prod = self.environments[QA], self.environments[PROD]
        if qa.sizing() != prod.sizing():
            problems.append("QA and PROD must be exactly equivalent")
        dev, workbench = self.environments[DEV], self.environments[WORKBENCH]
        if dev.sizing()["llm_tokens_per_minute"] >= prod.sizing()["llm_tokens_per_minute"]:
            problems.append("DEV must be smaller than PROD")
        if workbench.corpus_scale > dev.corpus_scale:
            problems.append("Workbench must not exceed DEV in corpus scale")
        return problems

    def promote(self, checks: ReleaseChecks | None = None) -> str:
        """Move the release one environment forward.

        Promotion into PROD requires every pre-production gate of
        *checks*; earlier promotions only require green tests.
        """
        problems = self.validate_environments()
        if problems:
            raise ValueError("; ".join(problems))
        position = PROMOTION_ORDER.index(self.current)
        if position == len(PROMOTION_ORDER) - 1:
            raise ValueError("release is already in production")
        target = PROMOTION_ORDER[position + 1]

        checks = checks or ReleaseChecks()
        if not checks.tests_green:
            raise PermissionError("promotion blocked: tests are not green")
        if target == PROD:
            if not checks.vulnerability_assessment_done:
                raise PermissionError("promotion to PROD blocked: vulnerability assessment missing")
            if not checks.penetration_test_done:
                raise PermissionError("promotion to PROD blocked: penetration test missing")

        self.current = target
        return target
