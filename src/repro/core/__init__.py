"""Core: the UniAsk engine, configuration, answers and system factory."""

from repro.core.answer import (
    ALL_OUTCOMES,
    OUTCOME_ANSWERED,
    OUTCOME_CONTENT_FILTER,
    OUTCOME_GUARDRAIL_CITATION,
    OUTCOME_GUARDRAIL_CLARIFICATION,
    OUTCOME_GUARDRAIL_ROUGE,
    OUTCOME_NO_RESULTS,
    Citation,
    UniAskAnswer,
)
from repro.core.config import GenerationConfig, UniAskConfig
from repro.core.engine import CONTENT_BLOCKED_TEXT, NO_RESULTS_TEXT, UniAskEngine
from repro.core.errors import ConfigurationError, GenerationError, IndexingError, ReproError
from repro.core.factory import UniAskSystem, build_uniask_system

__all__ = [
    "ALL_OUTCOMES",
    "OUTCOME_ANSWERED",
    "OUTCOME_CONTENT_FILTER",
    "OUTCOME_GUARDRAIL_CITATION",
    "OUTCOME_GUARDRAIL_CLARIFICATION",
    "OUTCOME_GUARDRAIL_ROUGE",
    "OUTCOME_NO_RESULTS",
    "Citation",
    "UniAskAnswer",
    "GenerationConfig",
    "UniAskConfig",
    "CONTENT_BLOCKED_TEXT",
    "NO_RESULTS_TEXT",
    "UniAskEngine",
    "ConfigurationError",
    "GenerationError",
    "IndexingError",
    "ReproError",
    "UniAskSystem",
    "build_uniask_system",
]
