"""Top-level configuration of a UniAsk deployment."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.config import AgentsConfig
from repro.autoscale.config import AutoscaleConfig
from repro.cache.config import CacheConfig
from repro.cluster.config import ClusterConfig
from repro.guardrails.rouge import DEFAULT_ROUGE_THRESHOLD
from repro.obs.incident import IncidentConfig
from repro.obs.telemetry import TelemetryConfig
from repro.search.hybrid import HybridSearchConfig
from repro.search.segment import IndexConfig


@dataclass(frozen=True)
class GenerationConfig:
    """Generation-module parameters (Section 5)."""

    context_size: int = 4  # m: chunks passed to the LLM
    temperature: float = 0.2
    max_tokens: int = 512

    def __post_init__(self) -> None:
        if self.context_size <= 0:
            raise ValueError("context_size must be positive")
        if self.temperature < 0:
            raise ValueError("temperature must be non-negative")


@dataclass(frozen=True)
class UniAskConfig:
    """Everything tunable about one deployment, paper defaults throughout."""

    retrieval: HybridSearchConfig = field(default_factory=HybridSearchConfig)
    generation: GenerationConfig = field(default_factory=GenerationConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    agents: AgentsConfig = field(default_factory=AgentsConfig)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    incident: IncidentConfig = field(default_factory=IncidentConfig)
    rouge_threshold: float = DEFAULT_ROUGE_THRESHOLD
    language: str = "it"
