"""Exception hierarchy of the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A component was configured with invalid parameters."""


class IndexingError(ReproError):
    """A document could not be parsed, chunked or indexed."""


class GenerationError(ReproError):
    """The LLM call failed or returned an unusable completion."""


class AdmissionError(ReproError):
    """The request was rejected at admission (load shedding, level 3).

    Raised by the backend when the staged shedding ladder runs out of
    degraded modes for this priority class — the typed equivalent of an
    HTTP 429 / ``Retry-After``.  Carries everything a client needs to
    back off politely.

    Attributes:
        priority: the priority class of the rejected request.
        retry_after_seconds: how long the client should wait before
            retrying (simulated seconds).
        pressure: the admission pressure (0..) that triggered rejection.
        reason: ``"overload"`` or ``"deadline"`` (the request's
            ``deadline_ms`` was infeasible even fully degraded).
    """

    def __init__(
        self,
        message: str,
        *,
        priority: str = "",
        retry_after_seconds: float = 0.0,
        pressure: float = 0.0,
        reason: str = "overload",
    ) -> None:
        super().__init__(message)
        self.priority = priority
        self.retry_after_seconds = retry_after_seconds
        self.pressure = pressure
        self.reason = reason
