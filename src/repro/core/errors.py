"""Exception hierarchy of the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A component was configured with invalid parameters."""


class IndexingError(ReproError):
    """A document could not be parsed, chunked or indexed."""


class GenerationError(ReproError):
    """The LLM call failed or returned an unusable completion."""
