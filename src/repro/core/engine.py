"""The UniAsk engine: the user-query flow of Figure 1.

One :meth:`UniAskEngine.ask` call performs the complete journey of a user
question through the deployed system:

1. the **content filter** screens the question (harmful or off-purpose
   input is blocked before any retrieval);
2. the **retrieval module** (HSS) fetches the ranked chunk list;
3. the top *m* = 4 chunks become the JSON context of the **generation
   prompt**, and the LLM produces a cited Italian answer;
4. the **guardrail pipeline** validates the answer (citation → ROUGE-L →
   clarification); an invalidated answer is replaced by the apology /
   reformulation message while the document list stays visible.
"""

from __future__ import annotations

from repro.core.answer import (
    OUTCOME_ANSWERED,
    OUTCOME_CONTENT_FILTER,
    OUTCOME_GENERATION_ERROR,
    OUTCOME_NO_RESULTS,
    Citation,
    UniAskAnswer,
)
from repro.core.config import UniAskConfig
from repro.guardrails.citation import extract_citations
from repro.guardrails.pipeline import APOLOGY_TEXT, GuardrailPipeline
from repro.llm.base import ChatCompletionClient
from repro.llm.content_filter import ContentFilter
from repro.llm.prompts import build_answer_prompt, context_from_results
from repro.search.hybrid import HybridSemanticSearch

#: Message shown when the content filter blocks the question outright.
CONTENT_BLOCKED_TEXT = (
    "La domanda non può essere elaborata perché contiene contenuti non "
    "conformi all'uso previsto del servizio."
)

#: Message shown when retrieval finds nothing at all.
NO_RESULTS_TEXT = (
    "Nessun documento pertinente è stato trovato nella base di conoscenza "
    "per questa domanda."
)


class UniAskEngine:
    """End-to-end question answering over the indexed knowledge base."""

    def __init__(
        self,
        searcher: HybridSemanticSearch,
        llm: ChatCompletionClient,
        guardrails: GuardrailPipeline | None = None,
        content_filter: ContentFilter | None = None,
        config: UniAskConfig | None = None,
    ) -> None:
        self.config = config or UniAskConfig()
        self._searcher = searcher
        self._llm = llm
        self._guardrails = guardrails or GuardrailPipeline()
        self._content_filter = content_filter or ContentFilter()

    @property
    def searcher(self) -> HybridSemanticSearch:
        """The retrieval module."""
        return self._searcher

    def ask(self, question: str, filters: dict[str, str] | None = None) -> UniAskAnswer:
        """Answer *question*; never raises on ordinary pipeline outcomes."""
        screening = self._content_filter.check(question)
        if screening.blocked:
            return UniAskAnswer(
                question=question,
                answer_text=CONTENT_BLOCKED_TEXT,
                raw_answer="",
                outcome=OUTCOME_CONTENT_FILTER,
            )

        documents = self._searcher.search(question, filters=filters)
        if not documents:
            return UniAskAnswer(
                question=question,
                answer_text=NO_RESULTS_TEXT,
                raw_answer="",
                outcome=OUTCOME_NO_RESULTS,
            )

        context = documents[: self.config.generation.context_size]
        prompt = build_answer_prompt(question, context_from_results(context))
        try:
            response = self._llm.complete(
                prompt,
                temperature=self.config.generation.temperature,
                max_tokens=self.config.generation.max_tokens,
            )
        except Exception:
            # The LLM service is the least reliable dependency (rate limits,
            # timeouts).  Degrade to search-only: apology plus the retrieved
            # list, never a user-facing exception.
            return UniAskAnswer(
                question=question,
                answer_text=APOLOGY_TEXT,
                raw_answer="",
                outcome=OUTCOME_GENERATION_ERROR,
                documents=tuple(documents),
                context=tuple(context),
            )
        raw_answer = response.content

        report = self._guardrails.run(question, raw_answer, context)
        if not report.passed:
            return UniAskAnswer(
                question=question,
                answer_text=report.user_message or APOLOGY_TEXT,
                raw_answer=raw_answer,
                outcome=f"guardrail_{report.fired}",
                documents=tuple(documents),
                context=tuple(context),
                guardrail_report=report,
            )

        citations = self._resolve_citations(raw_answer, context)
        return UniAskAnswer(
            question=question,
            answer_text=raw_answer,
            raw_answer=raw_answer,
            outcome=OUTCOME_ANSWERED,
            citations=citations,
            documents=tuple(documents),
            context=tuple(context),
            guardrail_report=report,
        )

    def _resolve_citations(self, answer: str, context) -> tuple[Citation, ...]:
        citations = []
        seen: set[str] = set()
        for key in extract_citations(answer):
            if key in seen:
                continue
            seen.add(key)
            position = int(key.removeprefix("doc")) - 1
            if 0 <= position < len(context):
                record = context[position].record
                citations.append(
                    Citation(
                        key=key,
                        chunk_id=record.chunk_id,
                        doc_id=record.doc_id,
                        title=record.title,
                    )
                )
        return tuple(citations)
