"""The UniAsk engine: the user-query flow of Figure 1.

One :meth:`UniAskEngine.answer` call performs the complete journey of a
user question through the deployed system:

1. the **content filter** screens the question (harmful or off-purpose
   input is blocked before any retrieval);
2. the **retrieval module** (HSS) fetches the ranked chunk list;
3. the top *m* = 4 chunks become the JSON context of the **generation
   prompt**, and the LLM produces a cited Italian answer;
4. the **guardrail pipeline** validates the answer (citation → ROUGE-L →
   clarification); an invalidated answer is replaced by the apology /
   reformulation message while the document list stays visible.

Deployments built with a :class:`~repro.cache.AnswerCache` short-circuit
the whole pipeline on a cache hit (exact or semantic), subject to the
per-request cache policy carried by :class:`~repro.api.types.AskOptions`.

Each step is an explicit stage method taking the request's
:class:`~repro.obs.trace.RequestContext`; with tracing enabled every stage
records a named span (see :mod:`repro.obs.spans`) and the finished
:class:`~repro.obs.trace.Trace` rides back on ``UniAskAnswer.trace``.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

from repro.agents.routes import ROUTE_CONVERSATIONAL, ROUTE_FOLLOW_UP, ROUTE_LOOKUP
from repro.api.types import (
    CACHE_BYPASS,
    CACHE_DEFAULT,
    CACHE_REFRESH,
    AskOptions,
    AskRequest,
    AskResponse,
)
from repro.cache.answer_cache import AnswerCache
from repro.core.answer import (
    OUTCOME_ANSWERED,
    OUTCOME_CONTENT_FILTER,
    OUTCOME_DEGRADED,
    OUTCOME_GENERATION_ERROR,
    OUTCOME_GUARDRAIL_CITATION,
    OUTCOME_GUARDRAIL_CLARIFICATION,
    OUTCOME_GUARDRAIL_ROUGE,
    OUTCOME_NO_RESULTS,
    Citation,
    UniAskAnswer,
)
from repro.core.config import UniAskConfig
from repro.guardrails.citation import extract_citations
from repro.guardrails.pipeline import APOLOGY_TEXT, GuardrailPipeline, GuardrailReport
from repro.llm.base import ChatCompletionClient, ChatResponse, traced_complete
from repro.llm.content_filter import ContentFilter, ContentFilterResult
from repro.llm.prompts import build_answer_prompt, context_from_results
from repro.obs import spans
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import RequestContext, null_context
from repro.obs.work import WorkCounters
from repro.search.hybrid import HybridSemanticSearch
from repro.search.results import RetrievedChunk

#: Message shown when the content filter blocks the question outright.
CONTENT_BLOCKED_TEXT = (
    "La domanda non può essere elaborata perché contiene contenuti non "
    "conformi all'uso previsto del servizio."
)

#: Message shown when retrieval finds nothing at all.
NO_RESULTS_TEXT = (
    "Nessun documento pertinente è stato trovato nella base di conoscenza "
    "per questa domanda."
)

#: Message shown on a BM25-only degraded answer (admission level 2): the
#: document list is fresh, but no generated answer accompanies it.
DEGRADED_SERVICE_TEXT = (
    "Il servizio è al momento in modalità ridotta: ecco i documenti più "
    "pertinenti trovati per la domanda. Riprova tra qualche istante per "
    "una risposta completa."
)

#: Outcomes the answer cache may store.  Content-filter blocks and
#: generation errors are excluded: the former is cheaper to recompute than
#: to cache, the latter is transient (a retried question should get a
#: fresh chance at the LLM, not a cached apology).
CACHEABLE_OUTCOMES = frozenset(
    {
        OUTCOME_ANSWERED,
        OUTCOME_NO_RESULTS,
        OUTCOME_GUARDRAIL_CITATION,
        OUTCOME_GUARDRAIL_ROUGE,
        OUTCOME_GUARDRAIL_CLARIFICATION,
    }
)


class UniAskEngine:
    """End-to-end question answering over the indexed knowledge base."""

    def __init__(
        self,
        searcher: HybridSemanticSearch,
        llm: ChatCompletionClient,
        guardrails: GuardrailPipeline | None = None,
        content_filter: ContentFilter | None = None,
        config: UniAskConfig | None = None,
        telemetry: Telemetry | None = None,
        answer_cache: AnswerCache | None = None,
        orchestrator=None,
    ) -> None:
        self.config = config or UniAskConfig()
        self._searcher = searcher
        self._llm = llm
        self._guardrails = guardrails or GuardrailPipeline()
        self._content_filter = content_filter or ContentFilter()
        self._last_scatter = None
        self.answer_cache = answer_cache
        #: The agent Orchestrator (:class:`repro.agents.Orchestrator`), or
        #: None in agents-off deployments — then every request takes
        #: exactly the pre-agents staged pipeline.
        self.orchestrator = orchestrator
        self.telemetry = telemetry or NULL_TELEMETRY
        registry = self.telemetry.registry
        self._m_requests = registry.counter(
            "uniask_requests_total", "Engine requests, by pipeline outcome.", ("outcome",)
        )
        self._m_retrieved = registry.histogram(
            "uniask_retrieval_chunks",
            "Chunks returned by the retrieval module per request.",
            buckets=(1.0, 5.0, 10.0, 25.0, 50.0, 100.0),
        )

    @property
    def searcher(self) -> HybridSemanticSearch:
        """The retrieval module (a ClusterSearcher in sharded deployments)."""
        return self._searcher

    @property
    def last_scatter_report(self):
        """The cluster scatter report of the most recent :meth:`ask`.

        None for single-index deployments, and until the first question.
        Kept until the next ask so the service layer can feed per-shard
        probe outcomes to monitoring after the answer returns.
        """
        return self._last_scatter

    def answer(
        self,
        request: AskRequest | str,
        ctx: RequestContext | None = None,
        degrade_level: int = 0,
    ) -> AskResponse:
        """Answer *request*; never raises on ordinary pipeline outcomes.

        The canonical entry point of the engine: a bare string is promoted
        to an :class:`~repro.api.types.AskRequest` with default options.
        ``options.trace`` requests a per-stage trace (returned on
        ``response.trace``); a caller-supplied *ctx* — the backend passes
        one carrying its latency-model trace — takes precedence.
        ``options.cache`` selects the cache policy for this request; it is
        inert when the deployment has no answer cache.

        *degrade_level* is the admission shedding-ladder level granted to
        the request (see :mod:`repro.autoscale.admission`): 0 runs the
        full pipeline, 1 serves from the answer cache only (falling
        through to 2 on a miss), 2 returns a BM25-only degraded answer.
        Level 3 (rejection) never reaches the engine — the backend
        raises the typed :class:`~repro.core.errors.AdmissionError`
        upstream.
        """
        if not 0 <= degrade_level <= 2:
            raise ValueError("degrade_level must be 0, 1 or 2")
        if isinstance(request, str):
            request = AskRequest(question=request)
        options = request.options
        if ctx is None:
            work = WorkCounters() if options.profile else None
            if options.trace or options.profile:
                # Profiling piggybacks on spans, so it implies a trace.
                ctx = RequestContext.traced(
                    request_id=options.request_id, explain=options.explain, work=work
                )
            elif options.explain:
                ctx = RequestContext(request_id=options.request_id, explain=True)
            else:
                ctx = null_context()
        else:
            explain = ctx.explain or options.explain
            work = ctx.work
            if options.profile and work is None:
                work = WorkCounters()
            if explain is not ctx.explain or work is not ctx.work:
                # Never mutate the caller's context (it may be the shared null
                # singleton); rewrap it with the raised flags.
                ctx = RequestContext(
                    trace=ctx.trace, request_id=ctx.request_id, explain=explain, work=work
                )
        trace = ctx.trace
        self._last_scatter = None
        try:
            with trace.span(spans.STAGE_ASK, question_chars=len(request.question)) as root:
                route = ""
                if degrade_level > 0:
                    # Shed requests never consult the orchestrator: agent
                    # routing is part of the full pipeline being shed.
                    answer = self._answer_degraded(
                        request.question, options, ctx, degrade_level
                    )
                    root.set("degrade_level", answer.degrade_level)
                else:
                    if self.orchestrator is not None:
                        route = self.orchestrator.resolve_route(
                            request.question, options, ctx
                        ).route
                    answer = self._answer_cached(request.question, options, ctx, route)
                if route:
                    answer = replace(answer, route=route)
                    root.set("route", route)
                if options.explain:
                    answer = replace(answer, explain_report=self._explain(answer, ctx))
                root.set("outcome", answer.outcome)
        except BaseException:
            # A stage that raises must not leave the previous request's
            # scatter report observable through last_scatter_report.
            self._last_scatter = None
            raise
        self._m_requests.labels(answer.outcome).inc()
        if self._last_scatter is not None and self._last_scatter.partial:
            answer = replace(answer, partial_results=True)
        if trace.enabled:
            answer = replace(answer, trace=trace)
        if ctx.work is not None:
            answer = replace(answer, work=ctx.work.snapshot())
        if self.orchestrator is not None and route:
            self.orchestrator.finish(request.question, answer, options, route)
        return AskResponse(answer=answer, request=request)

    def ask(
        self,
        question: str,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> UniAskAnswer:
        """Deprecated: use :meth:`answer` with an ``AskRequest``.

        Kept as a thin shim over :meth:`answer`; behaves identically
        (options default to no tracing and the default cache policy) and
        returns the bare :class:`UniAskAnswer`.
        """
        warnings.warn(
            "UniAskEngine.ask() is deprecated; use "
            "engine.answer(AskRequest.of(question, filters=...)) from repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
        request = AskRequest(question=question, options=AskOptions(filters=filters))
        return self.answer(request, ctx=ctx).answer

    # -- stages --------------------------------------------------------------

    def _answer_cached(
        self, question: str, options: AskOptions, ctx: RequestContext, route: str = ""
    ) -> UniAskAnswer:
        """Run the staged pipeline behind the answer cache, when one is wired.

        Policy ``bypass`` skips the cache entirely; ``refresh`` skips the
        lookup but overwrites the entry with the fresh answer.  Lookups and
        stores are stamped with the searcher's current index generation, so
        any corpus write since computation invalidates the entry lazily.

        *route* is the resolved agent route ("" when agents are off).
        Conversational replies are cheaper than a cache probe and
        follow-up answers depend on session state no key captures, so
        both run cacheless; the remaining routes namespace the key, so
        a structured answer is never served to a multi-hop request over
        the same terms (the lookup route keeps the plain key — it *is*
        the pre-agents pipeline).
        """
        cache = self.answer_cache
        if (
            cache is None
            or not cache.config.answer_tier_active
            or options.cache == CACHE_BYPASS
            or options.explain
            or route in (ROUTE_CONVERSATIONAL, ROUTE_FOLLOW_UP)
        ):
            # Explain requests run cacheless both ways: a cached answer has
            # no fresh provenance to report, and an explain answer (per-term
            # components, attached report) must not be what later plain
            # requests are served from.
            return self._ask_routed(question, options, ctx, route)

        namespace = "" if route in ("", ROUTE_LOOKUP) else route
        key = cache.key(question, options.filters, namespace=namespace)
        epoch = getattr(self._searcher.index, "generation", 0)
        embedder = self._searcher.index.embedder
        if options.cache != CACHE_REFRESH:
            work = ctx.work
            with ctx.trace.span(spans.STAGE_CACHE_LOOKUP, entries=len(cache)) as span:
                mark = work.snapshot() if work is not None else None
                hit = cache.lookup(
                    key, epoch, embed_fn=lambda: embedder.embed(question), work=work
                )
                span.set("hit", hit.kind if hit is not None else "")
                if work is not None:
                    for kind, units in work.delta(mark).items():
                        span.set(f"work_{kind}", units)
            if hit is not None:
                return replace(
                    hit.answer, cache_hit=hit.kind, cache_similarity=hit.similarity
                )

        answer = self._ask_routed(question, options, ctx, route)
        if self._cacheable(answer):
            embedding = (
                embedder.embed(question) if cache.config.semantic_tier_active else None
            )
            with ctx.trace.span(spans.STAGE_CACHE_STORE):
                cache.store(key, answer, epoch, embedding=embedding)
        return answer

    def _answer_degraded(
        self, question: str, options: AskOptions, ctx: RequestContext, level: int
    ) -> UniAskAnswer:
        """Serve under the admission shedding ladder (level 1 or 2).

        Level 1 consults the answer cache only: a hit returns the cached
        full-quality answer (stamped ``degrade_level=1``), a miss falls
        through to the level-2 path.  Level 2 runs content screening plus
        BM25-only retrieval and returns the fresh document list with the
        degraded-service message — no embedding, no reranker, no LLM
        call, no guardrails.  Degraded answers are never stored in the
        answer cache (:data:`OUTCOME_DEGRADED` is not cacheable, and this
        path never reaches the store).
        """
        cache = self.answer_cache
        if (
            level <= 1
            and cache is not None
            and cache.config.answer_tier_active
            and options.cache == CACHE_DEFAULT
            and not options.explain
        ):
            key = cache.key(question, options.filters)
            epoch = getattr(self._searcher.index, "generation", 0)
            embedder = self._searcher.index.embedder
            work = ctx.work
            with ctx.trace.span(spans.STAGE_CACHE_LOOKUP, entries=len(cache)) as span:
                hit = cache.lookup(
                    key, epoch, embed_fn=lambda: embedder.embed(question), work=work
                )
                span.set("hit", hit.kind if hit is not None else "")
            if hit is not None:
                return replace(
                    hit.answer,
                    cache_hit=hit.kind,
                    cache_similarity=hit.similarity,
                    degrade_level=1,
                )

        screening = self._screen(question, ctx)
        if screening.blocked:
            return UniAskAnswer(
                question=question,
                answer_text=CONTENT_BLOCKED_TEXT,
                raw_answer="",
                outcome=OUTCOME_CONTENT_FILTER,
                degrade_level=2,
            )
        documents = self._retrieve_degraded(question, options.filters, ctx)
        if not documents:
            return UniAskAnswer(
                question=question,
                answer_text=NO_RESULTS_TEXT,
                raw_answer="",
                outcome=OUTCOME_NO_RESULTS,
                degrade_level=2,
            )
        return UniAskAnswer(
            question=question,
            answer_text=DEGRADED_SERVICE_TEXT,
            raw_answer="",
            outcome=OUTCOME_DEGRADED,
            documents=tuple(documents),
            degrade_level=2,
        )

    def _retrieve_degraded(
        self, question: str, filters: dict[str, str] | None, ctx: RequestContext
    ) -> list[RetrievedChunk]:
        """BM25-only retrieval (the level-2 shedding path)."""
        with ctx.trace.span(spans.STAGE_RETRIEVAL, degraded=True) as span:
            documents = self._searcher.search_degraded(question, filters=filters, ctx=ctx)
            span.set("results", len(documents))
            self._m_retrieved.observe(float(len(documents)))
            take_report = getattr(self._searcher, "take_scatter_report", None)
            if take_report is not None:
                report = take_report()
                self._last_scatter = report
                if report is not None:
                    span.set("partial", report.partial)
                    span.set("shards", len(report.probes))
        return documents

    def _ask_routed(
        self, question: str, options: AskOptions, ctx: RequestContext, route: str
    ) -> UniAskAnswer:
        """Dispatch to the route's specialist agent, or the staged pipeline.

        The empty route (agents off) and the lookup route are the same
        code path by construction: lookup *is* today's pipeline.
        """
        if self.orchestrator is None or route in ("", ROUTE_LOOKUP):
            return self._ask_staged(question, options.filters, ctx)
        return self.orchestrator.execute(self, question, options, ctx, route)

    def _explain(self, answer: UniAskAnswer, ctx: RequestContext):
        """Fold the answer's retrieval components into an ExplainReport."""
        from repro.obs.explain import build_explain_report

        config = self._searcher.config
        return build_explain_report(
            answer.question,
            list(answer.documents),
            rrf_c=config.rrf_c,
            mode=config.mode,
            route=answer.route,
            work=ctx.work.snapshot() if ctx.work is not None else None,
        )

    def _cacheable(self, answer: UniAskAnswer) -> bool:
        """True when *answer* may be stored for reuse.

        Partial-results answers are never cached: a degraded cluster's
        answer reflects whichever shards happened to respond, not the
        corpus.
        """
        if answer.outcome not in CACHEABLE_OUTCOMES:
            return False
        if self._last_scatter is not None and self._last_scatter.partial:
            return False
        return True

    def _ask_staged(
        self, question: str, filters: dict[str, str] | None, ctx: RequestContext
    ) -> UniAskAnswer:
        """The staged pipeline: screen → retrieve → generate → validate."""
        screening = self._screen(question, ctx)
        if screening.blocked:
            return UniAskAnswer(
                question=question,
                answer_text=CONTENT_BLOCKED_TEXT,
                raw_answer="",
                outcome=OUTCOME_CONTENT_FILTER,
            )

        documents = self._retrieve(question, filters, ctx)
        return self._complete_from_documents(question, documents, ctx)

    def _complete_from_documents(
        self, question: str, documents: list[RetrievedChunk], ctx: RequestContext
    ) -> UniAskAnswer:
        """Generate, validate and cite over an already retrieved ranking.

        The tail of the staged pipeline, split out so agent routes that
        produce their own ranking (multi-hop fusion, the structured
        fallback) inherit generation, guardrails and citation resolution
        unchanged.
        """
        if not documents:
            return UniAskAnswer(
                question=question,
                answer_text=NO_RESULTS_TEXT,
                raw_answer="",
                outcome=OUTCOME_NO_RESULTS,
            )

        context = documents[: self.config.generation.context_size]
        response = self._generate(question, context, ctx)
        if response is None:
            # The LLM service is the least reliable dependency (rate limits,
            # timeouts).  Degrade to search-only: apology plus the retrieved
            # list, never a user-facing exception.
            return UniAskAnswer(
                question=question,
                answer_text=APOLOGY_TEXT,
                raw_answer="",
                outcome=OUTCOME_GENERATION_ERROR,
                documents=tuple(documents),
                context=tuple(context),
            )
        raw_answer = response.content
        generation_kind = getattr(response, "kind", "")

        report = self._validate(question, raw_answer, context, ctx)
        if not report.passed:
            return UniAskAnswer(
                question=question,
                answer_text=report.user_message or APOLOGY_TEXT,
                raw_answer=raw_answer,
                outcome=f"guardrail_{report.fired}",
                documents=tuple(documents),
                context=tuple(context),
                guardrail_report=report,
                generation_kind=generation_kind,
            )

        citations = self._resolve_citations(raw_answer, context, ctx)
        return UniAskAnswer(
            question=question,
            answer_text=raw_answer,
            raw_answer=raw_answer,
            outcome=OUTCOME_ANSWERED,
            citations=citations,
            documents=tuple(documents),
            context=tuple(context),
            guardrail_report=report,
            generation_kind=generation_kind,
        )

    def _screen(self, question: str, ctx: RequestContext) -> ContentFilterResult:
        """Stage 1: screen the incoming question."""
        with ctx.trace.span(spans.STAGE_CONTENT_FILTER) as span:
            screening = self._content_filter.check(question)
            span.set("blocked", screening.blocked)
            if screening.blocked:
                span.set("category", screening.category)
        return screening

    def _retrieve(
        self, question: str, filters: dict[str, str] | None, ctx: RequestContext
    ) -> list[RetrievedChunk]:
        """Stage 2: hybrid retrieval with semantic reranking.

        Clustered searchers additionally report per-shard probe outcomes;
        a degraded scatter (some shard missed its deadline) marks the final
        answer as partial instead of failing the request.
        """
        with ctx.trace.span(spans.STAGE_RETRIEVAL) as span:
            documents = self._searcher.search(question, filters=filters, ctx=ctx)
            span.set("results", len(documents))
            self._m_retrieved.observe(float(len(documents)))
            take_report = getattr(self._searcher, "take_scatter_report", None)
            if take_report is not None:
                report = take_report()
                self._last_scatter = report
                if report is not None:
                    span.set("partial", report.partial)
                    span.set("shards", len(report.probes))
        return documents

    def _generate(
        self, question: str, context: list[RetrievedChunk], ctx: RequestContext
    ) -> ChatResponse | None:
        """Stage 3: build the prompt and call the LLM (None on failure)."""
        with ctx.trace.span(spans.STAGE_PROMPT_BUILD, context_chunks=len(context)) as span:
            prompt = build_answer_prompt(question, context_from_results(context))
            span.set("messages", len(prompt))
        try:
            return traced_complete(
                self._llm,
                prompt,
                ctx,
                temperature=self.config.generation.temperature,
                max_tokens=self.config.generation.max_tokens,
            )
        except Exception:
            return None

    def _validate(
        self,
        question: str,
        raw_answer: str,
        context: list[RetrievedChunk],
        ctx: RequestContext,
    ) -> GuardrailReport:
        """Stage 4: run the guardrail pipeline on the generated answer."""
        with ctx.trace.span(spans.STAGE_GUARDRAILS) as span:
            report = self._guardrails.run(question, raw_answer, context, ctx=ctx)
            span.set("passed", report.passed)
            if report.fired:
                span.set("fired", report.fired)
        return report

    def _resolve_citations(
        self,
        answer: str,
        context: list[RetrievedChunk],
        ctx: RequestContext | None = None,
    ) -> tuple[Citation, ...]:
        """Stage 5: map ``[docK]`` markers of the accepted answer to chunks.

        Malformed keys (``doc``, ``docX``, out-of-range indices) are skipped
        rather than failing the whole answer: a bad marker is a generation
        blemish, not a reason to drop an already validated answer.
        """
        ctx = ctx or null_context()
        citations: list[Citation] = []
        seen: set[str] = set()
        with ctx.trace.span(spans.STAGE_CITATIONS) as span:
            for key in extract_citations(answer):
                if key in seen:
                    continue
                seen.add(key)
                suffix = key.removeprefix("doc")
                if not suffix.isdigit():
                    continue
                position = int(suffix) - 1
                if 0 <= position < len(context):
                    record = context[position].record
                    citations.append(
                        Citation(
                            key=key,
                            chunk_id=record.chunk_id,
                            doc_id=record.doc_id,
                            title=record.title,
                        )
                    )
            span.set("resolved", len(citations))
        return tuple(citations)
