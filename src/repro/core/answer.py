"""Answer datatypes returned by the UniAsk engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guardrails.pipeline import GuardrailReport
from repro.obs.explain import ExplainReport
from repro.obs.trace import Trace
from repro.search.results import RetrievedChunk

#: Final outcome of one query, as tracked by monitoring and Table 5.
OUTCOME_ANSWERED = "answered"
OUTCOME_GUARDRAIL_CITATION = "guardrail_citation"
OUTCOME_GUARDRAIL_ROUGE = "guardrail_rouge"
OUTCOME_GUARDRAIL_CLARIFICATION = "guardrail_clarification"
OUTCOME_CONTENT_FILTER = "content_filter"
OUTCOME_NO_RESULTS = "no_results"
OUTCOME_GENERATION_ERROR = "generation_error"
OUTCOME_DEGRADED = "degraded"

ALL_OUTCOMES = (
    OUTCOME_ANSWERED,
    OUTCOME_GUARDRAIL_CITATION,
    OUTCOME_GUARDRAIL_ROUGE,
    OUTCOME_GUARDRAIL_CLARIFICATION,
    OUTCOME_CONTENT_FILTER,
    OUTCOME_NO_RESULTS,
    OUTCOME_GENERATION_ERROR,
    OUTCOME_DEGRADED,
)


@dataclass(frozen=True)
class Citation:
    """One resolved citation of the generated answer."""

    key: str
    chunk_id: str
    doc_id: str
    title: str


@dataclass(frozen=True)
class UniAskAnswer:
    """Everything UniAsk returns for one question.

    Even when the answer is invalidated by a guardrail, ``documents`` still
    carries the full retrieved list — the paper's frontend always shows it,
    because a fired guardrail is a generation failure, not a retrieval one.

    Attributes:
        question: the user's question as received.
        answer_text: the text shown to the user (generated answer, apology,
            or clarification invitation).
        raw_answer: the unfiltered LLM output (empty when generation was
            skipped).
        outcome: one of the ``OUTCOME_*`` constants.
        citations: resolved citations of the accepted answer.
        documents: the retrieved chunk ranking (up to ``final_n``).
        context: the top *m* chunks that were fed to the LLM.
        guardrail_report: the full guardrail trace (None when generation
            was skipped).
        response_time: simulated seconds spent serving the query.
        trace: the per-stage request trace (None unless the caller asked
            for tracing via a :class:`~repro.obs.trace.RequestContext`).
        partial_results: True when the query was served by a degraded
            cluster — at least one shard missed its deadline, so
            ``documents`` covers only the shards that answered (single-index
            deployments never set this).
        cache_hit: "" when the pipeline ran for this request; ``"exact"``
            or ``"semantic"`` when the answer came from the answer cache,
            ``"coalesced"`` when it was shared by an in-flight identical
            request (see :mod:`repro.cache`).
        cache_similarity: cosine similarity of the reused entry for
            semantic hits (1.0 for exact hits, 0.0 otherwise).
        explain_report: full score provenance of the retrieval (None unless
            the request asked for ``explain``; see :mod:`repro.obs.explain`).
        route: the agent route that served the question (one of the
            ``ROUTE_*`` constants of :mod:`repro.agents.routes`), or ""
            in agents-off deployments — the pre-agents pipeline never sets
            it, keeping serialized answers byte-identical.
        generation_kind: the typed classification of the LLM reply that
            produced ``raw_answer`` (a ``RESPONSE_KIND_*`` constant of
            :mod:`repro.llm.base`), or "" when generation was skipped.
        work: deterministic work counts (``{kind: units}``, sorted keys;
            see :mod:`repro.obs.work`) accrued serving this request, or
            None unless the request asked for profiling — the pre-profiling
            pipeline never sets it, keeping serialized answers
            byte-identical.
        degrade_level: the admission shedding-ladder level that served the
            request — 0 full pipeline, 1 answer-cache only, 2 BM25-only
            degraded answer (outcome :data:`OUTCOME_DEGRADED` unless the
            content filter fired first).  Admission-off deployments never
            set it, keeping serialized answers byte-identical.
    """

    question: str
    answer_text: str
    raw_answer: str
    outcome: str
    citations: tuple[Citation, ...] = ()
    documents: tuple[RetrievedChunk, ...] = ()
    context: tuple[RetrievedChunk, ...] = ()
    guardrail_report: GuardrailReport | None = None
    response_time: float = 0.0
    trace: Trace | None = None
    partial_results: bool = False
    cache_hit: str = ""
    cache_similarity: float = 0.0
    explain_report: ExplainReport | None = None
    route: str = ""
    generation_kind: str = ""
    work: dict[str, int] | None = None
    degrade_level: int = 0

    @property
    def answered(self) -> bool:
        """True when a generated answer was accepted and shown."""
        return self.outcome == OUTCOME_ANSWERED

    @property
    def guardrail_fired(self) -> bool:
        """True when an answer was generated but invalidated."""
        return self.outcome in (
            OUTCOME_GUARDRAIL_CITATION,
            OUTCOME_GUARDRAIL_ROUGE,
            OUTCOME_GUARDRAIL_CLARIFICATION,
        )
