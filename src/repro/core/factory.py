"""System factory: wire a complete UniAsk deployment in one call.

Builds every component of Figure 1 around a knowledge-base store — the
embedder, the search index, the ingestion → queue → indexing pipeline, the
reranker, the simulated LLM, the guardrails and the engine — with one seed
and one configuration.  Benchmarks and examples construct systems only
through this factory so that every experiment runs the same wiring as the
"production" path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.orchestrator import Orchestrator
from repro.autoscale.autoscaler import Autoscaler
from repro.autoscale.hedging import AdaptiveHedgeBudget
from repro.cache.answer_cache import AnswerCache
from repro.cluster.router import ClusterSearcher
from repro.cluster.sharded_index import ShardedSearchIndex
from repro.core.config import UniAskConfig
from repro.core.engine import UniAskEngine
from repro.embeddings.cache import CachingEmbedder
from repro.embeddings.concepts import ConceptLexicon
from repro.embeddings.model import SyntheticAdaEmbedder
from repro.guardrails.pipeline import GuardrailPipeline
from repro.guardrails.rouge import RougeGuardrail
from repro.guardrails.citation import CitationGuardrail
from repro.guardrails.clarification import ClarificationGuardrail
from repro.llm.content_filter import ContentFilter
from repro.llm.simulated import SimulatedChatLLM
from repro.obs.incident import BlackBoxRecorder
from repro.obs.telemetry import Telemetry
from repro.pipeline.clock import SimulatedClock
from repro.pipeline.enrichment import MetadataEnricher
from repro.pipeline.indexing import IndexingService
from repro.pipeline.ingestion import IngestionService
from repro.pipeline.queue import MessageQueue
from repro.pipeline.store import KnowledgeBaseStore
from repro.search.hybrid import HybridSemanticSearch
from repro.search.index import SearchIndex
from repro.search.reranker import SemanticReranker
from repro.search.schema import uniask_schema


@dataclass
class UniAskSystem:
    """A fully wired deployment with handles to every component.

    ``index`` is a :class:`SearchIndex` in single-index deployments and a
    :class:`~repro.cluster.sharded_index.ShardedSearchIndex` when
    ``config.cluster.shards > 1`` (both expose the same write surface);
    ``cluster`` holds the scatter-gather router in the sharded case and is
    None otherwise.
    """

    engine: UniAskEngine
    searcher: HybridSemanticSearch | ClusterSearcher
    index: SearchIndex | ShardedSearchIndex
    store: KnowledgeBaseStore
    clock: SimulatedClock
    queue: MessageQueue
    ingestion: IngestionService
    indexing: IndexingService
    llm: SimulatedChatLLM
    embedder: CachingEmbedder
    lexicon: ConceptLexicon
    cluster: ClusterSearcher | None = None
    config: UniAskConfig = field(default_factory=UniAskConfig)
    telemetry: Telemetry = field(default_factory=Telemetry)
    answer_cache: AnswerCache | None = None
    orchestrator: Orchestrator | None = None
    autoscaler: Autoscaler | None = None
    recorder: BlackBoxRecorder | None = None

    def refresh(self) -> None:
        """One operational cycle: run due ingestion polls, drain the queue.

        Agents-enabled deployments also re-extract the structured table
        catalog, so the mini query engine sees corpus writes at the same
        cadence the search index does.
        """
        self.ingestion.run_due_polls()
        self.indexing.drain()
        if self.orchestrator is not None:
            self.orchestrator.refresh_catalog(self.store)


def build_uniask_system(
    store: KnowledgeBaseStore,
    lexicon: ConceptLexicon,
    config: UniAskConfig | None = None,
    seed: int = 42,
    embedding_dim: int = 256,
    ann_backend: str = "hnsw",
    keyword_variant: str = "none",
    ingest_now: bool = True,
    language: str = "it",
    analyzer=None,
) -> UniAskSystem:
    """Assemble a complete UniAsk system over *store*.

    Args:
        store: the knowledge base to serve.
        lexicon: concept lexicon shared by embedder, reranker and LLM.
        config: engine configuration (paper defaults when omitted).
        seed: master seed for embedder, HNSW and LLM.
        embedding_dim: width of the synthetic embeddings.
        ann_backend: ``"hnsw"`` (production) or ``"exact"``.
        keyword_variant: ``"none"``, ``"kt"`` or ``"ktc"`` — LLM keyword
            index enrichment (Table 4 variants).
        ingest_now: run the initial ingestion + indexing immediately.
        language: answer language of the simulated LLM ("it" or "en") —
            the "adapt to other languages" future work.
        analyzer: language-pack analyzer for the full-text index, reranker
            and embedder (None → Italian); must match *lexicon*'s language.
    """
    config = config or UniAskConfig()
    clock = SimulatedClock()
    queue = MessageQueue()
    telemetry = Telemetry(config.telemetry, clock=clock)
    registry = telemetry.registry

    # Constructed only when enabled, like the orchestrator and autoscaler:
    # the recorder registers its event counter on construction, and every
    # feed site below no-ops on a None recorder, so an incident-off
    # deployment stays byte-identical on every surface.
    recorder = None
    if config.incident.enabled:
        recorder = BlackBoxRecorder(
            clock=clock,
            capacity=config.incident.recorder_capacity,
            registry=registry,
        )

    from repro.text.analyzer import ItalianAnalyzer

    if analyzer is None:
        form_analyzer = None  # embedder/lexicon default (Italian, unstemmed)
        index_analyzer = None  # index default (Italian, full chain)
    else:
        form_analyzer = ItalianAnalyzer(
            remove_stopwords=True,
            apply_stemming=False,
            stopword_set=analyzer.stopword_set,
            stem_fn=analyzer.stem_fn,
        )
        index_analyzer = analyzer

    embedder = CachingEmbedder(
        SyntheticAdaEmbedder(lexicon, dim=embedding_dim, seed=seed, analyzer=form_analyzer)
    )
    schema = uniask_schema(include_llm_keywords=keyword_variant != "none")
    clustered = config.cluster.shards > 1
    if clustered:
        index = ShardedSearchIndex(
            embedder=embedder, schema=schema, num_shards=config.cluster.shards,
            ann_backend=ann_backend, seed=seed, analyzer=index_analyzer,
            vnodes=config.cluster.vnodes, index_config=config.index, registry=registry,
        )
    else:
        index = SearchIndex(
            embedder=embedder, schema=schema, ann_backend=ann_backend, seed=seed,
            analyzer=index_analyzer, index_config=config.index, registry=registry,
        )

    llm = SimulatedChatLLM(lexicon, seed=seed, language=language, registry=registry)
    enricher = MetadataEnricher(llm, keyword_variant=keyword_variant)
    ingestion = IngestionService(store, queue, clock)
    indexing = IndexingService(store, queue, index, enricher=enricher, clock=clock)

    reranker = SemanticReranker(lexicon, analyzer=index_analyzer)
    # The hedge budget exists only on autoscale-enabled clusters: off, the
    # router keeps its unconditional hedging and byte-identical behaviour.
    hedge_budget = None
    if clustered and config.autoscale.enabled and config.autoscale.adaptive_hedging:
        hedge_budget = AdaptiveHedgeBudget(
            base_fraction=config.autoscale.hedge_base_fraction,
            disable_above=config.autoscale.hedge_disable_above,
        )
    if clustered:
        searcher = ClusterSearcher(
            index,
            reranker=reranker,
            config=config.retrieval,
            cluster_config=config.cluster,
            clock=clock,
            registry=registry,
            cache_config=config.cache,
            hedge_budget=hedge_budget,
            recorder=recorder,
        )
    else:
        searcher = HybridSemanticSearch(
            index, reranker=reranker, config=config.retrieval, registry=registry
        )
    if recorder is not None:
        # Instance attribute on the deployment's top-level index only;
        # per-shard members keep the class default None, so a clustered
        # maintenance pass records its merged totals exactly once.
        index.recorder = recorder

    answer_cache = None
    if config.cache.answer_tier_active:
        answer_cache = AnswerCache(
            config.cache, clock=clock, analyzer=index_analyzer, registry=registry
        )

    guardrails = GuardrailPipeline(
        [CitationGuardrail(), RougeGuardrail(config.rouge_threshold), ClarificationGuardrail()],
        registry=registry,
    )
    orchestrator = None
    if config.agents.enabled:
        # Constructed only when enabled: the Orchestrator registers the
        # route counter on construction, so an agents-off deployment's
        # metrics exposition stays byte-identical to the pre-agents one.
        from repro.agents.structured import StructuredCatalog

        orchestrator = Orchestrator(
            config.agents,
            catalog=StructuredCatalog.from_store(store),
            clock=clock,
            registry=registry,
        )
    autoscaler = None
    if clustered and config.autoscale.enabled:
        # Constructed only when enabled, like the orchestrator: the
        # Autoscaler registers its gauges and counters on construction,
        # so an autoscale-off deployment's metrics exposition stays
        # byte-identical.
        autoscaler = Autoscaler(
            searcher,
            clock,
            config=config.autoscale,
            registry=registry,
            hedge_budget=hedge_budget,
            recorder=recorder,
        )
    engine = UniAskEngine(
        searcher=searcher,
        llm=llm,
        guardrails=guardrails,
        content_filter=ContentFilter(),
        config=config,
        telemetry=telemetry,
        answer_cache=answer_cache,
        orchestrator=orchestrator,
    )

    system = UniAskSystem(
        engine=engine,
        searcher=searcher,
        index=index,
        store=store,
        clock=clock,
        queue=queue,
        ingestion=ingestion,
        indexing=indexing,
        llm=llm,
        embedder=embedder,
        lexicon=lexicon,
        cluster=searcher if clustered else None,
        config=config,
        telemetry=telemetry,
        answer_cache=answer_cache,
        orchestrator=orchestrator,
        autoscaler=autoscaler,
        recorder=recorder,
    )
    if ingest_now:
        system.refresh()
    return system
