"""Distance functions for vector search.

All indexed vectors in this library are unit-normalized, so cosine distance
``1 - cos(a, b)`` is the canonical metric (it is also what Azure AI Search
uses by default for ada-002 embeddings).  Euclidean distance is provided for
completeness and for property tests of the HNSW structure under a true
metric.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

DistanceFn = Callable[[np.ndarray, np.ndarray], float]


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """1 - cosine similarity; 1.0 when either vector is (near) zero."""
    norm = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if norm < 1e-12:
        return 1.0
    return 1.0 - float(np.dot(a, b)) / norm


def euclidean_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Standard L2 distance."""
    return float(np.linalg.norm(a - b))


def batch_cosine_distance(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Cosine distance from *query* to every row of *matrix* (vectorized)."""
    if matrix.size == 0:
        return np.zeros(0)
    query_norm = float(np.linalg.norm(query))
    row_norms = np.linalg.norm(matrix, axis=1)
    denom = query_norm * row_norms
    sims = np.zeros(matrix.shape[0])
    valid = denom > 1e-12
    sims[valid] = (matrix[valid] @ query) / denom[valid]
    return 1.0 - sims


DISTANCES: dict[str, DistanceFn] = {
    "cosine": cosine_distance,
    "euclidean": euclidean_distance,
}
