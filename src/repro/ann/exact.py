"""Exhaustive (exact) k-nearest-neighbour search.

The ground-truth baseline the paper compares HNSW against ("HNSW and
exhaustive k-NN yield similar retrieval performance", Section 4).  Vectors
are kept in one contiguous matrix and scanned with vectorized numpy, which
is exact by construction.
"""

from __future__ import annotations

import numpy as np

from repro.ann.distance import batch_cosine_distance


class ExactKnnIndex:
    """Flat brute-force cosine k-NN index.

    Items are identified by arbitrary integer ids supplied at :meth:`add`
    time; queries return ``(id, distance)`` pairs sorted by ascending
    distance.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self._dim = dim
        self._ids: list[int] = []
        self._rows: list[np.ndarray] = []
        self._matrix: np.ndarray | None = None  # rebuilt lazily

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def dim(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dim

    def add(self, item_id: int, vector: np.ndarray) -> None:
        """Insert *vector* under *item_id*."""
        if vector.shape != (self._dim,):
            raise ValueError(f"expected shape ({self._dim},), got {vector.shape}")
        self._ids.append(item_id)
        self._rows.append(np.asarray(vector, dtype=np.float64))
        self._matrix = None

    def search(self, query: np.ndarray, k: int) -> list[tuple[int, float]]:
        """Return the *k* nearest stored items to *query* by cosine distance."""
        if k <= 0 or not self._ids:
            return []
        if self._matrix is None:
            self._matrix = np.stack(self._rows)
        distances = batch_cosine_distance(np.asarray(query, dtype=np.float64), self._matrix)
        k = min(k, len(self._ids))
        # Ties break on insertion id, which makes the ground truth fully
        # deterministic and lets a sharded deployment merge per-shard
        # results into exactly the ordering a single index would produce.
        ids = np.asarray(self._ids)
        order = np.lexsort((ids, distances))[:k]
        return [(int(ids[i]), float(distances[i])) for i in order]
