"""Exhaustive (exact) k-nearest-neighbour search.

The ground-truth baseline the paper compares HNSW against ("HNSW and
exhaustive k-NN yield similar retrieval performance", Section 4).  Vectors
are kept in one contiguous matrix and scanned with vectorized numpy, which
is exact by construction.  The matrix grows geometrically in place, so a
live-ingestion upsert is an O(dim) row write — not an O(n·dim) rebuild —
and queries always scan a single contiguous block.
"""

from __future__ import annotations

import numpy as np

from repro.ann.distance import batch_cosine_distance
from repro.obs.work import WORK_ANN_DISTANCE_EVALS

_INITIAL_CAPACITY = 16


class ExactKnnIndex:
    """Flat brute-force cosine k-NN index.

    Items are identified by arbitrary integer ids supplied at :meth:`add`
    time; queries return ``(id, distance)`` pairs sorted by ascending
    distance.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self._dim = dim
        self._count = 0
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._matrix = np.empty((_INITIAL_CAPACITY, dim), dtype=np.float64)

    def __len__(self) -> int:
        return self._count

    @property
    def dim(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dim

    @property
    def matrix(self) -> np.ndarray:
        """The stored vectors as one contiguous ``(n, dim)`` view."""
        return self._matrix[: self._count]

    @property
    def ids(self) -> np.ndarray:
        """Item ids aligned with :attr:`matrix` rows."""
        return self._ids[: self._count]

    def add(self, item_id: int, vector: np.ndarray) -> None:
        """Insert *vector* under *item_id*."""
        if vector.shape != (self._dim,):
            raise ValueError(f"expected shape ({self._dim},), got {vector.shape}")
        if self._count == self._matrix.shape[0]:
            capacity = self._matrix.shape[0] * 2
            grown = np.empty((capacity, self._dim), dtype=np.float64)
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
            grown_ids = np.empty(capacity, dtype=np.int64)
            grown_ids[: self._count] = self._ids[: self._count]
            self._ids = grown_ids
        self._ids[self._count] = item_id
        self._matrix[self._count] = np.asarray(vector, dtype=np.float64)
        self._count += 1

    def search(self, query: np.ndarray, k: int, work=None) -> list[tuple[int, float]]:
        """Return the *k* nearest stored items to *query* by cosine distance.

        *work* optionally books ``ann_distance_evals`` — brute force
        evaluates every stored vector, so the count is the matrix height.
        """
        if k <= 0 or not self._count:
            return []
        if work is not None:
            work.add(WORK_ANN_DISTANCE_EVALS, self._count)
        distances = batch_cosine_distance(np.asarray(query, dtype=np.float64), self.matrix)
        k = min(k, self._count)
        # Ties break on insertion id, which makes the ground truth fully
        # deterministic and lets a sharded deployment merge per-shard
        # results into exactly the ordering a single index would produce.
        ids = self.ids
        order = np.lexsort((ids, distances))[:k]
        return [(int(ids[i]), float(distances[i])) for i in order]

    def search_batch(self, queries: np.ndarray, k: int) -> list[list[tuple[int, float]]]:
        """Exact k-NN for several queries against the shared matrix.

        *queries* is ``(q, dim)``.  Each query is ranked with the same
        tie-break as :meth:`search`; the batch runs the similarity step as
        one matrix-matrix product, which is exact brute force but — unlike
        the BM25 kernels — not *bitwise*-contractual against the one-query
        path (BLAS may reassociate GEMM vs GEMV partial sums).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ValueError(f"expected shape (q, {self._dim}), got {queries.shape}")
        if k <= 0 or not self._count:
            return [[] for _ in range(queries.shape[0])]
        matrix = self.matrix
        row_norms = np.linalg.norm(matrix, axis=1)
        query_norms = np.linalg.norm(queries, axis=1)
        denom = query_norms[:, None] * row_norms[None, :]
        sims = np.zeros((queries.shape[0], self._count))
        valid = denom > 1e-12
        products = queries @ matrix.T
        sims[valid] = products[valid] / denom[valid]
        distances = 1.0 - sims
        k = min(k, self._count)
        ids = self.ids
        results: list[list[tuple[int, float]]] = []
        for row in distances:
            order = np.lexsort((ids, row))[:k]
            results.append([(int(ids[i]), float(row[i])) for i in order])
        return results
