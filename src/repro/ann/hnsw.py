"""Hierarchical Navigable Small World (HNSW) approximate nearest neighbours.

A faithful from-scratch implementation of Malkov & Yashunin (2018), the ANN
algorithm Azure AI Search runs for the paper's vector retrieval (Section 4):

* multi-layer proximity graph; each element draws its top layer from a
  geometric distribution with normalization ``mL = 1 / ln(M)``;
* greedy descent through the upper layers with ``ef = 1``;
* best-first ``SEARCH-LAYER`` with a dynamic candidate list of size
  ``ef_construction`` (insert) / ``ef_search`` (query) on the base layer;
* neighbour selection by the *heuristic* of Algorithm 4 (keeps a candidate
  only if it is closer to the inserted point than to any already selected
  neighbour), which preserves graph connectivity in clustered data;
* degree bound ``M`` per layer (``2M`` on layer 0, as in the reference
  implementation), with re-pruning of affected neighbours.

Determinism: level draws come from a private ``random.Random(seed)``.
"""

from __future__ import annotations

import heapq
import math
import random

import numpy as np

from repro.ann.distance import DISTANCES, DistanceFn
from repro.obs.work import WORK_ANN_DISTANCE_EVALS


class _Node:
    """One element of the graph: vector plus per-layer adjacency."""

    __slots__ = ("item_id", "vector", "neighbors")

    def __init__(self, item_id: int, vector: np.ndarray, level: int) -> None:
        self.item_id = item_id
        self.vector = vector
        # neighbors[layer] -> list of item ids
        self.neighbors: list[list[int]] = [[] for _ in range(level + 1)]

    @property
    def level(self) -> int:
        return len(self.neighbors) - 1


class HnswIndex:
    """HNSW index over unit vectors.

    Args:
        dim: vector dimensionality.
        m: max neighbours per node per layer (layer 0 allows ``2*m``).
        ef_construction: candidate-list width during insertion.
        ef_search: default candidate-list width during queries (raise for
            better recall, lower for speed); can be overridden per query.
        metric: ``"cosine"`` (default) or ``"euclidean"``.
        seed: seed for the level generator.
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 200,
        ef_search: int = 64,
        metric: str = "cosine",
        seed: int = 42,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if m < 2:
            raise ValueError("m must be at least 2")
        if metric not in DISTANCES:
            raise ValueError(f"unknown metric {metric!r}; choose from {sorted(DISTANCES)}")
        self._dim = dim
        self._m = m
        self._max_m0 = 2 * m
        self._ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self._distance: DistanceFn = DISTANCES[metric]
        self._level_mult = 1.0 / math.log(m)
        self._rng = random.Random(seed)
        self._nodes: dict[int, _Node] = {}
        self._entry_point: int | None = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item_id: int) -> bool:
        return item_id in self._nodes

    @property
    def dim(self) -> int:
        """Vector dimensionality accepted by the index."""
        return self._dim

    @property
    def max_level(self) -> int:
        """Top layer of the current entry point (-1 when empty)."""
        if self._entry_point is None:
            return -1
        return self._nodes[self._entry_point].level

    def add(self, item_id: int, vector: np.ndarray) -> None:
        """Insert *vector* under *item_id* (ids must be unique)."""
        if vector.shape != (self._dim,):
            raise ValueError(f"expected shape ({self._dim},), got {vector.shape}")
        if item_id in self._nodes:
            raise ValueError(f"duplicate item id: {item_id}")

        level = self._draw_level()
        node = _Node(item_id, np.asarray(vector, dtype=np.float64), level)
        self._nodes[item_id] = node

        if self._entry_point is None:
            self._entry_point = item_id
            return

        entry = self._entry_point
        top = self._nodes[entry].level

        # Phase 1: greedy descent through layers above the new node's level.
        current = entry
        for layer in range(top, level, -1):
            current = self._greedy_closest(node.vector, current, layer)

        # Phase 2: connect on each layer from min(level, top) down to 0.
        for layer in range(min(level, top), -1, -1):
            candidates = self._search_layer(node.vector, [current], self._ef_construction, layer)
            max_degree = self._max_m0 if layer == 0 else self._m
            selected = self._select_neighbors_heuristic(node.vector, candidates, self._m)
            node.neighbors[layer] = [cid for _, cid in selected]
            for _, neighbor_id in selected:
                self._link(neighbor_id, item_id, layer, max_degree)
            if candidates:
                current = min(candidates)[1]

        if level > top:
            self._entry_point = item_id

    def search(
        self, query: np.ndarray, k: int, ef: int | None = None, work=None
    ) -> list[tuple[int, float]]:
        """Return approximately the *k* nearest items to *query*.

        Results are ``(item_id, distance)`` sorted by ascending distance.
        ``ef`` overrides the index default candidate width for this query.
        *work* is an optional :class:`~repro.obs.work.WorkCounters`; the
        graph walk is the source of truth for ``ann_distance_evals`` (one
        unit per distance computation, descent and base layer alike).
        """
        if k <= 0 or self._entry_point is None:
            return []
        ef = max(ef if ef is not None else self.ef_search, k)
        query = np.asarray(query, dtype=np.float64)
        evals = [0] if work is not None else None

        current = self._entry_point
        for layer in range(self._nodes[current].level, 0, -1):
            current = self._greedy_closest(query, current, layer, evals)

        candidates = self._search_layer(query, [current], ef, 0, evals)
        candidates.sort()
        if evals is not None and evals[0]:
            work.add(WORK_ANN_DISTANCE_EVALS, evals[0])
        return [(item_id, distance) for distance, item_id in candidates[:k]]

    # -- internals ---------------------------------------------------------

    def _draw_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def _greedy_closest(
        self, query: np.ndarray, start: int, layer: int, evals: list[int] | None = None
    ) -> int:
        """Greedy ef=1 descent on one layer: follow improving edges."""
        current = start
        current_distance = self._distance(query, self._nodes[current].vector)
        if evals is not None:
            evals[0] += 1
        improved = True
        while improved:
            improved = False
            for neighbor_id in self._nodes[current].neighbors[layer]:
                distance = self._distance(query, self._nodes[neighbor_id].vector)
                if evals is not None:
                    evals[0] += 1
                if distance < current_distance:
                    current, current_distance = neighbor_id, distance
                    improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        layer: int,
        evals: list[int] | None = None,
    ) -> list[tuple[float, int]]:
        """Algorithm 2: best-first search with dynamic list of width *ef*."""
        visited = set(entry_points)
        candidates: list[tuple[float, int]] = []  # min-heap by distance
        results: list[tuple[float, int]] = []  # max-heap via negated distance
        for point in entry_points:
            distance = self._distance(query, self._nodes[point].vector)
            if evals is not None:
                evals[0] += 1
            heapq.heappush(candidates, (distance, point))
            heapq.heappush(results, (-distance, point))

        while candidates:
            distance, point = heapq.heappop(candidates)
            worst = -results[0][0]
            if distance > worst and len(results) >= ef:
                break
            for neighbor_id in self._nodes[point].neighbors[layer]:
                if neighbor_id in visited:
                    continue
                visited.add(neighbor_id)
                neighbor_distance = self._distance(query, self._nodes[neighbor_id].vector)
                if evals is not None:
                    evals[0] += 1
                worst = -results[0][0]
                if len(results) < ef or neighbor_distance < worst:
                    heapq.heappush(candidates, (neighbor_distance, neighbor_id))
                    heapq.heappush(results, (-neighbor_distance, neighbor_id))
                    if len(results) > ef:
                        heapq.heappop(results)
        return [(-negated, item_id) for negated, item_id in results]

    def _select_neighbors_heuristic(
        self, query: np.ndarray, candidates: list[tuple[float, int]], m: int
    ) -> list[tuple[float, int]]:
        """Algorithm 4: diversity-preserving neighbour selection."""
        ordered = sorted(candidates)
        selected: list[tuple[float, int]] = []
        for distance, candidate_id in ordered:
            if len(selected) >= m:
                break
            candidate_vector = self._nodes[candidate_id].vector
            closer_to_selected = any(
                self._distance(candidate_vector, self._nodes[sel_id].vector) < distance
                for _, sel_id in selected
            )
            if not closer_to_selected:
                selected.append((distance, candidate_id))
        # Fall back to plain nearest if the heuristic was too aggressive.
        if len(selected) < m:
            chosen = {sel_id for _, sel_id in selected}
            for distance, candidate_id in ordered:
                if len(selected) >= m:
                    break
                if candidate_id not in chosen:
                    selected.append((distance, candidate_id))
                    chosen.add(candidate_id)
        return selected

    def _link(self, from_id: int, to_id: int, layer: int, max_degree: int) -> None:
        """Add edge from→to on *layer*, re-pruning if the degree bound breaks."""
        node = self._nodes[from_id]
        if to_id in node.neighbors[layer]:
            return
        node.neighbors[layer].append(to_id)
        if len(node.neighbors[layer]) > max_degree:
            candidates = [
                (self._distance(node.vector, self._nodes[nid].vector), nid)
                for nid in node.neighbors[layer]
            ]
            pruned = self._select_neighbors_heuristic(node.vector, candidates, max_degree)
            node.neighbors[layer] = [nid for _, nid in pruned]
