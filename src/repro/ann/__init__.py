"""Approximate nearest neighbour substrate: HNSW and exact k-NN."""

from repro.ann.distance import (
    DISTANCES,
    batch_cosine_distance,
    cosine_distance,
    euclidean_distance,
)
from repro.ann.exact import ExactKnnIndex
from repro.ann.hnsw import HnswIndex

__all__ = [
    "DISTANCES",
    "batch_cosine_distance",
    "cosine_distance",
    "euclidean_distance",
    "ExactKnnIndex",
    "HnswIndex",
]
