"""Baselines: the pre-existing keyword search engine."""

from repro.baselines.keyword_engine import KeywordSearchResult, PrevKeywordEngine

__all__ = ["KeywordSearchResult", "PrevKeywordEngine"]
