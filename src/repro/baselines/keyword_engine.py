"""The pre-existing search engine ("Prev.") — the paper's internal baseline.

Section 2 describes it: "The existing search engine only performs an exact
keyword matching on the documents in the knowledge base.  It cannot handle
complex questions in natural language. […] It outputs a ranked list of
documents, which the user has to check."

The reproduction models a 20-year-old enterprise keyword engine:

* query terms are lower-cased and common Italian function words are
  dropped (the one bit of analysis such engines did have);
* **no stemming, no synonyms, no semantics** — a term matches only its
  exact surface form;
* **conjunctive (AND) semantics** — a document qualifies only when every
  remaining query term occurs in it, which is why elaborate
  natural-language questions usually return *nothing*;
* qualifying documents are ranked by summed term frequency with a title
  bonus, the classic heuristic of that generation of engines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.htmlproc.parser import parse_html
from repro.pipeline.store import KbDocument
from repro.text.stopwords import ITALIAN_STOPWORDS
from repro.text.tokenizer import word_tokenize


@dataclass(frozen=True)
class KeywordSearchResult:
    """One ranked document from the legacy engine."""

    doc_id: str
    title: str
    score: float


class PrevKeywordEngine:
    """Exact keyword-matching search over raw document text."""

    def __init__(self, title_bonus: float = 2.0) -> None:
        self._title_bonus = title_bonus
        self._term_frequencies: dict[str, Counter[str]] = {}
        self._title_terms: dict[str, set[str]] = {}
        self._titles: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._term_frequencies)

    def index_document(self, document: KbDocument) -> None:
        """Add one KB page to the legacy index (exact lower-cased terms)."""
        parsed = parse_html(document.html)
        body_terms = [token.lower() for token in word_tokenize(parsed.text)]
        self._term_frequencies[document.doc_id] = Counter(body_terms)
        self._title_terms[document.doc_id] = {
            token.lower() for token in word_tokenize(parsed.title)
        }
        self._titles[document.doc_id] = parsed.title

    def index_all(self, documents: list[KbDocument]) -> None:
        """Index a batch of pages."""
        for document in documents:
            self.index_document(document)

    def analyze_query(self, query: str) -> list[str]:
        """Lower-case and drop function words; no stemming, no expansion."""
        return [
            token.lower()
            for token in word_tokenize(query)
            if token.lower() not in ITALIAN_STOPWORDS
        ]

    def search(self, query: str, n: int = 50) -> list[KeywordSearchResult]:
        """Conjunctive exact-match retrieval; empty when any term is unmatched."""
        terms = self.analyze_query(query)
        if not terms:
            return []

        results: list[KeywordSearchResult] = []
        for doc_id, frequencies in self._term_frequencies.items():
            title_terms = self._title_terms[doc_id]
            if any(frequencies[term] == 0 and term not in title_terms for term in terms):
                continue
            score = float(sum(frequencies[term] for term in terms))
            score += self._title_bonus * sum(1 for term in terms if term in title_terms)
            results.append(
                KeywordSearchResult(doc_id=doc_id, title=self._titles[doc_id], score=score)
            )
        results.sort(key=lambda result: (-result.score, result.doc_id))
        return results[:n]
