"""Token-rate limiting for the LLM hosting service.

Azure OpenAI deployments are provisioned with a tokens-per-minute (TPM)
quota; requests beyond it are rejected.  The paper's load test (Section 9,
Figure 2) "empirically sets the token rate limit for the LLM resource" from
the observed failures, so the load-test simulation needs a faithful limiter.

:class:`TokenBucketRateLimiter` implements the standard token-bucket model:
capacity refills continuously at ``tokens_per_minute / 60`` per second, a
request consumes its total token count atomically, and a request that does
not fit is rejected (HTTP 429 in the real service).  Time is injected by
the caller, so the simulated clock drives it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RateLimitDecision:
    """Outcome of admitting one request."""

    allowed: bool
    available_tokens: float


class TokenBucketRateLimiter:
    """Continuous-refill token bucket keyed on an external clock.

    Args:
        tokens_per_minute: sustained quota (TPM).
        burst_tokens: bucket capacity; defaults to one minute of quota,
            matching Azure's behaviour of allowing short bursts.
    """

    def __init__(
        self, tokens_per_minute: float, burst_tokens: float | None = None, registry=None
    ) -> None:
        from repro.obs.metrics import NULL_REGISTRY

        if tokens_per_minute <= 0:
            raise ValueError("tokens_per_minute must be positive")
        self._rate_per_second = tokens_per_minute / 60.0
        self._capacity = burst_tokens if burst_tokens is not None else tokens_per_minute
        if self._capacity <= 0:
            raise ValueError("burst_tokens must be positive")
        self._available = self._capacity
        self._last_time = 0.0
        self.admitted = 0
        self.rejected = 0
        registry = registry or NULL_REGISTRY
        self._m_decisions = registry.counter(
            "uniask_llm_ratelimit_total",
            "Rate-limiter admission decisions, by outcome.",
            ("decision",),
        )

    @property
    def capacity(self) -> float:
        """Bucket capacity in tokens."""
        return self._capacity

    def available(self, now: float) -> float:
        """Tokens available at time *now* (seconds)."""
        self._refill(now)
        return self._available

    def try_acquire(self, tokens: float, now: float) -> RateLimitDecision:
        """Attempt to consume *tokens* at time *now*.

        Returns a decision; rejected requests consume nothing (the service
        fails fast rather than queueing, as an open system must).
        """
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        self._refill(now)
        if tokens <= self._available:
            self._available -= tokens
            self.admitted += 1
            self._m_decisions.labels("allowed").inc()
            return RateLimitDecision(allowed=True, available_tokens=self._available)
        self.rejected += 1
        self._m_decisions.labels("rejected").inc()
        return RateLimitDecision(allowed=False, available_tokens=self._available)

    def _refill(self, now: float) -> None:
        if now < self._last_time:
            raise ValueError("clock moved backwards")
        elapsed = now - self._last_time
        self._last_time = now
        self._available = min(self._capacity, self._available + elapsed * self._rate_per_second)
