"""Chat-completion interface.

The generation module of UniAsk talks to gpt-3.5-turbo through its chat
completion API (Section 5).  This module defines the provider-neutral
surface — messages in, one assistant message out — implemented offline by
:class:`repro.llm.simulated.SimulatedChatLLM`.  Any client exposing
:meth:`ChatCompletionClient.complete` can be plugged into the engine, the
query-expansion variants and the metadata enrichment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

#: The chat roles accepted by the API.
ROLES = ("system", "user", "assistant")


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat conversation."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"role must be one of {ROLES}")


@dataclass(frozen=True)
class ChatUsage:
    """Token accounting of one completion call."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class ChatResponse:
    """The assistant's reply plus usage metadata."""

    content: str
    usage: ChatUsage = field(default_factory=ChatUsage)
    finish_reason: str = "stop"


@runtime_checkable
class ChatCompletionClient(Protocol):
    """Anything that answers a chat conversation with one message."""

    def complete(
        self,
        messages: list[ChatMessage],
        temperature: float = 0.0,
        max_tokens: int = 512,
    ) -> ChatResponse:
        """Generate the assistant reply for *messages*."""
        ...


def system(content: str) -> ChatMessage:
    """Shorthand for a system message."""
    return ChatMessage("system", content)


def user(content: str) -> ChatMessage:
    """Shorthand for a user message."""
    return ChatMessage("user", content)


def assistant(content: str) -> ChatMessage:
    """Shorthand for an assistant message."""
    return ChatMessage("assistant", content)
