"""Chat-completion interface.

The generation module of UniAsk talks to gpt-3.5-turbo through its chat
completion API (Section 5).  This module defines the provider-neutral
surface — messages in, one assistant message out — implemented offline by
:class:`repro.llm.simulated.SimulatedChatLLM`.  Any client exposing
:meth:`ChatCompletionClient.complete` can be plugged into the engine, the
query-expansion variants and the metadata enrichment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.obs import spans
from repro.obs.trace import RequestContext, null_context
from repro.obs.work import WORK_LLM_COMPLETION_TOKENS, WORK_LLM_PROMPT_TOKENS

#: The chat roles accepted by the API.
ROLES = ("system", "user", "assistant")

#: Typed classification of a completion: an ordinary grounded answer.
RESPONSE_KIND_ANSWER = "answer"

#: The completion asks the user for more details instead of (or on top of)
#: answering — the FollowUp agent merges the session's next message into
#: the original question when it sees this kind.
RESPONSE_KIND_CLARIFICATION = "clarification_request"

#: The completion is an honest refusal (no grounded answer available).
RESPONSE_KIND_REFUSAL = "refusal"


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat conversation."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"role must be one of {ROLES}")


@dataclass(frozen=True)
class ChatUsage:
    """Token accounting of one completion call."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        """Prompt plus completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class ChatResponse:
    """The assistant's reply plus usage metadata.

    ``kind`` is the typed classification of the reply (one of the
    ``RESPONSE_KIND_*`` constants); clients that cannot classify their
    output leave the default, which downstream consumers treat as an
    ordinary answer.
    """

    content: str
    usage: ChatUsage = field(default_factory=ChatUsage)
    finish_reason: str = "stop"
    kind: str = RESPONSE_KIND_ANSWER


@runtime_checkable
class ChatCompletionClient(Protocol):
    """Anything that answers a chat conversation with one message."""

    def complete(
        self,
        messages: list[ChatMessage],
        temperature: float = 0.0,
        max_tokens: int = 512,
    ) -> ChatResponse:
        """Generate the assistant reply for *messages*."""
        ...


def traced_complete(
    client: ChatCompletionClient,
    messages: list[ChatMessage],
    ctx: RequestContext | None = None,
    *,
    temperature: float = 0.0,
    max_tokens: int = 512,
    stage: str = spans.STAGE_LLM,
) -> ChatResponse:
    """Run one completion inside a *stage* span of the request trace.

    Records prompt size, token usage and finish reason on the span; a
    raising client marks the span as errored before propagating.  With the
    null context this is a plain ``client.complete`` call — the prompt-size
    accounting is skipped entirely, keeping the untraced hot path free of
    observability cost.  When ``ctx.work`` is set the response's token
    usage is booked as ``llm_prompt_tokens``/``llm_completion_tokens``
    (the completion API is the source of truth), even if tracing is off.
    """
    ctx = ctx or null_context()
    trace = ctx.trace
    work = ctx.work
    if not trace.enabled:
        response = client.complete(messages, temperature=temperature, max_tokens=max_tokens)
        _book_usage(work, response)
        return response
    with trace.span(
        stage,
        messages=len(messages),
        prompt_chars=sum(len(message.content) for message in messages),
    ) as span:
        response = client.complete(messages, temperature=temperature, max_tokens=max_tokens)
        span.annotate(
            prompt_tokens=response.usage.prompt_tokens,
            completion_tokens=response.usage.completion_tokens,
            finish_reason=response.finish_reason,
        )
        if work is not None:
            span.annotate(
                work_llm_prompt_tokens=response.usage.prompt_tokens,
                work_llm_completion_tokens=response.usage.completion_tokens,
            )
        _book_usage(work, response)
    return response


def _book_usage(work, response: ChatResponse) -> None:
    """Book one completion's token usage into *work* (no-op when None)."""
    if work is None:
        return
    work.add(WORK_LLM_PROMPT_TOKENS, response.usage.prompt_tokens)
    work.add(WORK_LLM_COMPLETION_TOKENS, response.usage.completion_tokens)


def system(content: str) -> ChatMessage:
    """Shorthand for a system message."""
    return ChatMessage("system", content)


def user(content: str) -> ChatMessage:
    """Shorthand for a user message."""
    return ChatMessage("user", content)


def assistant(content: str) -> ChatMessage:
    """Shorthand for an assistant message."""
    return ChatMessage("assistant", content)
