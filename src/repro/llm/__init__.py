"""LLM substrate: chat interface, simulated model, prompts, rate limiting."""

from repro.llm.base import (
    ChatCompletionClient,
    ChatMessage,
    ChatResponse,
    ChatUsage,
    assistant,
    system,
    user,
)
from repro.llm.content_filter import ContentFilter, ContentFilterResult
from repro.llm.prompts import (
    ContextDocument,
    build_answer_prompt,
    build_blind_answer_prompt,
    build_keywords_prompt,
    build_related_queries_prompt,
    build_summary_prompt,
    context_from_results,
    render_context_json,
)
from repro.llm.rate_limiter import RateLimitDecision, TokenBucketRateLimiter
from repro.llm.simulated import REFUSAL_TEXT, SimulatedChatLLM

__all__ = [
    "ChatCompletionClient",
    "ChatMessage",
    "ChatResponse",
    "ChatUsage",
    "assistant",
    "system",
    "user",
    "ContentFilter",
    "ContentFilterResult",
    "ContextDocument",
    "build_answer_prompt",
    "build_blind_answer_prompt",
    "build_keywords_prompt",
    "build_related_queries_prompt",
    "build_summary_prompt",
    "context_from_results",
    "render_context_json",
    "RateLimitDecision",
    "TokenBucketRateLimiter",
    "REFUSAL_TEXT",
    "SimulatedChatLLM",
]
