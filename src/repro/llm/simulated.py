"""Simulated chat LLM.

Offline stand-in for the gpt-3.5-turbo deployment of Section 5.  The
simulation is *behavioural*: it consumes the exact prompts produced by
:mod:`repro.llm.prompts` (JSON context, citation instructions, task tags)
and reproduces the externally observable behaviours the paper measures —

* **grounded answering**: when the context contains chunks relevant to the
  question, the model answers extractively in Italian, citing sources in
  the required ``[docK]`` format;
* **honest refusal**: when the context does not support an answer, the
  model says it does not know (no citations — which is exactly what the
  citation guardrail keys on);
* **failure modes**, drawn from a seeded RNG and scaled by temperature:
  dropping citations, drifting off-context (low ROUGE vs. context), and
  ending with a request for clarification.  Their default rates are
  calibrated so the guardrail distribution of Table 5 emerges from the
  pipeline rather than being hard-coded;
* **auxiliary tasks** used elsewhere in the system: lead-based document
  summaries, keyword extraction, context-free (blind) answers for QGA, and
  related-query generation for MQ1/MQ2.

Determinism: each call derives its RNG from (seed, run_nonce, prompt), so a
fixed configuration replays exactly, while :meth:`reseed` models the
run-to-run non-determinism the paper accounts for when testing guardrails.
"""

from __future__ import annotations

import hashlib
import json
import random
import re

from repro.embeddings.concepts import ConceptLexicon, concept_overlap
from repro.llm.base import (
    RESPONSE_KIND_ANSWER,
    RESPONSE_KIND_CLARIFICATION,
    RESPONSE_KIND_REFUSAL,
    ChatMessage,
    ChatResponse,
    ChatUsage,
)
from repro.llm.prompts import (
    TASK_ANSWER,
    TASK_BLIND_ANSWER,
    TASK_KEYWORDS,
    TASK_RELATED_QUERIES,
    TASK_SUMMARY,
)
from repro.text.tokenizer import DEFAULT_TOKEN_COUNTER, sentence_split

#: The refusal the prompt instructs the model to produce when the context
#: does not support an answer.
REFUSAL_TEXT = "Mi dispiace, non conosco la risposta a questa domanda in base alla documentazione disponibile."
REFUSAL_TEXT_EN = "I am sorry, I do not know the answer to this question based on the available documentation."

_CONTEXT_RE = re.compile(r"Contesto:\n(\[.*\])\n\nDomanda: (.*?)(?:\n\n|$)", re.DOTALL)


def _identifier_tokens(text: str) -> set[str]:
    """Jargon identifiers in *text*: codes and product names.

    A token qualifies when it contains a digit (error/procedure codes) or
    an upper-case letter past its first character (CamelCase application
    names, acronyms).  Matching is case-insensitive on the result.
    """
    from repro.text.tokenizer import word_tokenize

    identifiers = set()
    for token in word_tokenize(text):
        if any(ch.isdigit() for ch in token) or any(ch.isupper() for ch in token[1:]):
            identifiers.add(token.lower())
    return identifiers

#: Per-language text resources; "it" is the deployment language, "en"
#: exists for the paper's "adapt to other languages" future work.
_LANGUAGE_PACKS: dict[str, dict] = {
    "it": {
        "refusal": REFUSAL_TEXT,
        "openers": (
            "In base alla documentazione interna,",
            "Secondo le informazioni disponibili,",
            "Come indicato nella knowledge base,",
        ),
        "clarification": (
            " Per fornire una risposta più precisa, potresti indicare maggiori "
            "dettagli sulla tua richiesta?"
        ),
        "hallucinations": (
            "La procedura per {a} prevede di contattare il servizio {b} entro due giorni lavorativi.",
            "Per gestire {a} è necessario aprire una richiesta tramite {b} e attendere l'approvazione.",
            "Il sistema {b} consente di completare {a} direttamente dal portale dei dipendenti.",
        ),
    },
    "en": {
        "refusal": REFUSAL_TEXT_EN,
        "openers": (
            "According to the internal documentation,",
            "Based on the available information,",
            "As stated in the knowledge base,",
        ),
        "clarification": (
            " To give a more precise answer, could you provide more details "
            "about your request?"
        ),
        "hallucinations": (
            "The procedure for {a} requires contacting the {b} service within two business days.",
            "To handle {a} you need to open a request through {b} and wait for approval.",
            "The {b} system lets you complete {a} directly from the employee portal.",
        ),
    },
}


class SimulatedChatLLM:
    """Deterministic, seeded simulation of a chat-completion LLM.

    Args:
        lexicon: concept lexicon used to judge question/context relevance
            and to produce fluent-but-wrong hallucinations.
        seed: model identity seed.
        relevance_threshold: minimum concept overlap for a context chunk to
            count as supporting the question.
        p_missing_citation: probability of producing a grounded answer but
            forgetting the ``[docK]`` citations (caught by the citation
            guardrail).
        p_off_context: probability of drifting into generic prose unrelated
            to the context (caught by the ROUGE guardrail).
        p_clarification: probability of ending the answer with a request for
            more details (caught by the clarification guardrail).
        temperature_failure_scale: how strongly temperature amplifies the
            failure probabilities.
    """

    def __init__(
        self,
        lexicon: ConceptLexicon,
        seed: int = 7,
        relevance_threshold: float = 0.12,
        p_missing_citation: float = 0.035,
        p_off_context: float = 0.011,
        p_clarification: float = 0.002,
        temperature_failure_scale: float = 1.0,
        language: str = "it",
        registry=None,
    ) -> None:
        from repro.obs.metrics import NULL_REGISTRY

        if language not in _LANGUAGE_PACKS:
            raise ValueError(f"unsupported language {language!r}")
        registry = registry or NULL_REGISTRY
        self._m_completions = registry.counter(
            "uniask_llm_completions_total", "Chat completions served by the LLM."
        )
        self._m_tokens = registry.counter(
            "uniask_llm_tokens_total", "Tokens processed by the LLM, by kind.", ("kind",)
        )
        self._pack = _LANGUAGE_PACKS[language]
        self._lexicon = lexicon
        self._seed = seed
        self._run_nonce = 0
        self._relevance_threshold = relevance_threshold
        self._p_missing_citation = p_missing_citation
        self._p_off_context = p_off_context
        self._p_clarification = p_clarification
        self._temperature_scale = temperature_failure_scale
        self._counter = DEFAULT_TOKEN_COUNTER
        self.calls = 0

    def reseed(self, run_nonce: int) -> None:
        """Start a new "run": same prompts may now draw different failures.

        Models the LLM non-determinism the paper handles by assessing
        guardrails over multiple runs (Section 6).
        """
        self._run_nonce = run_nonce

    def complete(
        self,
        messages: list[ChatMessage],
        temperature: float = 0.0,
        max_tokens: int = 512,
    ) -> ChatResponse:
        """Answer a chat conversation; dispatches on the prompt's task tag."""
        self.calls += 1
        system_text = "\n".join(m.content for m in messages if m.role == "system")
        user_text = "\n".join(m.content for m in messages if m.role == "user")
        rng = self._rng_for(system_text + "\x00" + user_text, temperature)

        kind = RESPONSE_KIND_ANSWER
        if TASK_ANSWER in system_text:
            content, kind = self._rag_answer(user_text, temperature, rng)
        elif TASK_SUMMARY in system_text:
            content = self._summarize(user_text)
        elif TASK_KEYWORDS in system_text:
            content = self._keywords(user_text)
        elif TASK_BLIND_ANSWER in system_text:
            content = self._blind_answer(user_text, rng)
        elif TASK_RELATED_QUERIES in system_text:
            content = self._related_queries(system_text, user_text)
        else:
            content = self._pack["refusal"]
            kind = RESPONSE_KIND_REFUSAL

        content = self._counter.truncate(content, max_tokens) if max_tokens else content
        prompt_tokens = self._counter.count(system_text) + self._counter.count(user_text)
        usage = ChatUsage(
            prompt_tokens=prompt_tokens,
            completion_tokens=self._counter.count(content),
        )
        self._m_completions.inc()
        self._m_tokens.labels("prompt").inc(usage.prompt_tokens)
        self._m_tokens.labels("completion").inc(usage.completion_tokens)
        return ChatResponse(content=content, usage=usage, kind=kind)

    # -- RAG answering -------------------------------------------------------

    def _rag_answer(
        self, user_text: str, temperature: float, rng: random.Random
    ) -> tuple[str, str]:
        """The (content, kind) of one RAG answer.

        The typed kind classifies the observable behaviour — grounded or
        hallucinated prose is an *answer*, honest refusals are *refusals*,
        and an appended request for details marks the whole reply a
        *clarification request* — so downstream agents (the FollowUp
        agent's merge semantics, guardrail metrics) can route on the
        outcome instead of re-parsing the text.
        """
        match = _CONTEXT_RE.search(user_text)
        if not match:
            return self._pack["refusal"], RESPONSE_KIND_REFUSAL
        try:
            documents = json.loads(match.group(1))
        except json.JSONDecodeError:
            return self._pack["refusal"], RESPONSE_KIND_REFUSAL
        question = match.group(2).strip()

        scored = []
        for document in documents:
            passage = f"{document.get('title', '')} {document.get('content', '')}"
            relevance = self._relevance(question, passage)
            scored.append((relevance, document))
        scored.sort(key=lambda pair: -pair[0])

        supporting = [(rel, doc) for rel, doc in scored if rel >= self._relevance_threshold]
        failure_scale = 1.0 + self._temperature_scale * temperature

        if not supporting:
            # A weakly related context sometimes seduces the model into a
            # fluent, ungrounded answer instead of an honest refusal.
            best = scored[0][0] if scored else 0.0
            if best > self._relevance_threshold / 2 and rng.random() < 0.25:
                return self._hallucinate(question, rng), RESPONSE_KIND_ANSWER
            return self._pack["refusal"], RESPONSE_KIND_REFUSAL

        answer = self._compose_grounded_answer(question, supporting, rng)

        if rng.random() < self._p_off_context * failure_scale:
            return self._hallucinate(question, rng), RESPONSE_KIND_ANSWER
        if rng.random() < self._p_missing_citation * failure_scale:
            answer = re.sub(r"\s*\[doc\d+\]", "", answer)
        if rng.random() < self._p_clarification * failure_scale:
            return answer + self._pack["clarification"], RESPONSE_KIND_CLARIFICATION
        return answer, RESPONSE_KIND_ANSWER

    def _relevance(self, question: str, passage: str) -> float:
        """How strongly the passage supports the question.

        Blends concept-level agreement (paraphrase understanding) with
        identifier overlap — an LLM reading the context trivially matches
        literal tokens like error codes ("ERR-1003") and application names
        ("CreditFlow") that the concept lexicon does not cover.  Ordinary
        words do not count here, or any shared boilerplate would look like
        support.
        """
        conceptual = concept_overlap(self._lexicon, question, passage).score
        question_ids = _identifier_tokens(question)
        if question_ids:
            passage_ids = _identifier_tokens(passage)
            lexical = len(question_ids & passage_ids) / len(question_ids)
        else:
            lexical = 0.0
        return max(conceptual, lexical)

    def _compose_grounded_answer(
        self,
        question: str,
        supporting: list[tuple[float, dict]],
        rng: random.Random,
    ) -> str:
        """Extract the most question-relevant sentences, citing their sources."""
        candidate_sentences: list[tuple[float, str, str]] = []
        for relevance, document in supporting[:3]:
            key = document.get("key", "doc1")
            for sentence in sentence_split(document.get("content", "")):
                sentence_relevance = self._relevance(question, sentence)
                candidate_sentences.append((sentence_relevance + 0.25 * relevance, sentence, key))
        candidate_sentences.sort(key=lambda triple: -triple[0])

        picked = candidate_sentences[:3]
        if not picked:
            _, document = supporting[0]
            first = sentence_split(document.get("content", ""))[:1]
            picked = [(0.0, first[0] if first else document.get("title", ""), document.get("key", "doc1"))]

        openers = self._pack["openers"]
        opener = openers[rng.randrange(len(openers))]
        parts = []
        for position, (_, sentence, key) in enumerate(picked):
            body = sentence.rstrip(".")
            prefix = f"{opener} " if position == 0 else ""
            parts.append(f"{prefix}{body} [{key}].")
        return " ".join(parts)

    def _hallucinate(self, question: str, rng: random.Random) -> str:
        """A fluent, plausible, *wrong* answer built from off-context concepts."""
        concepts = self._lexicon.concepts
        if not concepts:
            return "La richiesta può essere gestita tramite il portale interno della banca."
        a = concepts[rng.randrange(len(concepts))].canonical
        b = concepts[rng.randrange(len(concepts))].canonical
        templates = self._pack["hallucinations"]
        return templates[rng.randrange(len(templates))].format(a=a, b=b)

    # -- auxiliary tasks -------------------------------------------------------

    def _summarize(self, user_text: str) -> str:
        body = user_text.split("\n\n", 1)[-1]
        sentences = sentence_split(body)
        return " ".join(sentences[:2]) if sentences else body[:200]

    def _keywords(self, user_text: str) -> str:
        weights = self._lexicon.concepts_in_text(user_text)
        ranked = sorted(weights.items(), key=lambda pair: (-pair[1], pair[0]))
        terms = [self._lexicon.get(concept_id).canonical for concept_id, _ in ranked[:8]]
        return ", ".join(terms)

    def _blind_answer(self, question: str, rng: random.Random) -> str:
        """QGA: an answer produced with no context — topical but noisy.

        Mixes the question's own concepts with generic banking boilerplate
        and a couple of *unrelated* concepts, which is why expanding the
        query with this text degrades retrieval (Table 3).
        """
        weights = self._lexicon.concepts_in_text(question)
        own = [self._lexicon.get(cid).canonical for cid in sorted(weights, key=weights.get, reverse=True)[:3]]
        concepts = self._lexicon.concepts
        noise = [concepts[rng.randrange(len(concepts))].canonical for _ in range(3)] if concepts else []
        topic = ", ".join(own) if own else "la tua richiesta"
        extras = ", ".join(noise)
        return (
            f"Per quanto riguarda {topic}, la procedura standard prevede di accedere al portale "
            f"interno e seguire le istruzioni operative. In alcuni casi è necessario verificare "
            f"anche {extras} contattando l'assistenza di filiale."
        )

    def _related_queries(self, system_text: str, question: str) -> str:
        """MQ1/MQ2: rephrase the question swapping concept surface forms."""
        requested = 3
        match = re.search(r"Genera (\d+) domande", system_text)
        if match:
            requested = int(match.group(1))

        # The LLM rephrases with the *user's own* topical words — it has no
        # access to the bank's internal jargon (precisely why RAG is needed),
        # so it cannot translate a paraphrase into the canonical term.  Two
        # rephrasings reuse the question's content words under different
        # scaffolds; the rest are generic procedural questions, the noise
        # that keeps MQ expansion from helping (Table 3).
        from repro.text.stopwords import ITALIAN_STOPWORDS
        from repro.text.tokenizer import word_tokenize

        content_words = [
            token for token in word_tokenize(question) if token.lower() not in ITALIAN_STOPWORDS
        ]
        topic = " ".join(content_words[:6]) if content_words else "la richiesta del cliente"
        lines = [
            f"Qual è la procedura corretta per {topic}?",
            f"Quali passaggi operativi servono per {topic}?",
            "Quali sono le istruzioni per completare la richiesta del cliente in filiale?",
            "Dove trovo la documentazione operativa aggiornata?",
        ]
        while len(lines) < requested:
            lines.append(f"{question} (dettagli operativi)")
        return "\n".join(lines[:requested])

    # -- internals -------------------------------------------------------------

    def _rng_for(self, prompt: str, temperature: float) -> random.Random:
        digest = hashlib.blake2b(
            f"{self._seed}:{self._run_nonce}:{temperature}:{prompt}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return random.Random(int.from_bytes(digest, "little"))
