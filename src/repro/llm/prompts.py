"""Prompt engineering for UniAsk.

Builds the exact prompt structure described in Section 5:

1. **general background context** — the assistant serves UniCredit
   employees and must answer from a list of retrieved documents;
2. **specific context** — the top *m* retrieved chunks, formatted as a JSON
   list of ``{"key": ..., "title": ..., "content": ...}`` dictionaries,
   preceded by input-format instructions;
3. **recommendations** for a valid answer: always cite sources using the
   ``[docK]`` format, answer in Italian, say "non lo so" when the context
   does not support an answer;
4. **repeated** citation instructions — the paper found that repeating the
   important requirements keeps the LLM from forgetting them.

The auxiliary task prompts (document summary, keyword extraction, blind
answer and related-query generation for the Table 3/4 experiments) live
here too, each stamped with a ``TASK:`` tag that the offline simulated LLM
dispatches on — a real deployment would simply send the same prompts to
gpt-3.5-turbo.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.llm.base import ChatMessage, system, user
from repro.search.results import RetrievedChunk

#: Task tags used by the simulated LLM to dispatch behaviour.
TASK_ANSWER = "TASK: rag_answer"
TASK_SUMMARY = "TASK: summarize_document"
TASK_KEYWORDS = "TASK: extract_keywords"
TASK_BLIND_ANSWER = "TASK: blind_answer"
TASK_RELATED_QUERIES = "TASK: related_queries"

#: Citation format required of the model: [doc1], [doc2], ...
CITATION_PREFIX = "doc"

_BACKGROUND = (
    "Sei l'assistente virtuale dei dipendenti di UniCredit. "
    "Il tuo compito è rispondere alla domanda di un dipendente basandoti "
    "esclusivamente sul contesto fornito: una lista di documenti rilevanti "
    "recuperati dalla base di conoscenza interna della banca."
)

_INPUT_FORMAT = (
    "Il contesto è una lista JSON; ogni documento è un dizionario con le "
    'chiavi "key" (identificatore), "title" (titolo) e "content" (contenuto).'
)

_RECOMMENDATIONS = (
    "Raccomandazioni per una risposta valida:\n"
    "1. Ogni frase della risposta deve citare i documenti del contesto "
    "usati come fonte, nel formato [doc1], [doc2].\n"
    "2. Rispondi sempre in italiano.\n"
    "3. Se il contesto non contiene chiaramente le informazioni necessarie, "
    "rispondi che non conosci la risposta.\n"
    "4. La risposta deve essere autonoma e completa."
)

_REPEATED_INSTRUCTIONS = (
    "Ricorda: includi SEMPRE almeno una citazione nel formato [docK]. "
    "Le citazioni devono usare esattamente il formato [doc1], [doc2], ... "
    "riferendosi alle chiavi dei documenti del contesto."
)


@dataclass(frozen=True)
class ContextDocument:
    """One chunk as presented to the LLM in the JSON context."""

    key: str
    title: str
    content: str


def context_from_results(results: list[RetrievedChunk], m: int = 4) -> list[ContextDocument]:
    """Convert the top *m* retrieved chunks into prompt context documents.

    Keys are positional (``doc1`` … ``docm``) so citations are compact and
    unambiguous, per the paper's format instructions.
    """
    documents = []
    for position, result in enumerate(results[:m], start=1):
        documents.append(
            ContextDocument(
                key=f"{CITATION_PREFIX}{position}",
                title=result.record.title,
                content=result.record.content,
            )
        )
    return documents


def render_context_json(documents: list[ContextDocument]) -> str:
    """Serialize context documents to the JSON list fed to the LLM."""
    payload = [
        {"key": document.key, "title": document.title, "content": document.content}
        for document in documents
    ]
    return json.dumps(payload, ensure_ascii=False)


def build_answer_prompt(question: str, documents: list[ContextDocument]) -> list[ChatMessage]:
    """The full UniAsk generation prompt for *question* over *documents*."""
    system_content = "\n\n".join(
        [TASK_ANSWER, _BACKGROUND, _INPUT_FORMAT, _RECOMMENDATIONS, _REPEATED_INSTRUCTIONS]
    )
    user_content = (
        f"Contesto:\n{render_context_json(documents)}\n\n"
        f"Domanda: {question}\n\n"
        f"{_REPEATED_INSTRUCTIONS}"
    )
    return [system(system_content), user(user_content)]


def build_summary_prompt(title: str, text: str) -> list[ChatMessage]:
    """Metadata enrichment: summarize a whole document (Section 3)."""
    return [
        system(f"{TASK_SUMMARY}\nRiassumi il documento in poche frasi, in italiano."),
        user(f"Titolo: {title}\n\n{text}"),
    ]


def build_keywords_prompt(title: str, text: str | None = None) -> list[ChatMessage]:
    """Metadata enrichment: extract keywords from title (and content).

    With ``text=None`` this is the HSS-KT variant (title only); otherwise
    HSS-KTC (title and content) — Table 4.
    """
    body = f"Titolo: {title}"
    if text is not None:
        body += f"\n\n{text}"
    return [
        system(f"{TASK_KEYWORDS}\nEstrai una lista di parole chiave, separate da virgole."),
        user(body),
    ]


def build_blind_answer_prompt(question: str) -> list[ChatMessage]:
    """QGA expansion: answer with no retrieved context (Table 3)."""
    return [
        system(f"{TASK_BLIND_ANSWER}\nRispondi alla domanda senza alcun contesto."),
        user(question),
    ]


def build_related_queries_prompt(question: str, n: int) -> list[ChatMessage]:
    """MQ expansion: generate *n* queries related to the question (Table 3)."""
    return [
        system(f"{TASK_RELATED_QUERIES}\nGenera {n} domande correlate, una per riga."),
        user(question),
    ]
