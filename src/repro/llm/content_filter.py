"""Content filter.

Stand-in for the Azure OpenAI Content Filter the paper runs on incoming
questions (Section 6) to detect and block harmful content — inappropriate
language, or attempts to use the assistant beyond its intended purpose.

The offline implementation is lexicon + pattern based: a category-tagged
list of Italian/English harmful terms plus prompt-injection patterns.  It
reports the *category* of the match so the monitoring dashboard can break
blocks down, as the real service does.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.text.tokenizer import word_tokenize

#: category -> lower-case trigger terms.
_DEFAULT_LEXICON: dict[str, frozenset[str]] = {
    "hate": frozenset(["odio", "razzista", "discriminare", "insulto", "idiota", "stupido"]),
    "violence": frozenset(["uccidere", "bomba", "arma", "sparare", "aggredire", "minacciare"]),
    "self_harm": frozenset(["suicidio", "autolesionismo", "farmi del male"]),
    "sexual": frozenset(["pornografia", "sessuale", "osceno"]),
    "fraud": frozenset(["riciclare", "frode", "evadere", "falsificare", "rubare", "truffa"]),
}

#: Prompt-injection / jailbreak phrasings (off-purpose use).
_INJECTION_PATTERNS = (
    re.compile(r"ignora\s+(le\s+)?istruzioni", re.IGNORECASE),
    re.compile(r"ignore\s+(all\s+)?previous\s+instructions", re.IGNORECASE),
    re.compile(r"fingi\s+di\s+essere", re.IGNORECASE),
    re.compile(r"system\s+prompt", re.IGNORECASE),
)


@dataclass(frozen=True)
class ContentFilterResult:
    """Outcome of screening one text."""

    blocked: bool
    category: str = ""
    matched_term: str = ""


class ContentFilter:
    """Lexicon/pattern content screening applied to user questions."""

    def __init__(self, lexicon: dict[str, frozenset[str]] | None = None) -> None:
        self._lexicon = lexicon if lexicon is not None else _DEFAULT_LEXICON

    def check(self, text: str) -> ContentFilterResult:
        """Screen *text*; returns the first matching category, if any."""
        lowered = text.lower()
        for pattern in _INJECTION_PATTERNS:
            match = pattern.search(lowered)
            if match:
                return ContentFilterResult(blocked=True, category="injection", matched_term=match.group(0))

        tokens = {token.lower() for token in word_tokenize(lowered)}
        for category, terms in self._lexicon.items():
            hit = tokens & terms
            if hit:
                return ContentFilterResult(blocked=True, category=category, matched_term=sorted(hit)[0])
            # Multi-word phrases are matched on the raw text.
            for term in terms:
                if " " in term and term in lowered:
                    return ContentFilterResult(blocked=True, category=category, matched_term=term)
        return ContentFilterResult(blocked=False)
