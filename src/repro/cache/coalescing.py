"""Single-flight request coalescing on the simulated clock.

Production traffic bursts around the same procedures: when ten employees
ask "come sbloccare la carta?" within the same few seconds, only the first
request needs to run the retrieve → generate → validate pipeline — the
other nine should **wait for the in-flight computation** and share its
answer.  That is single-flight semantics (one execution per key per flight
window), and it composes with the answer cache: the leader's answer lands
in the cache as usual, so stragglers arriving *after* the flight completes
hit the exact tier instead.

Time is the deployment's simulated clock.  A flight for key *k* started at
``t0`` with modeled response time ``d`` occupies the window
``[t0, t0 + d)``; a request for *k* arriving at ``t < t0 + d`` joins the
flight and is charged only the remaining wait ``t0 + d - t``.  Everything
is deterministic — no threads, no wall clock — which is exactly what lets
the coalescing tests assert "each unique in-flight question executed the
pipeline exactly once".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.answer import UniAskAnswer

#: Completed flights are pruned once the table grows past this bound.
_PRUNE_THRESHOLD = 1024


@dataclass(frozen=True)
class Flight:
    """One in-flight (or recently completed) pipeline execution."""

    key: tuple
    request_id: str
    started_at: float
    completes_at: float
    answer: UniAskAnswer

    def live_at(self, now: float) -> bool:
        """True while a request arriving at *now* can still join."""
        return now < self.completes_at


@dataclass
class SingleFlightStats:
    """Lifetime counters of one :class:`SingleFlight` table."""

    flights: int = 0
    coalesced_waits: int = 0


class SingleFlight:
    """The flight table: at most one live execution per request key."""

    def __init__(self) -> None:
        self._flights: dict[tuple, Flight] = {}
        self.stats = SingleFlightStats()

    def __len__(self) -> int:
        return len(self._flights)

    def join(self, key: tuple, now: float) -> Flight | None:
        """The live flight for *key* at *now*, if one exists.

        Joining counts a coalesced wait; a completed flight is dropped
        (its answer now lives in the answer cache, not here).
        """
        flight = self._flights.get(key)
        if flight is None:
            return None
        if not flight.live_at(now):
            del self._flights[key]
            return None
        self.stats.coalesced_waits += 1
        return flight

    def register(
        self,
        key: tuple,
        request_id: str,
        started_at: float,
        completes_at: float,
        answer: UniAskAnswer,
    ) -> Flight:
        """Record the leader execution for *key* over its flight window."""
        flight = Flight(
            key=key,
            request_id=request_id,
            started_at=started_at,
            completes_at=completes_at,
            answer=answer,
        )
        self._flights[key] = flight
        self.stats.flights += 1
        if len(self._flights) > _PRUNE_THRESHOLD:
            self._prune(started_at)
        return flight

    def _prune(self, now: float) -> None:
        """Drop completed flights (deterministic, insertion-ordered)."""
        done = [key for key, flight in self._flights.items() if not flight.live_at(now)]
        for key in done:
            del self._flights[key]
