"""Configuration of the multi-tier cache subsystem."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheConfig:
    """Everything tunable about the cache layer of one deployment.

    The cache is **off by default**: a deployment built without touching
    this config behaves byte-identically to one predating the cache
    subsystem (verified differentially by the cache test suite).  Enabling
    it turns on four independent tiers, each with its own switch:

    Attributes:
        enabled: master switch for the whole subsystem.
        answer: exact answer tier — one :class:`~repro.cache.AnswerCache`
            entry per (analyzer-normalized question, filters, index epoch),
            with TTL and LRU bounds on the deployment's simulated clock.
        semantic: near-hit tier — a lookup that misses the exact tier may
            reuse a cached answer whose stored query embedding's cosine
            similarity meets :attr:`semantic_threshold` (the served answer
            is marked ``cache_hit="semantic"``).
        retrieval: per-shard retrieval-result cache inside the cluster
            router, invalidated by each shard's write generation.
        coalescing: single-flight request coalescing in the backend —
            concurrent identical questions execute the pipeline once and
            share the leader's answer.
        answer_capacity: maximum entries of the answer cache (LRU beyond).
        answer_ttl_seconds: entry lifetime on the pipeline clock (None
            disables expiry).
        semantic_threshold: minimum cosine similarity for a semantic hit.
        retrieval_capacity: maximum cached retrievals **per shard**.
    """

    enabled: bool = False
    answer: bool = True
    semantic: bool = True
    retrieval: bool = True
    coalescing: bool = True
    answer_capacity: int = 1024
    answer_ttl_seconds: float | None = 3600.0
    semantic_threshold: float = 0.97
    retrieval_capacity: int = 2048

    def __post_init__(self) -> None:
        if self.answer_capacity <= 0:
            raise ValueError("answer_capacity must be positive")
        if self.retrieval_capacity <= 0:
            raise ValueError("retrieval_capacity must be positive")
        if self.answer_ttl_seconds is not None and self.answer_ttl_seconds <= 0:
            raise ValueError("answer_ttl_seconds must be positive (or None)")
        if not (0.0 < self.semantic_threshold <= 1.0):
            raise ValueError("semantic_threshold must be in (0, 1]")

    @property
    def answer_tier_active(self) -> bool:
        """True when the exact answer tier records and serves entries."""
        return self.enabled and self.answer

    @property
    def semantic_tier_active(self) -> bool:
        """True when near-hit reuse is allowed (requires the answer tier)."""
        return self.answer_tier_active and self.semantic

    @property
    def retrieval_tier_active(self) -> bool:
        """True when the cluster router caches per-shard leg results."""
        return self.enabled and self.retrieval

    @property
    def coalescing_active(self) -> bool:
        """True when the backend coalesces concurrent identical questions."""
        return self.enabled and self.coalescing
