"""The answer cache: exact tier plus semantic near-hit tier.

The exact tier maps an analyzer-normalized question (plus filters) to the
full :class:`~repro.core.answer.UniAskAnswer` the pipeline produced for
it.  Entries are stamped with the **index epoch** at computation time and
the **store time** on the deployment's simulated clock; a lookup serves an
entry only while the epoch still matches (no corpus write since) and the
TTL has not elapsed.  Capacity is bounded by LRU eviction.

The semantic tier rides on the same store: every entry optionally keeps
the unit-norm embedding of the question it answered, and a lookup that
misses the exact tier may reuse the entry whose embedding is most similar
to the incoming query — provided the cosine similarity meets the
configured threshold.  Embeddings are unit vectors (see
:mod:`repro.embeddings.model`), so cosine similarity is a dot product.

Everything is deterministic: no wall clock, no RNG; ties in the semantic
scan break on insertion order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.key import CacheKey, answer_cache_key
from repro.core.answer import UniAskAnswer
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.work import (
    WORK_CACHE_EXACT_HITS,
    WORK_CACHE_EXACT_MISSES,
    WORK_CACHE_SEMANTIC_HITS,
    WORK_CACHE_SEMANTIC_MISSES,
)
from repro.pipeline.clock import SimulatedClock
from repro.text.analyzer import FULL_ANALYZER

#: ``cache_hit`` marker of an answer served from the exact tier.
HIT_EXACT = "exact"

#: ``cache_hit`` marker of an answer reused via embedding similarity.
HIT_SEMANTIC = "semantic"

#: ``cache_hit`` marker of an answer shared by a coalesced in-flight request.
HIT_COALESCED = "coalesced"


@dataclass(frozen=True)
class CacheHit:
    """One successful answer-cache lookup."""

    answer: UniAskAnswer
    kind: str  # HIT_EXACT or HIT_SEMANTIC
    similarity: float


@dataclass
class AnswerCacheStats:
    """Lifetime counters of one :class:`AnswerCache`."""

    hits_exact: int = 0
    hits_semantic: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        """Exact plus semantic hits."""
        return self.hits_exact + self.hits_semantic

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass
class _Entry:
    """One cached answer with its validity stamps."""

    answer: UniAskAnswer
    epoch: int
    stored_at: float
    embedding: np.ndarray | None = None
    filters: tuple = field(default_factory=tuple)
    namespace: str = ""


def _key_namespace(key: CacheKey) -> str:
    """The namespace a key was built with ("" for plain keys).

    The namespace sentinel is the key's first term (see
    :func:`~repro.cache.key.answer_cache_key`); deriving it back here
    keeps lookup/store signatures unchanged while letting the semantic
    tier refuse cross-namespace reuse.
    """
    terms, _ = key
    if terms and terms[0].startswith("\x00ns:"):
        return terms[0][len("\x00ns:"):]
    return ""


class AnswerCache:
    """LRU + TTL answer cache with an optional semantic near-hit tier.

    Args:
        config: tier switches and bounds (the cache assumes the caller
            checked ``config.answer_tier_active`` before constructing it).
        clock: the deployment's simulated clock; TTLs are evaluated
            against it, so expiry is deterministic and replayable.
        analyzer: normalization authority for the exact-tier key
            (defaults to the production Italian chain).
        registry: metrics registry for the
            ``uniask_answer_cache_events_total`` counter.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        clock: SimulatedClock | None = None,
        analyzer=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or CacheConfig(enabled=True)
        self._clock = clock if clock is not None else SimulatedClock()
        self._analyzer = analyzer if analyzer is not None else FULL_ANALYZER
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self.stats = AnswerCacheStats()
        registry = registry or NULL_REGISTRY
        self._m_events = registry.counter(
            "uniask_answer_cache_events_total",
            "Answer-cache lifecycle events, by kind.",
            ("event",),
        )

    def __len__(self) -> int:
        return len(self._entries)

    def key(
        self,
        question: str,
        filters: Mapping[str, str] | None = None,
        namespace: str = "",
    ) -> CacheKey:
        """The exact-tier key of *question* under *filters*.

        *namespace* partitions the cache (agent routes); "" yields the
        plain pre-namespace key.
        """
        return answer_cache_key(question, filters, self._analyzer, namespace=namespace)

    # -- lookup --------------------------------------------------------------

    def lookup(
        self,
        key: CacheKey,
        epoch: int,
        embed_fn: Callable[[], np.ndarray] | None = None,
        work=None,
    ) -> CacheHit | None:
        """Serve *key* at *epoch*, trying exact first, then semantic.

        *embed_fn* lazily supplies the incoming question's unit-norm
        embedding; it is called at most once, and only when the semantic
        tier is active and the store holds candidate entries.  Returns
        None on a miss (counted once, whichever tiers were tried).

        *work* optionally books one ``cache_exact_hits``/``…_misses``
        unit for the exact consult and one ``cache_semantic_hits``/
        ``…_misses`` unit when the semantic tier was actually tried.
        """
        now = self._clock.now()
        entry = self._entries.get(key)
        if entry is not None and not self._valid(key, entry, epoch, now):
            entry = None
        if entry is not None:
            if work is not None:
                work.add(WORK_CACHE_EXACT_HITS)
            self._entries.move_to_end(key)
            self.stats.hits_exact += 1
            self._m_events.labels("hit_exact").inc()
            return CacheHit(answer=entry.answer, kind=HIT_EXACT, similarity=1.0)
        if work is not None:
            work.add(WORK_CACHE_EXACT_MISSES)

        if self.config.semantic_tier_active and embed_fn is not None:
            hit = self._semantic_lookup(key, epoch, now, embed_fn)
            if work is not None:
                work.add(
                    WORK_CACHE_SEMANTIC_HITS if hit is not None else WORK_CACHE_SEMANTIC_MISSES
                )
            if hit is not None:
                self.stats.hits_semantic += 1
                self._m_events.labels("hit_semantic").inc()
                return hit

        self.stats.misses += 1
        self._m_events.labels("miss").inc()
        return None

    def _semantic_lookup(
        self,
        key: CacheKey,
        epoch: int,
        now: float,
        embed_fn: Callable[[], np.ndarray],
    ) -> CacheHit | None:
        """Best cosine match among valid entries under the same filters.

        Candidates must also share the key's namespace: embeddings ignore
        the route sentinel, so without this check a semantically similar
        question could be served an answer computed down a different
        agent route.
        """
        _, filters = key
        namespace = _key_namespace(key)
        candidates = [
            (entry_key, entry)
            for entry_key, entry in self._entries.items()
            if entry.filters == filters
            and entry.namespace == namespace
            and entry.embedding is not None
        ]
        if not candidates:
            return None
        query_vector = embed_fn()
        best_key: CacheKey | None = None
        best: _Entry | None = None
        best_similarity = -1.0
        stale: list[CacheKey] = []
        for entry_key, entry in candidates:
            if not self._check(entry, epoch, now):
                stale.append(entry_key)
                continue
            similarity = float(np.dot(query_vector, entry.embedding))
            if similarity > best_similarity:
                best_key, best, best_similarity = entry_key, entry, similarity
        for entry_key in stale:
            self._drop_stale(entry_key, epoch, now)
        if best is None or best_similarity < self.config.semantic_threshold:
            return None
        self._entries.move_to_end(best_key)
        return CacheHit(answer=best.answer, kind=HIT_SEMANTIC, similarity=best_similarity)

    # -- store ---------------------------------------------------------------

    def store(
        self,
        key: CacheKey,
        answer: UniAskAnswer,
        epoch: int,
        embedding: np.ndarray | None = None,
    ) -> None:
        """Cache *answer* under *key*, stamped with *epoch* and the clock.

        The stored answer is stripped of its per-request envelope (trace,
        response time, hit markers) so every future hit starts clean.
        """
        answer = replace(
            answer, trace=None, response_time=0.0, cache_hit="", cache_similarity=0.0, work=None
        )
        if key in self._entries:
            del self._entries[key]  # refresh re-inserts at the LRU tail
        self._entries[key] = _Entry(
            answer=answer,
            epoch=epoch,
            stored_at=self._clock.now(),
            embedding=embedding if self.config.semantic_tier_active else None,
            filters=key[1],
            namespace=_key_namespace(key),
        )
        self.stats.stores += 1
        self._m_events.labels("store").inc()
        while len(self._entries) > self.config.answer_capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._m_events.labels("evict").inc()

    # -- validity ------------------------------------------------------------

    def _check(self, entry: _Entry, epoch: int, now: float) -> bool:
        """True while *entry* is servable at *epoch* / *now*."""
        if entry.epoch != epoch:
            return False
        ttl = self.config.answer_ttl_seconds
        if ttl is not None and now - entry.stored_at >= ttl:
            return False
        return True

    def _valid(self, key: CacheKey, entry: _Entry, epoch: int, now: float) -> bool:
        """Like :meth:`_check`, dropping (and counting) a stale entry."""
        if self._check(entry, epoch, now):
            return True
        self._drop_stale(key, epoch, now)
        return False

    def _drop_stale(self, key: CacheKey, epoch: int, now: float) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        if entry.epoch != epoch:
            self.stats.invalidations += 1
            self._m_events.labels("invalidate").inc()
        else:
            self.stats.expirations += 1
            self._m_events.labels("expire").inc()
