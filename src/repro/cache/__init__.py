"""repro.cache — the multi-tier answer/retrieval cache subsystem.

Four cooperating tiers, all deterministic and all off by default (see
:class:`CacheConfig`):

* :class:`AnswerCache` — exact answers keyed on the analyzer-normalized
  question + filters, validated against the index epoch, bounded by TTL
  (simulated clock) and LRU capacity;
* the **semantic tier** of the same cache — near-duplicate questions reuse
  a cached answer when their embedding similarity clears a threshold;
* :class:`ShardRetrievalCache` — per-shard scatter-leg results inside the
  cluster router, invalidated by each shard's write generation;
* :class:`SingleFlight` — request coalescing in the backend, so
  concurrent identical questions execute the pipeline once.
"""

from repro.cache.answer_cache import (
    HIT_COALESCED,
    HIT_EXACT,
    HIT_SEMANTIC,
    AnswerCache,
    AnswerCacheStats,
    CacheHit,
)
from repro.cache.coalescing import Flight, SingleFlight, SingleFlightStats
from repro.cache.config import CacheConfig
from repro.cache.key import answer_cache_key, filters_key, retrieval_cache_key
from repro.cache.retrieval_cache import (
    CachedLegs,
    RetrievalCacheStats,
    ShardRetrievalCache,
)

__all__ = [
    "AnswerCache",
    "AnswerCacheStats",
    "CacheConfig",
    "CacheHit",
    "CachedLegs",
    "Flight",
    "HIT_COALESCED",
    "HIT_EXACT",
    "HIT_SEMANTIC",
    "RetrievalCacheStats",
    "ShardRetrievalCache",
    "SingleFlight",
    "SingleFlightStats",
    "answer_cache_key",
    "filters_key",
    "retrieval_cache_key",
]
