"""Cache-key normalization.

Two questions that differ only in casing, punctuation, stop words or
inflection ("Come sblocco la carta?" vs "come sbloccare le carte") retrieve
the same chunks and generate near-identical answers, so the answer cache
keys on the **analyzer-normalized term sequence** rather than the raw
string — the same normalization authority (:mod:`repro.text.analyzer`) the
inverted index and the reranker already share.  Filters participate in the
key as a sorted tuple: the same question under different metadata filters
is a different request.

The index epoch is deliberately *not* part of the stored key: entries are
stamped with the epoch they were computed at and validated against the
current epoch on lookup, so a corpus write invalidates stale entries
lazily without rehashing the whole cache.
"""

from __future__ import annotations

from typing import Mapping

#: An answer-cache key: (normalized question terms, sorted filter items).
CacheKey = tuple[tuple[str, ...], tuple[tuple[str, str], ...]]


def filters_key(filters: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    """Order-insensitive canonical form of a filter mapping."""
    if not filters:
        return ()
    return tuple(sorted(filters.items()))


def answer_cache_key(
    question: str, filters: Mapping[str, str] | None, analyzer, namespace: str = ""
) -> CacheKey:
    """The exact-tier cache key of *question* under *filters*.

    *analyzer* is any object with an ``analyze(text) -> list[str]``
    method (an :class:`~repro.text.analyzer.ItalianAnalyzer` in
    production).  A question whose analysis is empty (all stop words)
    falls back to its whitespace-normalized lower-cased surface so that
    distinct degenerate questions do not collide on the empty key.

    *namespace* partitions the key space (agent routes use it so a
    multi-hop answer is never served to a structured request for the
    same terms).  The sentinel term carries a NUL byte, which no
    analyzer output or question surface can contain, so a namespaced
    key can never collide with a plain one — and the default ""
    produces exactly the pre-namespace key.
    """
    terms = tuple(analyzer.analyze(question))
    if not terms:
        terms = tuple(question.lower().split())
    if namespace:
        terms = (f"\x00ns:{namespace}",) + terms
    return (terms, filters_key(filters))


def retrieval_cache_key(
    query: str,
    filters: Mapping[str, str] | None,
    mode: str,
    text_n: int,
    vector_k: int,
) -> tuple:
    """The per-shard retrieval-cache key of one scatter leg.

    Keyed on the **raw** query string (retrieval is surface-sensitive:
    BM25 and the embedder both see the raw text) plus the leg-shaping
    retrieval parameters, so a config change never serves stale shapes.
    """
    return (query, filters_key(filters), mode, text_n, vector_k)
