"""Per-shard retrieval-result cache with generation-based invalidation.

The cluster router fans every query out to all shards; in steady state the
same handful of questions keeps hitting the same shards, and each leg
re-runs BM25 plus per-field ANN from scratch.  :class:`ShardRetrievalCache`
memoizes the **leg results** (text ranking + per-field vector rankings) per
shard, keyed on the raw query and the leg-shaping retrieval parameters.

Invalidation is generational: every :class:`~repro.search.index.SearchIndex`
carries a monotonically increasing write ``generation`` (bumped by any
upsert, delete or vacuum — the path every write through
``pipeline.indexing`` takes), and a cached leg is stamped with the shard's
generation at compute time.  A lookup whose stamp no longer matches the
shard's current generation is dropped on the spot, so a document write
deterministically invalidates exactly the shards it touched while the
other shards keep serving from cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.search.results import RetrievedChunk


@dataclass(frozen=True)
class CachedLegs:
    """The memoized scatter-leg results of one query on one shard.

    ``generation`` is an opaque invalidation stamp compared with ``!=``: an
    index-wide write counter (text legs, which depend on global BM25
    statistics) or a per-segment epoch tuple from
    :meth:`~repro.search.index.SearchIndex.segment_stamp` (vector legs,
    which depend only on the shard's own segments).
    """

    text: tuple[RetrievedChunk, ...]
    vector: tuple[tuple[str, tuple[RetrievedChunk, ...]], ...]
    generation: int | tuple


@dataclass
class RetrievalCacheStats:
    """Lifetime counters of one :class:`ShardRetrievalCache`."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ShardRetrievalCache:
    """One bounded LRU of :class:`CachedLegs` per shard.

    Args:
        config: supplies ``retrieval_capacity`` (entries **per shard**).
        registry: metrics registry for the
            ``uniask_retrieval_cache_events_total`` counter.
    """

    def __init__(
        self,
        config: CacheConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or CacheConfig(enabled=True)
        self._shards: dict[int, OrderedDict[tuple, CachedLegs]] = {}
        self.stats = RetrievalCacheStats()
        registry = registry or NULL_REGISTRY
        self._m_events = registry.counter(
            "uniask_retrieval_cache_events_total",
            "Per-shard retrieval-cache lifecycle events, by kind.",
            ("event",),
        )

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._shards.values())

    def get(self, shard_id: int, key: tuple, generation: int | tuple) -> CachedLegs | None:
        """The cached legs of *key* on *shard_id*, if still current.

        A stamp mismatch (the shard was written since) drops the entry and
        counts an invalidation; the caller recomputes and re-stores.
        """
        entries = self._shards.get(shard_id)
        if entries is None:
            self.stats.misses += 1
            self._m_events.labels("miss").inc()
            return None
        cached = entries.get(key)
        if cached is None:
            self.stats.misses += 1
            self._m_events.labels("miss").inc()
            return None
        if cached.generation != generation:
            del entries[key]
            self.stats.invalidations += 1
            self._m_events.labels("invalidate").inc()
            self.stats.misses += 1
            self._m_events.labels("miss").inc()
            return None
        entries.move_to_end(key)
        self.stats.hits += 1
        self._m_events.labels("hit").inc()
        return cached

    def put(
        self,
        shard_id: int,
        key: tuple,
        generation: int | tuple,
        text: list[RetrievedChunk],
        vector: dict[str, list[RetrievedChunk]],
    ) -> None:
        """Memoize one shard's leg results at the shard's *generation*."""
        entries = self._shards.setdefault(shard_id, OrderedDict())
        if key in entries:
            del entries[key]
        entries[key] = CachedLegs(
            text=tuple(text),
            vector=tuple((name, tuple(legs)) for name, legs in vector.items()),
            generation=generation,
        )
        while len(entries) > self.config.retrieval_capacity:
            entries.popitem(last=False)
            self.stats.evictions += 1
            self._m_events.labels("evict").inc()

    def drop_shard(self, shard_id: int) -> None:
        """Forget everything cached for *shard_id* (topology changes)."""
        self._shards.pop(shard_id, None)
