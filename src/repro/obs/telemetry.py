"""The per-deployment telemetry bundle: registry + sampler + audit log.

One :class:`Telemetry` object travels with a deployment (built by the
system factory, shared by the engine and the backend): it owns the
:class:`~repro.obs.metrics.MetricsRegistry` every component registers its
instruments on, the :class:`~repro.obs.sampling.TraceSampler` deciding
which request traces to retain, and the
:class:`~repro.obs.audit.AuditLogger` every structured event lands in.

The sampler's eviction hook is wired to the registry, so a histogram
exemplar never outlives the trace it points at.

Telemetry is configured by :class:`TelemetryConfig` and **output-neutral
by construction**: no instrument reads a clock or a shared RNG (the
sampler has a private stream), so enabling it — the default — leaves every
engine and backend output byte-identical to a deployment built with
``TelemetryConfig(enabled=False)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.audit import NULL_AUDIT, AuditLogger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampling import TraceSampler

__all__ = ["NULL_TELEMETRY", "Telemetry", "TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything tunable about the telemetry layer.

    Attributes:
        enabled: master switch; False makes every instrument a shared
            no-op (the benchmark baseline).
        trace_sample_rate: head-sampling probability for request traces.
        tail_latency_seconds: traces slower than this are always retained
            (None disables tail sampling).
        retained_traces: sampler retention capacity.
        sampler_seed: seed of the sampler's private RNG stream.
        audit_path: when set, the audit log is mirrored to this JSONL file.
        audit_retention: in-memory audit ring size; the on-disk JSONL sink
            stays complete regardless.  None keeps everything in memory
            (unbounded — only sensible for short-lived test deployments).
    """

    enabled: bool = True
    trace_sample_rate: float = 0.1
    tail_latency_seconds: float | None = 4.0
    retained_traces: int = 256
    sampler_seed: int = 1729
    audit_path: str | None = None
    audit_retention: int | None = 10_000

    def __post_init__(self) -> None:
        if not (0.0 <= self.trace_sample_rate <= 1.0):
            raise ValueError("trace_sample_rate must be in [0, 1]")
        if self.retained_traces < 1:
            raise ValueError("retained_traces must be positive")
        if self.audit_retention is not None and self.audit_retention < 1:
            raise ValueError("audit_retention must be positive when set")


class Telemetry:
    """Registry, trace sampler and audit log of one deployment."""

    def __init__(self, config: TelemetryConfig | None = None, clock=None) -> None:
        self.config = config or TelemetryConfig()
        if self.config.enabled:
            self.registry: MetricsRegistry = MetricsRegistry()
            self.sampler = TraceSampler(
                rate=self.config.trace_sample_rate,
                tail_latency=self.config.tail_latency_seconds,
                seed=self.config.sampler_seed,
                capacity=self.config.retained_traces,
                on_evict=self.registry.drop_exemplars,
            )
            self.audit: AuditLogger = AuditLogger(
                clock=clock,
                path=self.config.audit_path,
                retention=self.config.audit_retention,
            )
        else:
            self.registry = NULL_REGISTRY
            self.sampler = TraceSampler(rate=0.0, seed=self.config.sampler_seed)
            self.audit = NULL_AUDIT

    @property
    def enabled(self) -> bool:
        """True when instruments actually record."""
        return self.registry.enabled

    def render_metrics(self) -> str:
        """The Prometheus text exposition of the registry."""
        return self.registry.render()


class _NullTelemetry(Telemetry):
    """Shared disabled bundle — the default of directly built components."""

    def __init__(self) -> None:
        super().__init__(TelemetryConfig(enabled=False))


#: Shared disabled telemetry (no allocation on the hot path).
NULL_TELEMETRY = _NullTelemetry()
