"""Incident forensics: flight recorder, capture bundles, per-request diagnosis.

When a page fires today the operator gets an alert name and five
disconnected surfaces (dashboard, metrics, profiles, traces, audit) whose
evidence has often already aged out of the bounded rings by the time a
human looks.  This module closes that gap with three pieces:

* :class:`BlackBoxRecorder` — an aircraft-style flight recorder: a
  bounded, deterministic ring of structured **control-plane** events on
  the shared simulated clock.  The existing sources of truth feed it
  (autoscaler decisions, admission level transitions, replica
  kills/heals observed by the router, cache-epoch flips, topology
  changes, segment merges, alert transitions), so the recorder never
  invents state — it remembers the state changes the system already
  made, in order.
* :class:`IncidentManager` — opens a fingerprint-deduped incident when a
  page-severity alert fires, freezes a **capture bundle** at that moment
  (dashboard, saturation, profile window, slowest retained traces,
  work-counter deltas, the recorder window before the page), tracks
  recovery, and renders a causally ordered timeline with a ranked
  suspected-cause list.
* :meth:`IncidentManager.diagnose` — the per-request loop: given a
  ``query_id``, compares the request against rolling per-route baselines
  and explains *why this request* was slow, shed or degraded, linking to
  the admission pressure and autoscaler state at serve time.

Layering: this module lives in ``repro.obs`` and never imports the
service layer.  Alerts arrive duck-typed (anything with ``rule``,
``severity`` and ``message``); the backend evaluates them with its own
alerting machinery and passes them into :meth:`IncidentManager.check`.

Everything is off by default and deterministic when on: event order is
the order state changed on the simulated clock, fingerprints are pure
functions of the firing rule set, and no observer reads a wall clock or
a shared RNG — so two identical chaos runs produce bit-identical
incident logs, and a deployment with incidents disabled is byte-identical
to one built before this module existed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.obs.slo import BurnWindow

__all__ = [
    "BlackBoxRecorder",
    "Incident",
    "IncidentConfig",
    "IncidentManager",
    "RecordedEvent",
]

#: Alert severity that opens an incident (the page).
PAGE_SEVERITY = "critical"

# -- recorder event kinds --------------------------------------------------
EVENT_ALERT_FIRED = "alert_fired"
EVENT_ALERT_RESOLVED = "alert_resolved"
EVENT_SCALE_DECISION = "scale_decision"
EVENT_ADMISSION_TRANSITION = "admission_transition"
EVENT_CACHE_EPOCH_FLIP = "cache_epoch_flip"
EVENT_REPLICA_KILL = "replica_kill"
EVENT_REPLICA_HEAL = "replica_heal"
EVENT_TOPOLOGY_CHANGE = "topology_change"
EVENT_SEGMENT_MERGE = "segment_merge"
EVENT_HEDGES_DISABLED = "hedges_disabled"
EVENT_HEDGES_RESTORED = "hedges_restored"


@dataclass(frozen=True)
class IncidentConfig:
    """Everything tunable about incident forensics.  Off by default.

    The page burn windows are deliberately much shorter than the
    SRE-workbook service defaults (5 m/1 h): incident detection runs
    inside compressed simulated days (the 30-minute diurnal chaos run),
    where an hour-long window could mathematically never trip mid-run.
    They mirror the autoscaler's own 60 s/300 s control windows.

    Attributes:
        enabled: construct the recorder and manager at all.
        recorder_capacity: ring size of the flight recorder.
        check_interval: simulated seconds between alert evaluations.
        page_short_seconds / page_long_seconds: the multi-window pair of
            the page evaluation (both must burn).
        page_burn_threshold: error-budget burn rate that pages.
        pre_window_seconds: recorder window frozen before the page (and
            scanned around a request by :meth:`IncidentManager.diagnose`).
        cause_window_seconds: how far before the page the suspected-cause
            ranking looks for control-plane events.
        dedup_window_seconds: a page matching an incident recovered less
            than this long ago reopens it instead of opening a new one.
        baseline_window: per-route rolling baseline size (requests).
        max_incidents: retained incidents (oldest recovered drop first).
        max_tracked_requests: bounded per-request contexts kept for
            :meth:`IncidentManager.diagnose`.
        slow_ratio: a request this many times slower than its route
            baseline is called out as slow.
        min_baseline: baselines smaller than this are not trusted.
    """

    enabled: bool = False
    recorder_capacity: int = 512
    check_interval: float = 15.0
    page_short_seconds: float = 60.0
    page_long_seconds: float = 300.0
    page_burn_threshold: float = 10.0
    pre_window_seconds: float = 120.0
    cause_window_seconds: float = 300.0
    dedup_window_seconds: float = 300.0
    baseline_window: int = 256
    max_incidents: int = 64
    max_tracked_requests: int = 2048
    slow_ratio: float = 1.5
    min_baseline: int = 8

    def __post_init__(self) -> None:
        if self.recorder_capacity < 1:
            raise ConfigurationError("recorder_capacity must be positive")
        if self.check_interval <= 0:
            raise ConfigurationError("check_interval must be positive")
        if not 0.0 < self.page_short_seconds < self.page_long_seconds:
            raise ConfigurationError(
                "page windows must satisfy 0 < short < long"
            )
        if self.page_burn_threshold <= 0:
            raise ConfigurationError("page_burn_threshold must be positive")
        if self.pre_window_seconds <= 0 or self.cause_window_seconds <= 0:
            raise ConfigurationError("capture windows must be positive")
        if self.dedup_window_seconds < 0:
            raise ConfigurationError("dedup_window_seconds must be non-negative")
        if self.baseline_window < 1 or self.max_tracked_requests < 1:
            raise ConfigurationError("baseline and tracking windows must be positive")
        if self.max_incidents < 1:
            raise ConfigurationError("max_incidents must be positive")
        if self.slow_ratio <= 1.0:
            raise ConfigurationError("slow_ratio must exceed 1.0")
        if self.min_baseline < 1:
            raise ConfigurationError("min_baseline must be positive")

    def burn_windows(self) -> tuple[BurnWindow, ...]:
        """The multi-window page rule of this deployment's incidents."""
        return (
            BurnWindow(
                short_seconds=self.page_short_seconds,
                long_seconds=self.page_long_seconds,
                max_burn_rate=self.page_burn_threshold,
                severity=PAGE_SEVERITY,
            ),
        )


@dataclass(frozen=True)
class RecordedEvent:
    """One control-plane state change in the flight recorder.

    Attributes:
        at: simulated timestamp the change was observed.
        kind: one of the ``EVENT_*`` names.
        source: which component reported it (``autoscaler``, ``router``,
            ``admission``, ``index``, ``alerting``).
        detail: structured, JSON-able payload.
    """

    at: float
    kind: str
    source: str
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"at": self.at, "kind": self.kind, "source": self.source, **self.detail}

    def format(self) -> str:
        shown = " ".join(f"{key}={value}" for key, value in self.detail.items())
        return f"t={self.at:9.1f}s  {self.kind:<21} {shown}".rstrip()


class BlackBoxRecorder:
    """Bounded deterministic ring of control-plane events.

    Feeders call :meth:`record`; the recorder stamps the event off the
    shared simulated clock itself, so source sites need no clock handle
    of their own.  *registry* is optional — instruments are registered at
    construction, so only incident-enabled deployments gain the
    ``uniask_incident_events_total`` exposition.
    """

    def __init__(self, clock, capacity: int = 512, registry=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self._events: deque[RecordedEvent] = deque(maxlen=capacity)
        self._total = 0
        if registry is not None:
            self._m_events = registry.counter(
                "uniask_incident_events_total",
                "Control-plane events captured by the flight recorder, by kind.",
                ("kind",),
            )
        else:
            self._m_events = None

    def record(self, kind: str, source: str, **detail: object) -> RecordedEvent:
        """Append one event stamped at the current simulated instant."""
        event = RecordedEvent(
            at=self._clock.now(), kind=kind, source=source, detail=dict(detail)
        )
        self._events.append(event)
        self._total += 1
        if self._m_events is not None:
            self._m_events.labels(kind).inc()
        return event

    @property
    def events(self) -> tuple[RecordedEvent, ...]:
        """Every retained event, oldest first."""
        return tuple(self._events)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (retained or already evicted)."""
        return self._total

    def window(self, start: float, end: float) -> tuple[RecordedEvent, ...]:
        """Retained events with ``start <= at <= end``, in order."""
        return tuple(e for e in self._events if start <= e.at <= end)

    def __len__(self) -> int:
        return len(self._events)


#: Cause classes, their evidence events and their prior weights.  A
#: replica kill explains a page better than a heal; weights bias the
#: recency-scored ranking accordingly.
_CAUSE_WEIGHTS = {
    EVENT_REPLICA_KILL: 5.0,
    EVENT_CACHE_EPOCH_FLIP: 4.0,
    "scale_remove_replica": 3.0,
    "scale_rebalance": 3.0,
    EVENT_ADMISSION_TRANSITION: 2.0,
    EVENT_HEDGES_DISABLED: 2.0,
    EVENT_TOPOLOGY_CHANGE: 1.0,
    EVENT_SEGMENT_MERGE: 1.0,
    "scale_add_replica": 0.5,
    EVENT_REPLICA_HEAL: 0.5,
}


def _cause_class(event: RecordedEvent) -> str | None:
    """Map a recorded event to its suspected-cause class (None = not one)."""
    if event.kind == EVENT_SCALE_DECISION:
        action = event.detail.get("action", "")
        key = f"scale_{action}"
        return key if key in _CAUSE_WEIGHTS else None
    if event.kind in _CAUSE_WEIGHTS:
        return event.kind
    return None


class Incident:
    """One opened incident: the page, its capture bundle, its causes."""

    def __init__(
        self,
        incident_id: str,
        fingerprint: str,
        opened_at: float,
        rules: tuple[str, ...],
        alerts: list[dict],
        capture: dict,
        events: tuple[RecordedEvent, ...],
        suspected_causes: list[dict],
    ) -> None:
        self.incident_id = incident_id
        self.fingerprint = fingerprint
        self.opened_at = opened_at
        self.rules = rules
        self.alerts = alerts
        self.capture = capture
        self.events = events
        self.suspected_causes = suspected_causes
        self.count = 1
        self.last_seen = opened_at
        self.recovered_at: float | None = None

    @property
    def open(self) -> bool:
        return self.recovered_at is None

    @property
    def top_cause(self) -> str:
        """The highest-ranked suspected cause ("" when none was found)."""
        return self.suspected_causes[0]["cause"] if self.suspected_causes else ""

    def summary(self) -> dict:
        return {
            "incident_id": self.incident_id,
            "fingerprint": self.fingerprint,
            "status": "open" if self.open else "recovered",
            "opened_at": self.opened_at,
            "recovered_at": self.recovered_at,
            "last_seen": self.last_seen,
            "count": self.count,
            "rules": list(self.rules),
            "top_cause": self.top_cause,
        }

    def to_dict(self) -> dict:
        payload = self.summary()
        payload["alerts"] = list(self.alerts)
        payload["suspected_causes"] = list(self.suspected_causes)
        payload["events"] = [event.to_dict() for event in self.events]
        payload["capture"] = self.capture
        return payload


class IncidentManager:
    """Opens, deduplicates, captures and diagnoses incidents.

    Args:
        config: the incident parameters (see :class:`IncidentConfig`).
        clock: the deployment's simulated clock.
        recorder: the deployment's :class:`BlackBoxRecorder`.
        audit: optional audit logger; incident opens/recoveries land as
            structured entries.
        registry: optional metrics registry — instruments register at
            construction, so incident-off expositions stay byte-identical.
    """

    def __init__(
        self,
        config: IncidentConfig | None = None,
        clock=None,
        recorder: BlackBoxRecorder | None = None,
        audit=None,
        registry=None,
    ) -> None:
        self.config = config or IncidentConfig()
        self._clock = clock
        self.recorder = recorder if recorder is not None else BlackBoxRecorder(clock)
        self._audit = audit
        self._capture_fn = None
        self._incidents: list[Incident] = []
        self._counter = 0
        self._last_check = float("-inf")
        self._active_alerts: dict[str, str] = {}
        # Per-request diagnosis state: bounded contexts + route baselines.
        self._requests: OrderedDict[str, dict] = OrderedDict()
        self._baselines: dict[str, deque] = {}
        self._work_totals: dict[str, int] = {}
        self._work_at_last_incident: dict[str, int] = {}
        if registry is not None:
            self._g_open = registry.gauge(
                "uniask_incidents_open", "Currently open (unrecovered) incidents."
            )
            self._m_incidents = registry.counter(
                "uniask_incidents_total",
                "Incidents opened, by top-ranked suspected cause.",
                ("cause",),
            )
        else:
            self._g_open = None
            self._m_incidents = None

    # -- wiring ------------------------------------------------------------

    def attach(self, capture_fn) -> None:
        """Install the capture callback (``(now) -> dict`` bundle).

        The backend registers a bound method here so the manager can
        freeze service-layer surfaces (dashboard, saturation, profile,
        traces) without this module importing the service layer.
        """
        self._capture_fn = capture_fn

    # -- per-request feed --------------------------------------------------

    def observe_request(
        self,
        record,
        pressure: float | None = None,
        utilization: float | None = None,
    ) -> None:
        """Feed one served :class:`QueryRecord` into baselines and tracking."""
        answer = record.answer
        route = answer.route or "default"
        stages: dict[str, float] = {}
        if record.trace is not None:
            stages = dict(record.trace.stage_durations())
        context = {
            "query_id": record.query_id,
            "route": route,
            "served_at": record.served_at,
            "response_time": answer.response_time,
            "outcome": answer.outcome,
            "degrade_level": answer.degrade_level,
            "cache_hit": answer.cache_hit,
            "partial": answer.partial_results,
            "stages": stages,
            "work": dict(answer.work) if answer.work else {},
            "pressure": pressure,
            "utilization": utilization,
        }
        self._requests[record.query_id] = context
        while len(self._requests) > self.config.max_tracked_requests:
            self._requests.popitem(last=False)
        baseline = self._baselines.get(route)
        if baseline is None:
            baseline = deque(maxlen=self.config.baseline_window)
            self._baselines[route] = baseline
        # Degraded / cache-served requests would drag the full-service
        # baseline down and mask genuinely slow requests; only clean
        # full-pipeline serves train it.
        if answer.degrade_level == 0 and not answer.cache_hit:
            baseline.append((answer.response_time, stages))
        if answer.work:
            for kind, units in answer.work.items():
                self._work_totals[kind] = self._work_totals.get(kind, 0) + units

    # -- the incident loop -------------------------------------------------

    def due(self, now: float) -> bool:
        """True when a check interval has elapsed since the last check."""
        return now - self._last_check >= self.config.check_interval

    def check(self, now: float, alerts) -> Incident | None:
        """Evaluate *alerts* (duck-typed: rule/severity/message) at *now*.

        Records alert transitions on the flight recorder, recovers
        incidents whose rules stopped paging, and opens (or dedups into)
        an incident when page-severity rules fire.  Returns the incident
        opened or updated by this check, if any.
        """
        self._last_check = now
        current = {alert.rule: alert.severity for alert in alerts}
        for rule, severity in current.items():
            if self._active_alerts.get(rule) != severity:
                self.recorder.record(
                    EVENT_ALERT_FIRED, "alerting", rule=rule, severity=severity
                )
        for rule in list(self._active_alerts):
            if rule not in current:
                self.recorder.record(EVENT_ALERT_RESOLVED, "alerting", rule=rule)
        self._active_alerts = current

        page_rules = tuple(
            sorted(rule for rule, severity in current.items() if severity == PAGE_SEVERITY)
        )
        self._recover(now, set(page_rules))
        if not page_rules:
            return None
        fingerprint = hashlib.sha1("|".join(page_rules).encode("utf-8")).hexdigest()[:12]
        for incident in reversed(self._incidents):
            if incident.fingerprint != fingerprint:
                continue
            if incident.open:
                incident.count += 1
                incident.last_seen = now
                return incident
            if now - incident.recovered_at <= self.config.dedup_window_seconds:
                # The same page flapping back inside the dedup window is
                # one incident, not a fresh 3 a.m. wake-up.
                incident.recovered_at = None
                incident.count += 1
                incident.last_seen = now
                if self._g_open is not None:
                    self._g_open.inc()
                return incident
            break
        return self._open(now, fingerprint, page_rules, alerts)

    def _recover(self, now: float, paging: set[str]) -> None:
        for incident in self._incidents:
            if incident.open and not (set(incident.rules) & paging):
                incident.recovered_at = now
                if self._g_open is not None:
                    self._g_open.dec()
                if self._audit is not None:
                    self._audit.info(
                        "incident_recovered",
                        incident_id=incident.incident_id,
                        fingerprint=incident.fingerprint,
                        duration=now - incident.opened_at,
                    )

    def _open(
        self, now: float, fingerprint: str, rules: tuple[str, ...], alerts
    ) -> Incident:
        self._counter += 1
        # The frozen timeline must contain the evidence behind every ranked
        # cause, so it spans at least the cause window even when the
        # configured pre-window is shorter.
        lookback = max(self.config.pre_window_seconds, self.config.cause_window_seconds)
        events = self.recorder.window(now - lookback, now)
        causes = self._rank_causes(now)
        capture: dict = {}
        if self._capture_fn is not None:
            capture = self._capture_fn(now)
        capture["work_totals"] = dict(self._work_totals)
        capture["work_delta"] = {
            kind: units - self._work_at_last_incident.get(kind, 0)
            for kind, units in self._work_totals.items()
        }
        self._work_at_last_incident = dict(self._work_totals)
        incident = Incident(
            incident_id=f"inc-{self._counter:04d}",
            fingerprint=fingerprint,
            opened_at=now,
            rules=rules,
            alerts=[
                {"rule": a.rule, "severity": a.severity, "message": a.message}
                for a in alerts
            ],
            capture=capture,
            events=events,
            suspected_causes=causes,
        )
        self._incidents.append(incident)
        self._trim()
        if self._g_open is not None:
            self._g_open.inc()
        if self._m_incidents is not None:
            self._m_incidents.labels(incident.top_cause or "unknown").inc()
        if self._audit is not None:
            self._audit.warning(
                "incident_open",
                incident_id=incident.incident_id,
                fingerprint=fingerprint,
                rules=list(rules),
                top_cause=incident.top_cause,
            )
        return incident

    def _trim(self) -> None:
        while len(self._incidents) > self.config.max_incidents:
            for index, incident in enumerate(self._incidents):
                if not incident.open:
                    del self._incidents[index]
                    break
            else:
                del self._incidents[0]

    def _rank_causes(self, now: float) -> list[dict]:
        """Score the control-plane events preceding a page.

        Each cause class accumulates ``weight * (0.25 + 0.75 * recency)``
        over its events in the cause window — a kill 8 seconds before the
        page outranks a merge 4 minutes earlier, but even old evidence
        keeps a floor so it is listed, not hidden.
        """
        window = self.config.cause_window_seconds
        scores: dict[str, float] = {}
        counts: dict[str, int] = {}
        last_event: dict[str, RecordedEvent] = {}
        for event in self.recorder.window(now - window, now):
            cause = _cause_class(event)
            if cause is None:
                continue
            age = max(0.0, now - event.at)
            recency = 1.0 - min(1.0, age / window)
            scores[cause] = scores.get(cause, 0.0) + _CAUSE_WEIGHTS[cause] * (
                0.25 + 0.75 * recency
            )
            counts[cause] = counts.get(cause, 0) + 1
            last_event[cause] = event
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [
            {
                "cause": cause,
                "score": round(score, 4),
                "events": counts[cause],
                "last_at": last_event[cause].at,
                "last_detail": dict(last_event[cause].detail),
            }
            for cause, score in ranked
        ]

    # -- per-request diagnosis ---------------------------------------------

    def diagnose(self, query_id: str) -> dict:
        """Explain why one request was slow, shed or degraded.

        Compares the stored request context against its route's rolling
        baseline and links it to the control-plane state at serve time.
        Raises ``KeyError`` for requests that were never tracked (served
        before incidents were enabled, or already evicted).
        """
        context = self._requests.get(query_id)
        if context is None:
            raise KeyError(f"unknown or evicted query id {query_id!r}")
        config = self.config
        route = context["route"]
        findings: list[str] = []
        verdict = "normal"

        if context["degrade_level"]:
            verdict = "shed"
            findings.append(
                f"served at degrade level {context['degrade_level']} "
                "(admission shed ladder)"
            )
        if context["partial"]:
            verdict = "degraded" if verdict == "normal" else verdict
            findings.append("partial results: at least one shard missed its deadline")
        if context["cache_hit"]:
            findings.append(f"served from cache (kind={context['cache_hit']})")

        baseline = self._baselines.get(route, ())
        baseline_n = len(baseline)
        baseline_mean = 0.0
        ratio = 0.0
        stage_deltas: list[dict] = []
        if baseline_n >= config.min_baseline:
            baseline_mean = sum(rt for rt, _ in baseline) / baseline_n
            if baseline_mean > 0.0:
                ratio = context["response_time"] / baseline_mean
            if ratio > config.slow_ratio and not context["cache_hit"]:
                if verdict == "normal":
                    verdict = "slow"
                findings.append(
                    f"{ratio:.1f}x slower than the {route} route baseline "
                    f"({context['response_time']:.3f}s vs {baseline_mean:.3f}s "
                    f"mean of {baseline_n})"
                )
            stage_deltas = self._stage_deltas(context["stages"], baseline)
            for delta in stage_deltas[:3]:
                if delta["delta"] > 0.0:
                    findings.append(
                        f"stage {delta['stage']} +{delta['delta']:.3f}s vs baseline"
                    )
        else:
            findings.append(
                f"route {route} baseline too small to compare "
                f"({baseline_n} < {config.min_baseline})"
            )

        if context["pressure"] is not None:
            findings.append(f"admission pressure {context['pressure']:.2f} at serve time")
        if context["utilization"] is not None:
            findings.append(
                f"autoscaler utilization {context['utilization']:.2f} at serve time"
            )
        nearby = self.recorder.window(
            context["served_at"] - config.pre_window_seconds, context["served_at"]
        )
        for event in nearby[-5:]:
            findings.append(f"control-plane: {event.format()}")

        return {
            "query_id": query_id,
            "route": route,
            "verdict": verdict,
            "served_at": context["served_at"],
            "response_time": context["response_time"],
            "outcome": context["outcome"],
            "degrade_level": context["degrade_level"],
            "cache_hit": context["cache_hit"],
            "partial": context["partial"],
            "baseline_n": baseline_n,
            "baseline_mean": round(baseline_mean, 4),
            "slowdown": round(ratio, 3),
            "stage_deltas": stage_deltas,
            "work": dict(context["work"]),
            "pressure": context["pressure"],
            "utilization": context["utilization"],
            "nearby_events": [event.to_dict() for event in nearby[-5:]],
            "findings": findings,
        }

    @staticmethod
    def _stage_deltas(stages: dict[str, float], baseline) -> list[dict]:
        """Per-stage deviations against the baseline's mean durations."""
        if not stages:
            return []
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for _, base_stages in baseline:
            for stage, duration in base_stages.items():
                sums[stage] = sums.get(stage, 0.0) + duration
                counts[stage] = counts.get(stage, 0) + 1
        deltas = []
        for stage, duration in stages.items():
            mean = sums.get(stage, 0.0) / counts[stage] if counts.get(stage) else 0.0
            deltas.append(
                {
                    "stage": stage,
                    "duration": round(duration, 6),
                    "baseline": round(mean, 6),
                    "delta": round(duration - mean, 6),
                }
            )
        deltas.sort(key=lambda item: (-item["delta"], item["stage"]))
        return deltas

    # -- observability -----------------------------------------------------

    @property
    def incidents(self) -> tuple[Incident, ...]:
        """Every retained incident, oldest first."""
        return tuple(self._incidents)

    @property
    def open_incidents(self) -> tuple[Incident, ...]:
        """Incidents not yet recovered."""
        return tuple(incident for incident in self._incidents if incident.open)

    def get(self, incident_id: str) -> Incident:
        """Fetch one incident by id."""
        for incident in self._incidents:
            if incident.incident_id == incident_id:
                return incident
        raise KeyError(f"unknown incident id {incident_id!r}")

    def status(self) -> dict:
        """The ``incidents`` ops-route payload."""
        return {
            "enabled": True,
            "open": len(self.open_incidents),
            "total": len(self._incidents),
            "recorder_events": len(self.recorder),
            "recorder_total": self.recorder.total_recorded,
            "incidents": [incident.summary() for incident in self._incidents],
        }

    def format_timeline(self, incident: Incident) -> str:
        """Render one incident as a causally ordered operator timeline."""
        state = "OPEN" if incident.open else "recovered"
        lines = [
            f"incident {incident.incident_id} (fingerprint {incident.fingerprint}) — {state}",
            f"opened at t={incident.opened_at:.1f}s by {', '.join(incident.rules)} "
            f"(seen {incident.count}x)",
        ]
        if incident.recovered_at is not None:
            lines.append(
                f"recovered at t={incident.recovered_at:.1f}s "
                f"(duration {incident.recovered_at - incident.opened_at:.1f}s)"
            )
        lines.append("timeline:")
        for event in incident.events:
            lines.append(f"  {event.format()}")
        lines.append(
            f"  t={incident.opened_at:9.1f}s  ** page: {', '.join(incident.rules)} **"
        )
        if incident.suspected_causes:
            lines.append("suspected causes:")
            for rank, cause in enumerate(incident.suspected_causes, start=1):
                shown = " ".join(
                    f"{key}={value}" for key, value in cause["last_detail"].items()
                )
                lines.append(
                    f"  {rank}. {cause['cause']:<21} score={cause['score']:<8g} "
                    f"events={cause['events']} last_at=t={cause['last_at']:.1f}s {shown}".rstrip()
                )
        else:
            lines.append("suspected causes: none recorded in the cause window")
        return "\n".join(lines)
