"""Trace sampling: probabilistic head sampling plus tail-latency retention.

Tracing every request at production volume is unaffordable to *keep* — the
spans of millions of requests per day dwarf the corpus — yet all-or-nothing
tracing means a latency spike on the dashboard points at nothing.  The
:class:`TraceSampler` implements the standard compromise:

* **head sampling** — each finished request draws once from a dedicated
  seeded RNG stream and is retained with probability ``rate`` (0 disables,
  1 keeps everything); the stream is private to the sampler, so sampling
  never perturbs any other seeded component and the same seed over the
  same query stream retains the *same* trace ids, bit for bit;
* **tail sampling** — a request slower than ``tail_latency`` seconds is
  retained regardless of the head decision, because the slow outliers are
  exactly the traces an operator needs;
* **bounded retention** — at most ``capacity`` traces are kept, oldest
  evicted first; an ``on_evict`` hook lets the owning telemetry bundle
  drop any histogram exemplars that pointed at the evicted trace, so every
  exposed exemplar trace id always resolves to a fetchable trace.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Callable

from repro.obs.trace import Trace

__all__ = ["TraceSampler"]


class TraceSampler:
    """Head + tail trace sampling with bounded, exemplar-safe retention.

    Args:
        rate: head-sampling probability in [0, 1].
        tail_latency: duration (seconds) above which a trace is always
            retained (None disables tail sampling).
        seed: seed of the sampler's private RNG stream.
        capacity: maximum retained traces (oldest evicted first).
        on_evict: called with the trace id of every evicted trace.
    """

    def __init__(
        self,
        rate: float = 0.1,
        tail_latency: float | None = None,
        seed: int = 1729,
        capacity: int = 256,
        on_evict: Callable[[str], None] | None = None,
    ) -> None:
        if not (0.0 <= rate <= 1.0):
            raise ValueError("rate must be in [0, 1]")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._rate = rate
        self._tail_latency = tail_latency
        self._rng = random.Random(seed)
        self._capacity = capacity
        self._on_evict = on_evict
        self._retained: OrderedDict[str, Trace] = OrderedDict()
        self.offered = 0
        self.head_sampled = 0
        self.tail_sampled = 0

    @property
    def rate(self) -> float:
        """The head-sampling probability."""
        return self._rate

    def offer(self, trace_id: str, trace: Trace, duration: float) -> bool:
        """Decide whether to retain *trace*; returns True when retained.

        Exactly one RNG draw per offer, so retention decisions depend only
        on the seed and the offer sequence — never on timing.
        """
        self.offered += 1
        head = self._rng.random() < self._rate
        tail = self._tail_latency is not None and duration >= self._tail_latency
        if head:
            self.head_sampled += 1
        if tail and not head:
            self.tail_sampled += 1
        if not (head or tail):
            return False
        self._retained[trace_id] = trace
        self._retained.move_to_end(trace_id)
        while len(self._retained) > self._capacity:
            evicted_id, _ = self._retained.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(evicted_id)
        return True

    def get(self, trace_id: str) -> Trace | None:
        """The retained trace for *trace_id* (None when not retained)."""
        return self._retained.get(trace_id)

    @property
    def retained_ids(self) -> list[str]:
        """Ids of all retained traces, oldest first."""
        return list(self._retained)

    def __len__(self) -> int:
        return len(self._retained)
