"""Query-level explain reports: why did each chunk rank where it did?

The deployment lessons of Section 6 are that silent quality regressions —
index refreshes, near-duplicate procedure docs, jargon drift — degrade
retrieval long before users complain.  The first tool against that is
*per-query explainability*: given one answered question, reconstruct the
exact arithmetic that produced the final ranking.

The retrieval executors already attach a named score breakdown to every
:class:`~repro.search.results.RetrievedChunk` (``components``):

* ``bm25_<field>`` — raw per-field BM25 score of the text leg, plus
  ``bm25_<field>:<term>`` per-term contributions on explain requests;
* ``cosine_<field>`` — cosine similarity of each vector leg;
* ``rrf_<name>`` — the reciprocal-rank contribution ``1 / (rank + c)`` of
  ranking *name* to the fused score (their sum **is** the fused score);
* ``rerank_adjust`` — the semantic reranker's additive delta
  (fused + rerank_adjust **is** the final score);
* ``shard`` — shard of origin when served by a cluster.

:func:`build_explain_report` folds those components into a structured
:class:`ExplainReport`: one :class:`ChunkExplanation` per returned chunk
with its leg ranks recovered from the RRF contributions, an exactness
check that the component sums reproduce the fused/final scores, and
per-component "why is #i beaten by #k" diffs.  The report renders as a
text table (``ask --explain``) and serializes to JSON (ops route, CI
artifacts).

This module is importable without the engine: it only depends on the
retrieval result types, so ``repro.core`` can attach reports to answers
without an import cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.search.results import RetrievedChunk

__all__ = [
    "ChunkExplanation",
    "ComponentDiff",
    "ExplainReport",
    "build_explain_report",
]

#: Component keys that are attribution metadata, not additive score terms.
_NON_SCORE_KEYS = ("shard",)


def _is_score_key(key: str) -> bool:
    return key not in _NON_SCORE_KEYS


@dataclass(frozen=True)
class ComponentDiff:
    """One component's contribution to the score gap between two chunks.

    Attributes:
        component: the component key (``rrf_text``, ``rerank_adjust``, ...).
        mine: this chunk's value (0.0 when absent).
        theirs: the other chunk's value (0.0 when absent).
        delta: ``mine - theirs`` — negative means the component favours
            the other chunk.
    """

    component: str
    mine: float
    theirs: float

    @property
    def delta(self) -> float:
        return self.mine - self.theirs


@dataclass(frozen=True)
class ChunkExplanation:
    """Score provenance of one chunk in the final ranking.

    Attributes:
        rank: 1-based position in the final ranking.
        chunk_id / doc_id / title: chunk identity.
        final_score: the score the ranking was sorted by.
        fused_score: the RRF sum (``final_score - rerank_adjust``).
        rerank_adjust: the semantic reranker's additive delta (0.0 when
            the reranker was disabled).
        rrf_contributions: per-ranking reciprocal-rank contributions.
        leg_ranks: the rank this chunk held in each source ranking,
            recovered from ``1/contribution - c``.
        leg_scores: raw leg-level scores (``bm25_<field>``,
            ``cosine_<field>``) including per-term breakdowns.
        shard: shard of origin (None on a single-index deployment).
        components: the full raw component mapping, verbatim.
    """

    rank: int
    chunk_id: str
    doc_id: str
    title: str
    final_score: float
    fused_score: float
    rerank_adjust: float
    rrf_contributions: dict[str, float]
    leg_ranks: dict[str, int]
    leg_scores: dict[str, float]
    shard: int | None
    components: dict[str, float] = field(default_factory=dict)

    @property
    def sum_exact(self) -> bool:
        """True when the component sums reproduce the scores exactly.

        The fused score must equal the sum of the ``rrf_*`` contributions
        (in their recorded insertion order, which matches the fusion
        accumulation order bit for bit), and the final score must equal
        ``fused + rerank_adjust``.
        """
        rrf_sum = 0.0
        for value in self.rrf_contributions.values():
            rrf_sum += value
        return rrf_sum == self.fused_score and (
            self.fused_score + self.rerank_adjust == self.final_score
        )

    def diff(self, other: "ChunkExplanation") -> list[ComponentDiff]:
        """Per-component diffs against *other*, largest absolute gap first.

        Only additive score components are compared (``rrf_*`` and
        ``rerank_adjust``), because only those sum to the final score —
        leg scores feed the ranks behind the RRF terms but do not add.
        """
        keys: list[str] = []
        for source in (self.rrf_contributions, other.rrf_contributions):
            for key in source:
                if key not in keys:
                    keys.append(key)
        keys.append("rerank_adjust")
        diffs = [
            ComponentDiff(
                component=key,
                mine=self.rrf_contributions.get(key, 0.0)
                if key != "rerank_adjust"
                else self.rerank_adjust,
                theirs=other.rrf_contributions.get(key, 0.0)
                if key != "rerank_adjust"
                else other.rerank_adjust,
            )
            for key in keys
        ]
        diffs.sort(key=lambda d: (-abs(d.delta), d.component))
        return diffs

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "rank": self.rank,
            "chunk_id": self.chunk_id,
            "doc_id": self.doc_id,
            "title": self.title,
            "final_score": self.final_score,
            "fused_score": self.fused_score,
            "rerank_adjust": self.rerank_adjust,
            "rrf_contributions": dict(self.rrf_contributions),
            "leg_ranks": dict(self.leg_ranks),
            "leg_scores": dict(self.leg_scores),
            "shard": self.shard,
            "sum_exact": self.sum_exact,
        }


@dataclass(frozen=True)
class ExplainReport:
    """The full provenance report of one answered question.

    Attributes:
        question: the question as retrieved (post content filter).
        rrf_c: the RRF smoothing constant of the deployment.
        mode: the retrieval mode (``hybrid``/``text``/``vector``).
        entries: one explanation per chunk of the final ranking.
        route: the agent route that produced the ranking ("" in agents-off
            deployments; a multi-hop report's ``rrf_hop_*`` contributions
            sum bit-exactly to the fused score just like single-query
            ``rrf_*`` legs do).
        work: deterministic work counts accrued up to the point the report
            was built (``{kind: units}``, see :mod:`repro.obs.work`), or
            None when the request ran without profiling.
    """

    question: str
    rrf_c: float
    mode: str
    entries: tuple[ChunkExplanation, ...]
    route: str = ""
    work: dict[str, int] | None = None

    @property
    def sums_exact(self) -> bool:
        """True when every entry's component sums reproduce its scores."""
        return all(entry.sum_exact for entry in self.entries)

    def entry(self, rank: int) -> ChunkExplanation:
        """The explanation of the chunk at 1-based *rank*."""
        return self.entries[rank - 1]

    def why_beaten(self, rank: int, by: int = 1) -> list[ComponentDiff]:
        """Why is the chunk at *rank* beaten by the chunk at rank *by*?"""
        return self.entry(rank).diff(self.entry(by))

    def to_dict(self) -> dict:
        """JSON-ready representation of the whole report.

        The ``route`` key only appears for agent-routed reports, and the
        ``work`` block only for profiled requests, keeping the
        pre-agents / pre-profiling JSON byte-identical.
        """
        report = {
            "question": self.question,
            "rrf_c": self.rrf_c,
            "mode": self.mode,
            "sums_exact": self.sums_exact,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        if self.route:
            report["route"] = self.route
        if self.work is not None:
            report["work"] = dict(self.work)
        return report

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, ensure_ascii=False)

    def format_report(self, top: int = 5, terms: int = 4) -> str:
        """Render the human-readable explain table (``ask --explain``).

        Args:
            top: entries to detail (the rest are summarized in one line).
            terms: per-term BM25 contributions to show per field.
        """
        route = f", route={self.route}" if self.route else ""
        lines = [
            f"explain: {self.question!r} (mode={self.mode}, rrf_c={self.rrf_c:g}, "
            f"sums_exact={self.sums_exact}{route})"
        ]
        if self.work:
            shown = ", ".join(f"{kind}={units}" for kind, units in sorted(self.work.items()))
            lines.append(f"work: {shown}")
        for entry in self.entries[:top]:
            shard = f" shard={entry.shard}" if entry.shard is not None else ""
            lines.append(
                f"#{entry.rank} {entry.chunk_id} [{entry.doc_id}]{shard} "
                f"final={entry.final_score:.6f} = fused {entry.fused_score:.6f} "
                f"+ rerank {entry.rerank_adjust:.6f}"
            )
            lines.append(f"    title: {entry.title}")
            for name, contribution in entry.rrf_contributions.items():
                leg = name[len("rrf_"):]
                leg_rank = entry.leg_ranks.get(name)
                rank_text = f"rank {leg_rank}" if leg_rank is not None else "rank ?"
                detail = ""
                if leg == "text":
                    fields = [
                        f"{key}={value:.4f}"
                        for key, value in entry.leg_scores.items()
                        if key.startswith("bm25_") and ":" not in key
                    ]
                    if fields:
                        detail = f" ({', '.join(fields)})"
                elif leg.startswith("vector_"):
                    cosine = entry.leg_scores.get(f"cosine_{leg[len('vector_'):]}")
                    if cosine is not None:
                        detail = f" (cosine={cosine:.4f})"
                lines.append(f"    {name:<24} {contribution:.6f}  ({rank_text}){detail}")
            term_keys = [key for key in entry.leg_scores if ":" in key]
            if term_keys:
                term_keys.sort(key=lambda key: -entry.leg_scores[key])
                shown = ", ".join(
                    f"{key.split(':', 1)[1]}={entry.leg_scores[key]:.3f}"
                    for key in term_keys[:terms]
                )
                lines.append(f"    top terms: {shown}")
            if entry.rank > 1:
                diffs = [d for d in entry.diff(self.entries[0]) if d.delta != 0.0][:3]
                why = ", ".join(f"{d.component} {d.delta:+.6f}" for d in diffs)
                lines.append(f"    vs #1: {why or 'tie on every component'}")
        if len(self.entries) > top:
            lines.append(f"... {len(self.entries) - top} more entries (see --explain JSON)")
        return "\n".join(lines)


def _leg_rank(contribution: float, c: float) -> int | None:
    """Recover the 1-based leg rank from an RRF contribution ``1/(rank+c)``."""
    if contribution <= 0.0:
        return None
    rank = round(1.0 / contribution - c)
    return int(rank) if rank >= 1 else None


def build_explain_report(
    question: str,
    results: list[RetrievedChunk],
    rrf_c: float,
    mode: str = "hybrid",
    route: str = "",
    work: dict[str, int] | None = None,
) -> ExplainReport:
    """Fold the component breakdowns of *results* into an explain report.

    *results* is the final ranking as returned by the retriever (fused and
    reranked); the per-chunk arithmetic is reconstructed purely from each
    chunk's ``components`` mapping, so this works identically for the
    single-index and clustered retrievers.
    """
    entries = []
    for position, result in enumerate(results, start=1):
        components = result.components
        rrf_contributions = {
            key: value for key, value in components.items() if key.startswith("rrf_")
        }
        rerank_adjust = components.get("rerank_adjust", 0.0)
        leg_scores = {
            key: value
            for key, value in components.items()
            if _is_score_key(key) and not key.startswith("rrf_") and key != "rerank_adjust"
        }
        fused = 0.0
        for value in rrf_contributions.values():
            fused += value
        shard = components.get("shard")
        entries.append(
            ChunkExplanation(
                rank=position,
                chunk_id=result.record.chunk_id,
                doc_id=result.record.doc_id,
                title=result.record.title,
                final_score=result.score,
                fused_score=fused,
                rerank_adjust=rerank_adjust,
                rrf_contributions=rrf_contributions,
                leg_ranks={
                    key: rank
                    for key, value in rrf_contributions.items()
                    if (rank := _leg_rank(value, rrf_c)) is not None
                },
                leg_scores=leg_scores,
                shard=int(shard) if shard is not None else None,
                components=dict(components),
            )
        )
    return ExplainReport(
        question=question,
        rrf_c=rrf_c,
        mode=mode,
        entries=tuple(entries),
        route=route,
        work=work,
    )
