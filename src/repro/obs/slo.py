"""Service-level objectives with multi-window burn-rate evaluation.

A threshold alert ("fire when failure rate > 2%") pages equally hard for a
one-minute blip and a sustained outage.  SLO-based alerting instead tracks
how fast the **error budget** burns: an :class:`SLO` declares the fraction
of *good* events required over a compliance period; the *burn rate* over a
window is the observed bad fraction divided by the budget (burn 1.0 =
spending exactly the budget, 14.4 = exhausting a 30-day budget in ~2 days).

:func:`evaluate_burn_rates` implements the standard multi-window guard: an
alert fires only when **both** a short and a long window exceed the same
burn threshold — the long window proves the problem is sustained, the
short window proves it is still happening (so the alert resolves quickly
once the system recovers).  The default window pairs are the SRE-workbook
values (5 m/1 h at 14.4× critical, 30 m/6 h at 6× warning).

Events are ``(timestamp, good)`` samples; the service layer adapts its
query log (availability: not failed; latency: served under the objective
threshold; guardrail rate: answer not invalidated) in
:mod:`repro.service.alerting`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = [
    "BurnRateAlert",
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "SLO",
    "SloSample",
    "burn_rate",
    "evaluate_burn_rates",
]


@dataclass(frozen=True)
class SLO:
    """One objective: the required fraction of good events.

    Attributes:
        name: stable identifier (``availability``, ``latency_p95``, …).
        objective: required good fraction in (0, 1), e.g. 0.999.
        description: one-line operator-facing summary.
    """

    name: str
    objective: float
    description: str = ""

    def __post_init__(self) -> None:
        if not (0.0 < self.objective < 1.0):
            raise ValueError("objective must be strictly between 0 and 1")

    @property
    def error_budget(self) -> float:
        """The tolerated bad fraction (1 - objective)."""
        return 1.0 - self.objective


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate rule: short + long window, one threshold."""

    short_seconds: float
    long_seconds: float
    max_burn_rate: float
    severity: str

    def __post_init__(self) -> None:
        if self.short_seconds <= 0 or self.long_seconds <= 0:
            raise ValueError("window lengths must be positive")
        if self.short_seconds > self.long_seconds:
            raise ValueError("the short window must not exceed the long window")
        if self.max_burn_rate <= 0:
            raise ValueError("max_burn_rate must be positive")


#: SRE-workbook defaults: page on a fast burn, warn on a slow one.
DEFAULT_BURN_WINDOWS = (
    BurnWindow(short_seconds=300.0, long_seconds=3600.0, max_burn_rate=14.4, severity="critical"),
    BurnWindow(short_seconds=1800.0, long_seconds=21600.0, max_burn_rate=6.0, severity="warning"),
)


@dataclass(frozen=True)
class SloSample:
    """One classified event: when it happened and whether it was good."""

    timestamp: float
    good: bool


@dataclass(frozen=True)
class BurnRateAlert:
    """One fired multi-window burn-rate alert."""

    slo: str
    severity: str
    short_burn: float
    long_burn: float
    window: BurnWindow
    message: str


def burn_rate(
    samples: Iterable[SloSample], window_seconds: float, now: float, error_budget: float
) -> float:
    """The budget burn over ``[now - window, now]`` (0.0 with no samples)."""
    if error_budget <= 0:
        raise ValueError("error_budget must be positive")
    start = now - window_seconds
    total = 0
    bad = 0
    for sample in samples:
        if start <= sample.timestamp <= now:
            total += 1
            if not sample.good:
                bad += 1
    if total == 0:
        return 0.0
    return (bad / total) / error_budget


def evaluate_burn_rates(
    slo: SLO,
    samples: list[SloSample],
    now: float,
    windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
) -> list[BurnRateAlert]:
    """Fire every window rule whose short AND long burns exceed its threshold.

    Rules are checked in order; at most one alert fires per SLO — the
    first (most severe) window pair that trips — because a fast burn
    already implies the slow-burn condition operationally.
    """
    for window in windows:
        short = burn_rate(samples, window.short_seconds, now, slo.error_budget)
        long_ = burn_rate(samples, window.long_seconds, now, slo.error_budget)
        if short > window.max_burn_rate and long_ > window.max_burn_rate:
            return [
                BurnRateAlert(
                    slo=slo.name,
                    severity=window.severity,
                    short_burn=short,
                    long_burn=long_,
                    window=window,
                    message=(
                        f"SLO {slo.name} (objective {slo.objective:.2%}) burning "
                        f"{short:.1f}x budget over {window.short_seconds / 60.0:.0f}m "
                        f"and {long_:.1f}x over {window.long_seconds / 60.0:.0f}m "
                        f"(threshold {window.max_burn_rate:g}x)"
                    ),
                )
            ]
    return []
