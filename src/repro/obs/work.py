"""Deterministic work accounting: counting what a request *did*, not how
long it took.

Timing-based perf gates are inherently noisy — a loaded CI runner turns a
real regression into flaky red and a fake one into green.  Work units are
not: the number of postings scanned, documents scored, MaxScore candidates
pruned, ANN distance evaluations, cache tiers consulted and LLM tokens
consumed by a given question against a given index state is a pure
function of the code, so two runs of the same query set must produce
``==``-identical counts and any drift is a bit-exact diff pointing at the
exact code path that changed.  This is the same philosophy as the kernels'
byte-identical score gates, applied to *effort* instead of *results*.

A :class:`WorkCounters` rides on the request's
:class:`~repro.obs.trace.RequestContext` (``ctx.work``, None by default);
every instrumented source of truth guards with ``if work is not None`` so
the disabled path executes exactly the pre-accounting code.  Increments
are plain integer adds on a dict — no clock reads, no allocation per add.
"""

from __future__ import annotations

__all__ = [
    "ALL_WORK_KINDS",
    "WORK_ANN_DISTANCE_EVALS",
    "WORK_CACHE_EXACT_HITS",
    "WORK_CACHE_EXACT_MISSES",
    "WORK_CACHE_SEMANTIC_HITS",
    "WORK_CACHE_SEMANTIC_MISSES",
    "WORK_COALESCED_JOINS",
    "WORK_DOCS_SCORED",
    "WORK_LLM_COMPLETION_TOKENS",
    "WORK_LLM_PROMPT_TOKENS",
    "WORK_MAXSCORE_ADMITTED",
    "WORK_MAXSCORE_PRUNED",
    "WORK_POSTINGS_SCANNED",
    "WORK_RETRIEVAL_CACHE_HITS",
    "WORK_RETRIEVAL_CACHE_MISSES",
    "WORK_SCATTER_LEGS",
    "WORK_SEGMENTS_TOUCHED",
    "WorkCounters",
]

#: The work-counter taxonomy.  Each kind is incremented at exactly one
#: source of truth (the module listed), so a count never double-books.
WORK_POSTINGS_SCANNED = "postings_scanned"  # search.kernels / search.bm25
WORK_DOCS_SCORED = "docs_scored"  # search.bm25
WORK_MAXSCORE_ADMITTED = "maxscore_admitted"  # search.bm25 (pruned top-n)
WORK_MAXSCORE_PRUNED = "maxscore_pruned"  # search.bm25 (pruned top-n)
WORK_SEGMENTS_TOUCHED = "segments_touched"  # search.fulltext (segment views)
WORK_ANN_DISTANCE_EVALS = "ann_distance_evals"  # search.index (ANN backends)
WORK_CACHE_EXACT_HITS = "cache_exact_hits"  # cache.answer_cache
WORK_CACHE_EXACT_MISSES = "cache_exact_misses"  # cache.answer_cache
WORK_CACHE_SEMANTIC_HITS = "cache_semantic_hits"  # cache.answer_cache
WORK_CACHE_SEMANTIC_MISSES = "cache_semantic_misses"  # cache.answer_cache
WORK_RETRIEVAL_CACHE_HITS = "retrieval_cache_hits"  # cluster.router (legs)
WORK_RETRIEVAL_CACHE_MISSES = "retrieval_cache_misses"  # cluster.router (legs)
WORK_COALESCED_JOINS = "coalesced_joins"  # service.backend (single-flight)
WORK_LLM_PROMPT_TOKENS = "llm_prompt_tokens"  # llm.base (traced_complete)
WORK_LLM_COMPLETION_TOKENS = "llm_completion_tokens"  # llm.base
WORK_SCATTER_LEGS = "scatter_legs"  # cluster.router (shard probes)

ALL_WORK_KINDS = (
    WORK_POSTINGS_SCANNED,
    WORK_DOCS_SCORED,
    WORK_MAXSCORE_ADMITTED,
    WORK_MAXSCORE_PRUNED,
    WORK_SEGMENTS_TOUCHED,
    WORK_ANN_DISTANCE_EVALS,
    WORK_CACHE_EXACT_HITS,
    WORK_CACHE_EXACT_MISSES,
    WORK_CACHE_SEMANTIC_HITS,
    WORK_CACHE_SEMANTIC_MISSES,
    WORK_RETRIEVAL_CACHE_HITS,
    WORK_RETRIEVAL_CACHE_MISSES,
    WORK_COALESCED_JOINS,
    WORK_LLM_PROMPT_TOKENS,
    WORK_LLM_COMPLETION_TOKENS,
    WORK_SCATTER_LEGS,
)


class WorkCounters:
    """Deterministic per-request work tally, keyed by kind.

    Only kinds that actually fired appear in :attr:`counts`, so the
    serialized form of a cache-hit request (two adds) stays tiny and a
    taxonomy extension never bloats old requests.  Equality is plain dict
    equality — the contract the differential tests assert with ``==``.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def add(self, kind: str, amount: int = 1) -> None:
        """Book *amount* units of *kind* (a plain integer add)."""
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + int(amount)

    def get(self, kind: str) -> int:
        """Units booked for *kind* (0 when it never fired)."""
        return self.counts.get(kind, 0)

    def merge(self, other: "WorkCounters") -> None:
        """Fold *other*'s counts into this tally."""
        for kind, amount in other.counts.items():
            self.add(kind, amount)

    def snapshot(self) -> dict[str, int]:
        """A sorted copy of the counts (safe to mutate, stable order)."""
        return {kind: self.counts[kind] for kind in sorted(self.counts)}

    def delta(self, mark: dict[str, int]) -> dict[str, int]:
        """Counts accrued since *mark* (an earlier :meth:`snapshot`)."""
        out: dict[str, int] = {}
        for kind in sorted(self.counts):
            diff = self.counts[kind] - mark.get(kind, 0)
            if diff:
                out[kind] = diff
        return out

    @property
    def total(self) -> int:
        """Sum of all booked units."""
        return sum(self.counts.values())

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, WorkCounters):
            return self.counts == other.counts
        if isinstance(other, dict):
            return self.counts == other
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"WorkCounters({inner})"
