"""Saturation telemetry: the USE view (utilization, saturation, errors) of
every serving resource, plus rolling Little's-law load estimates.

The autoscaling/admission-control loop (ROADMAP item 2) needs to observe
*how close to the edge* the system is running, which none of the
per-request surfaces expose: queue depth, concurrency high-water marks,
utilization and offered load per backend and per replica.  This module
derives all of them from the one signal the simulation already produces —
the flight window ``[arrival, arrival + response_time)`` of every request,
fed in arrival order off the simulated clock by the backend's ``serve()``
and the load-test drivers.

For each resource key (``backend``, ``cluster``, ``shard0/r1``, ...):

* **concurrency** — flights whose windows overlap, tracked with a heap of
  end instants; the *high-water mark* is the peak observed concurrency and
  ``queue depth`` is ``concurrency - 1`` (one flight is in service, the
  rest wait);
* **utilization** — busy fraction of the rolling window: summed service
  time of window arrivals over the window span, capped at 1.0;
* **offered load / Little's L** — ``λ·W`` over the rolling window
  (arrival rate × mean response time), the average number of requests in
  the system by Little's law.  ``L`` crossing the replica count is the
  canonical "add capacity" signal.

Everything is deterministic and allocation-light; a deployment that never
constructs a :class:`CapacityMonitor` pays nothing.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

__all__ = [
    "CapacityMonitor",
    "SaturationSample",
    "format_saturation",
]


@dataclass(frozen=True)
class SaturationSample:
    """One resource's saturation reading at snapshot time.

    Attributes:
        resource: the resource key (``backend``, ``shard0/r1``, ...).
        arrivals: total flights observed since construction.
        errors: flights flagged failed (the E of USE).
        in_flight: flights whose window was still open at the last arrival.
        concurrency_high_water: peak overlapping flights ever observed.
        queue_high_water: ``max(0, concurrency_high_water - 1)``.
        arrival_rate: λ over the rolling window (flights/second).
        mean_response_s: W over the rolling window (seconds).
        littles_load: L = λ·W — average requests in system (offered load).
        utilization: busy fraction of the rolling window, capped at 1.0.
        window_seconds: the rolling-window width used for λ/W/L.
    """

    resource: str
    arrivals: int
    errors: int
    in_flight: int
    concurrency_high_water: int
    queue_high_water: int
    arrival_rate: float
    mean_response_s: float
    littles_load: float
    utilization: float
    window_seconds: float

    def to_dict(self) -> dict:
        return {
            "resource": self.resource,
            "arrivals": self.arrivals,
            "errors": self.errors,
            "in_flight": self.in_flight,
            "concurrency_high_water": self.concurrency_high_water,
            "queue_high_water": self.queue_high_water,
            "arrival_rate": self.arrival_rate,
            "mean_response_s": self.mean_response_s,
            "littles_load": self.littles_load,
            "utilization": self.utilization,
            "window_seconds": self.window_seconds,
        }


class _ResourceState:
    """Mutable per-resource tracking (heap of active flight ends)."""

    __slots__ = (
        "active_ends",
        "arrivals",
        "errors",
        "high_water",
        "window",
        "last_arrival",
    )

    def __init__(self) -> None:
        self.active_ends: list[float] = []  # heap of flight end instants
        self.arrivals = 0
        self.errors = 0
        self.high_water = 0
        #: rolling (arrival, response_time) pairs, evicted by window width
        self.window: deque[tuple[float, float]] = deque()
        self.last_arrival = 0.0


class CapacityMonitor:
    """Derives USE/saturation telemetry from request flight windows.

    Feed :meth:`observe` in arrival order (the simulated clock guarantees
    this for every driver in the repo).  *registry* is optional; when set,
    per-resource gauges are registered **at construction** — a deployment
    that enables capacity telemetry has opted into the new exposition, and
    one that does not construct the monitor keeps its byte-identical
    /metrics output.
    """

    def __init__(self, window_seconds: float = 60.0, registry=None) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.window_seconds = float(window_seconds)
        self._resources: dict[str, _ResourceState] = {}
        if registry is not None:
            self._g_inflight = registry.gauge(
                "uniask_saturation_in_flight",
                "Concurrent flights at the last arrival, by resource.",
                ("resource",),
            )
            self._g_high_water = registry.gauge(
                "uniask_saturation_concurrency_high_water",
                "Peak concurrent flights observed, by resource.",
                ("resource",),
            )
            self._g_queue_depth = registry.gauge(
                "uniask_saturation_queue_depth",
                "Waiting flights (concurrency - 1) at the last arrival.",
                ("resource",),
            )
            self._g_utilization = registry.gauge(
                "uniask_saturation_utilization",
                "Rolling-window busy fraction, by resource (0..1).",
                ("resource",),
            )
            self._g_load = registry.gauge(
                "uniask_saturation_littles_load",
                "Rolling-window Little's-law load estimate (L = lambda * W).",
                ("resource",),
            )
        else:
            self._g_inflight = None
            self._g_high_water = None
            self._g_queue_depth = None
            self._g_utilization = None
            self._g_load = None

    def observe(
        self, resource: str, arrival: float, response_time: float, failed: bool = False
    ) -> None:
        """Record one flight ``[arrival, arrival + response_time)``."""
        state = self._resources.get(resource)
        if state is None:
            state = self._resources[resource] = _ResourceState()
        ends = state.active_ends
        while ends and ends[0] <= arrival:
            heapq.heappop(ends)
        heapq.heappush(ends, arrival + response_time)
        state.arrivals += 1
        if failed:
            state.errors += 1
        if len(ends) > state.high_water:
            state.high_water = len(ends)
        state.last_arrival = arrival
        window = state.window
        window.append((arrival, response_time))
        horizon = arrival - self.window_seconds
        while window and window[0][0] < horizon:
            window.popleft()
        if self._g_inflight is not None:
            self._g_inflight.labels(resource).set(float(len(ends)))
            self._g_high_water.labels(resource).set(float(state.high_water))
            self._g_queue_depth.labels(resource).set(float(max(0, len(ends) - 1)))

    def _sample(self, resource: str, state: _ResourceState) -> SaturationSample:
        window = state.window
        if window:
            span = max(state.last_arrival - window[0][0], 1e-9)
            # With one arrival in the window the span collapses; treat the
            # full window width as the denominator so a lone request never
            # reads as infinite load.
            if len(window) == 1:
                span = self.window_seconds
            rate = len(window) / span
            mean_response = sum(r for _, r in window) / len(window)
            busy = sum(r for _, r in window)
            utilization = min(1.0, busy / span)
        else:
            rate = 0.0
            mean_response = 0.0
            utilization = 0.0
        in_flight = sum(1 for end in state.active_ends if end > state.last_arrival)
        return SaturationSample(
            resource=resource,
            arrivals=state.arrivals,
            errors=state.errors,
            in_flight=in_flight,
            concurrency_high_water=state.high_water,
            queue_high_water=max(0, state.high_water - 1),
            arrival_rate=rate,
            mean_response_s=mean_response,
            littles_load=rate * mean_response,
            utilization=utilization,
            window_seconds=self.window_seconds,
        )

    def snapshot(self) -> tuple[SaturationSample, ...]:
        """Per-resource saturation readings, sorted by resource key.

        Also refreshes the utilization/load gauges when a registry was
        attached, so /metrics and the dashboard agree.
        """
        samples = []
        for resource in sorted(self._resources):
            sample = self._sample(resource, self._resources[resource])
            samples.append(sample)
            if self._g_utilization is not None:
                self._g_utilization.labels(resource).set(sample.utilization)
                self._g_load.labels(resource).set(sample.littles_load)
        return tuple(samples)


def format_saturation(samples: tuple[SaturationSample, ...]) -> str:
    """Render the dashboard "saturation" section (one line per resource)."""
    header = (
        f"{'resource':<18} {'util':>6} {'L':>7} {'lam/s':>7} {'W':>8} "
        f"{'hwm':>4} {'queue':>5} {'inflt':>5} {'err':>4}"
    )
    lines = [header, "-" * len(header)]
    for s in samples:
        lines.append(
            f"{s.resource:<18} {s.utilization:>5.0%} {s.littles_load:>7.2f} "
            f"{s.arrival_rate:>7.2f} {s.mean_response_s:>7.3f}s "
            f"{s.concurrency_high_water:>4} {s.queue_high_water:>5} "
            f"{s.in_flight:>5} {s.errors:>4}"
        )
    return "\n".join(lines)
