"""Span taxonomy of the staged request pipeline.

Stage names are stable identifiers: the monitoring dashboard keys its
per-stage latency series on them and the tests assert on them, so treat
renames as breaking changes.  The canonical trace of a fully answered
question nests as::

    ask
      content_filter
      retrieval
        fulltext
        embed_query
        vector_title
        vector_content
        fusion
        rerank
      prompt_build
      llm
      guardrails
        guardrail_citation
        guardrail_rouge
        guardrail_clarification
      citations

Multi-query retrieval (MQ1) additionally records one ``subquery`` span per
generated query (attribute ``cached=True`` when a duplicate query reused
the per-query ranking already recorded in the trace) and a final top-level
``fusion`` span.

Clustered retrieval (``repro.cluster``) replaces the per-index search
stages with a scatter-gather block under ``retrieval``::

    retrieval
      embed_query
      scatter
        shard_0
        shard_1
        ...
      scatter_wait
      fusion
      rerank

Each ``shard_<i>`` span is a leaf carrying the replica that served the
shard, the simulated replica latency, and whether a hedged retry fired;
``scatter_wait`` models the barrier of the parallel fan-out (its cost is
the *maximum* replica latency, not the sum, because shards are queried
concurrently in a real deployment).

Stage names also key the telemetry layer: the backend observes each leaf
stage's duration into the ``uniask_stage_seconds{stage=<name>}`` histogram
of the metrics registry, and when the request's trace is retained by the
sampler the histogram bucket keeps the request id as an **exemplar** — the
trace id of the slowest sample in that bucket — so a per-stage latency
spike in the ``/metrics`` exposition links back to a concrete retained
trace (see :mod:`repro.obs.metrics` and :mod:`repro.obs.sampling`).
"""

from __future__ import annotations

#: Root span of one engine request.
STAGE_ASK = "ask"

#: Input screening (the Azure content filter stand-in).
STAGE_CONTENT_FILTER = "content_filter"

#: The whole retrieval module (parent of the search stages).
STAGE_RETRIEVAL = "retrieval"

#: BM25 full-text search across searchable fields.
STAGE_FULLTEXT = "fulltext"

#: Query embedding ahead of the per-field ANN searches.
STAGE_EMBED_QUERY = "embed_query"

#: Prefix of the per-field ANN search spans (``vector_title`` …).
VECTOR_STAGE_PREFIX = "vector_"

#: Reciprocal Rank Fusion of the per-source rankings.
STAGE_FUSION = "fusion"

#: Semantic reranking of the fused ranking.
STAGE_RERANK = "rerank"

#: One sub-query of a multi-query (MQ1) retrieval.
STAGE_SUBQUERY = "subquery"

#: Generation-prompt assembly (context JSON + messages).
STAGE_PROMPT_BUILD = "prompt_build"

#: The chat-completion call.
STAGE_LLM = "llm"

#: The guardrail pipeline (parent of the per-guardrail spans).
STAGE_GUARDRAILS = "guardrails"

#: Prefix of the per-guardrail spans (``guardrail_citation`` …).
GUARDRAIL_STAGE_PREFIX = "guardrail_"

#: Citation resolution of the accepted answer.
STAGE_CITATIONS = "citations"

#: Scatter of the query legs across all shards (parent of the shard spans).
STAGE_SCATTER = "scatter"

#: Prefix of the per-shard scatter spans (``shard_0`` …).
SHARD_STAGE_PREFIX = "shard_"

#: The gather barrier: waiting for the slowest successful shard replica.
STAGE_SCATTER_WAIT = "scatter_wait"

#: Answer-cache lookup (attribute ``hit``: "exact" / "semantic" / "" and
#: ``scanned``: semantic-tier candidates compared).  A cache hit makes the
#: whole request trace collapse to ``ask → cache_lookup``.
STAGE_CACHE_LOOKUP = "cache_lookup"

#: Answer-cache store of a freshly computed cacheable answer.
STAGE_CACHE_STORE = "cache_store"

#: Orchestrator route classification (attributes ``route`` and ``reason``).
#: Only present in agents-enabled deployments; an agents-routed multi-hop
#: request nests per-hop ``subquery`` spans under ``retrieval`` followed by
#: a top-level ``fusion`` span, exactly like MQ1 retrieval.
STAGE_AGENT_ROUTE = "agent_route"

#: Follow-up anaphora resolution against session memory.
STAGE_AGENT_REWRITE = "agent_rewrite"

#: Structured-route plan compilation/validation (attributes ``table``,
#: ``predicates``, ``attempts``, ``repaired``).
STAGE_STRUCTURED_PLAN = "structured_plan"

#: Structured-route plan execution and answer rendering.
STAGE_STRUCTURED_EXEC = "structured_exec"

#: Background segment maintenance sweep (seals/merges/compactions), with
#: one attribute per performed op kind carrying its count.
STAGE_INDEX_MAINTENANCE = "index_maintenance"

#: Explicit tombstone reclamation: ANN graph rebuild + segment compaction.
STAGE_VACUUM = "vacuum"


def vector_stage(field_name: str) -> str:
    """Span name of the ANN search over *field_name*."""
    return f"{VECTOR_STAGE_PREFIX}{field_name}"


def shard_stage(shard_id: int | str) -> str:
    """Span name of the scatter leg sent to shard *shard_id*."""
    return f"{SHARD_STAGE_PREFIX}{shard_id}"


def guardrail_stage(guardrail_name: str) -> str:
    """Span name of one guardrail check."""
    return f"{GUARDRAIL_STAGE_PREFIX}{guardrail_name}"
