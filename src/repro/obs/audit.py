"""Structured JSONL audit log with deterministic serialisation and replay.

The paper's dashboard "directly queries the logs of the various
microservices" — which only works when the logs are machine-readable and
stable.  :class:`AuditLogger` is the per-deployment structured log: one
JSON object per line, canonical serialisation (sorted keys, compact
separators, no ASCII escaping), timestamps read from the injected
simulated clock — so two runs at the same seed produce byte-identical log
files, and any report derived from the live run can be *re-derived from
the log alone* (see :func:`repro.service.loadtest.replay_cluster_report`).

Entries carry at minimum ``level`` (``INFO``/``WARNING``/``ERROR``),
``event`` (a stable snake_case name) and, when the logger has a clock,
``ts``.  The backend writes one ``request`` entry per served query:
request id, user, outcome, response time, per-stage durations, shard
health, guardrail verdicts and whether the request's trace was retained by
the sampler.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "AuditLogger",
    "LEVEL_ERROR",
    "LEVEL_INFO",
    "LEVEL_WARNING",
    "NULL_AUDIT",
    "read_audit_log",
    "serialize_entry",
]

LEVEL_INFO = "INFO"
LEVEL_WARNING = "WARNING"
LEVEL_ERROR = "ERROR"

_LEVELS = (LEVEL_INFO, LEVEL_WARNING, LEVEL_ERROR)


def serialize_entry(entry: dict) -> str:
    """Canonical one-line JSON: sorted keys, compact, unicode preserved."""
    return json.dumps(entry, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


class AuditLogger:
    """Append-only structured log kept in memory and optionally on disk.

    Args:
        clock: anything with ``now() -> float``; when set, every entry is
            stamped with ``ts`` (simulated seconds).
        path: when set, every entry is appended to this JSONL file as it
            is logged (the file is truncated at construction).
        retention: when set, only the most recent *retention* entries are
            kept **in memory** (a ring, oldest evicted first).  The
            on-disk sink stays complete and append-only regardless — the
            file, not the ring, is the evidence; replay tooling reads the
            file.
    """

    enabled = True

    def __init__(
        self,
        clock=None,
        path: str | Path | None = None,
        retention: int | None = None,
    ) -> None:
        if retention is not None and retention < 1:
            raise ValueError("retention must be positive when set")
        self._clock = clock
        self._entries: deque[dict] = deque(maxlen=retention)
        self._total_logged = 0
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._path.write_text("", encoding="utf-8")

    def log(self, level: str, event: str, **fields: object) -> dict:
        """Append one entry; returns the entry dict as stored."""
        if level not in _LEVELS:
            raise ValueError(f"level must be one of {_LEVELS}")
        entry: dict = {"level": level, "event": event}
        if self._clock is not None:
            entry["ts"] = self._clock.now()
        entry.update(fields)
        self._entries.append(entry)
        self._total_logged += 1
        if self._path is not None:
            with self._path.open("a", encoding="utf-8") as sink:
                sink.write(serialize_entry(entry) + "\n")
        return entry

    def info(self, event: str, **fields: object) -> dict:
        """Shorthand for an INFO entry."""
        return self.log(LEVEL_INFO, event, **fields)

    def warning(self, event: str, **fields: object) -> dict:
        """Shorthand for a WARNING entry."""
        return self.log(LEVEL_WARNING, event, **fields)

    @property
    def entries(self) -> list[dict]:
        """All retained entries, in log order."""
        return list(self._entries)

    @property
    def total_logged(self) -> int:
        """Entries ever logged, including any evicted from the ring."""
        return self._total_logged

    def lines(self) -> list[str]:
        """Every entry canonically serialised, in log order."""
        return [serialize_entry(entry) for entry in self._entries]

    def find(self, event: str) -> list[dict]:
        """Every entry whose ``event`` equals *event*."""
        return [entry for entry in self._entries if entry.get("event") == event]

    def dump(self, path: str | Path) -> Path:
        """Write the retained log to *path* as JSONL; returns the path."""
        target = Path(path)
        target.write_text("".join(line + "\n" for line in self.lines()), encoding="utf-8")
        return target

    def __len__(self) -> int:
        return len(self._entries)


class _NullAuditLogger(AuditLogger):
    """A disabled audit log: records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def log(self, level: str, event: str, **fields: object) -> dict:  # type: ignore[override]
        return {}


#: Shared disabled audit log — the zero-cost default.
NULL_AUDIT = _NullAuditLogger()


def read_audit_log(source: str | Path | Iterable[str]) -> Iterator[dict]:
    """Parse a JSONL audit log from a path or an iterable of lines.

    Blank lines are skipped; malformed lines raise (an audit log is
    evidence — silently dropping entries would defeat its purpose).
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source
    for line in lines:
        line = line.strip()
        if not line:
            continue
        yield json.loads(line)
