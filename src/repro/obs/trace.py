"""Request-scoped tracing for the staged ask/search pipeline.

Every stage of a request — content filter, full-text search, vector search
per field, RRF fusion, semantic rerank, prompt build, LLM completion, each
guardrail — runs inside a named :class:`Span` recorded on a :class:`Trace`.
A span carries wall-clock start/end instants read from an injected clock
(:class:`WallClock` for real deployments, the repository-wide
:class:`~repro.pipeline.clock.SimulatedClock` in simulations, so load
tests stay deterministic), plus free-form attributes for input/output
sizes and outcomes.

Tracing is **zero-cost by default**: components accept an optional
:class:`RequestContext` and fall back to the shared :data:`NULL_CONTEXT`,
whose :class:`NullTrace` allocates no spans and whose ``span()`` returns a
singleton no-op context manager.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "NULL_CONTEXT",
    "NullTrace",
    "RequestContext",
    "Span",
    "Trace",
    "WallClock",
    "null_context",
]

#: Span statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class WallClock:
    """Monotonic wall clock with the same ``now()`` surface as SimulatedClock."""

    @staticmethod
    def now() -> float:
        """Seconds from an arbitrary monotonic origin."""
        return time.perf_counter()


@dataclass
class Span:
    """One named stage of a traced request.

    Attributes:
        name: stage name from :mod:`repro.obs.spans`.
        start: clock reading when the stage began.
        end: clock reading when the stage finished (None while open).
        depth: nesting depth (0 for top-level spans).
        parent_name: name of the enclosing span (None at depth 0).
        attributes: input/output sizes and outcome, set by the stage.
        child_count: number of directly nested spans.
        status: ``"ok"``, or ``"error"`` when the stage raised.
    """

    name: str
    start: float
    end: float | None = None
    depth: int = 0
    parent_name: str | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    child_count: int = 0
    status: str = STATUS_OK

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def is_leaf(self) -> bool:
        """True when no span was opened inside this one."""
        return self.child_count == 0

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attributes[key] = value

    def annotate(self, **attributes: object) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)


class _SpanScope:
    """Context manager opening *span* on *trace* (re-entrant per span)."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", span: Span) -> None:
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.status = STATUS_ERROR
            self._span.attributes["error_type"] = exc_type.__name__
        self._trace._close(self._span)
        return False


class Trace:
    """An ordered, nested record of the spans of one request.

    Args:
        clock: anything with a ``now() -> float`` method; defaults to
            :class:`WallClock`.  Pass a
            :class:`~repro.pipeline.clock.SimulatedClock` for deterministic
            simulated timings.
        cost: optional stage-cost hook ``cost(span) -> seconds``; when set
            and the clock supports ``advance()``, the returned duration is
            added to the clock as the span closes.  This is how simulated
            deployments attribute deterministic latency to each stage.
    """

    enabled = True

    def __init__(
        self,
        clock=None,
        cost: Callable[[Span], float] | None = None,
    ) -> None:
        self._clock = clock if clock is not None else WallClock()
        self._cost = cost
        self._spans: list[Span] = []
        self._stack: list[Span] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attributes: object) -> _SpanScope:
        """Open a named span; use as ``with trace.span("llm") as span:``."""
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            start=self._clock.now(),
            depth=len(self._stack),
            parent_name=parent.name if parent is not None else None,
            attributes=dict(attributes),
        )
        if parent is not None:
            parent.child_count += 1
        self._spans.append(record)
        self._stack.append(record)
        return _SpanScope(self, record)

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if self._cost is not None:
            extra = self._cost(span)
            advance = getattr(self._clock, "advance", None)
            if extra > 0 and advance is not None:
                advance(extra)
        span.end = self._clock.now()

    # -- reading -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """All spans in opening order."""
        return list(self._spans)

    def span_names(self) -> list[str]:
        """Names of all spans in opening order."""
        return [span.name for span in self._spans]

    def find(self, name: str) -> Span | None:
        """The first span named *name* (None when absent)."""
        for span in self._spans:
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list[Span]:
        """Every span named *name*, in opening order."""
        return [span for span in self._spans if span.name == name]

    def leaf_spans(self) -> Iterator[Span]:
        """Spans with no nested children — the actual work stages."""
        return (span for span in self._spans if span.is_leaf)

    def stage_durations(self) -> dict[str, float]:
        """Completed leaf-stage durations keyed by span name (duplicates
        summed).

        Spans still open — a request that raised mid-stage — are excluded
        rather than silently counted as 0.0s; check
        :attr:`open_span_count` to tell a truncated trace from a short one.
        """
        durations: dict[str, float] = {}
        for span in self.leaf_spans():
            if span.end is None:
                continue
            durations[span.name] = durations.get(span.name, 0.0) + span.duration
        return durations

    @property
    def open_span_count(self) -> int:
        """Spans opened but never closed (non-zero only for truncated
        traces, e.g. a request that raised mid-stage)."""
        return sum(1 for span in self._spans if span.end is None)

    @property
    def total_duration(self) -> float:
        """Summed duration of the completed top-level spans."""
        return sum(
            span.duration
            for span in self._spans
            if span.depth == 0 and span.end is not None
        )

    def format_table(self) -> str:
        """Render the per-stage timing table (the ``--trace`` CLI output)."""
        lines = [f"{'stage':<34} {'duration':>12}  details"]
        lines.append("-" * len(lines[0]))
        for span in self._spans:
            label = "  " * span.depth + span.name
            details = " ".join(f"{k}={v}" for k, v in span.attributes.items())
            if span.status != STATUS_OK:
                details = f"status={span.status} {details}".rstrip()
            lines.append(f"{label:<34} {span.duration * 1000.0:>10.3f}ms  {details}".rstrip())
        lines.append("-" * len(lines[1]))
        lines.append(f"{'total':<34} {self.total_duration * 1000.0:>10.3f}ms")
        return "\n".join(lines)


class _NullSpan:
    """Shared no-op span: context manager, ``set`` and ``annotate`` sinks."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass

    def annotate(self, **attributes: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTrace(Trace):
    """A disabled trace: records nothing, allocates (almost) nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=WallClock())

    def span(self, name: str, **attributes: object) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN


class RequestContext:
    """Per-request carrier threaded through every pipeline stage.

    Attributes:
        trace: the (possibly null) trace recording stage spans.
        request_id: opaque correlation id set by the caller.
        explain: True when the request asked for score provenance — the
            retrieval stages then attach their fine-grained breakdowns
            (per-term BM25, shard attribution) to each result's
            ``components`` so :mod:`repro.obs.explain` can assemble the
            per-chunk report.  Off by default: the explain=False path runs
            exactly the pre-explain code.
        work: the request's :class:`~repro.obs.work.WorkCounters`, or None
            (the default) when work accounting is off — every instrumented
            site guards with ``if work is not None`` so the disabled path
            is byte-identical to the pre-accounting pipeline.
    """

    __slots__ = ("trace", "request_id", "explain", "work")

    def __init__(
        self,
        trace: Trace | None = None,
        request_id: str = "",
        explain: bool = False,
        work=None,
    ) -> None:
        self.trace = trace if trace is not None else NULL_TRACE
        self.request_id = request_id
        self.explain = explain
        self.work = work

    @property
    def tracing(self) -> bool:
        """True when spans are being recorded."""
        return self.trace.enabled

    @classmethod
    def traced(
        cls, clock=None, cost=None, request_id: str = "", explain: bool = False, work=None
    ) -> "RequestContext":
        """A context with tracing enabled on a fresh :class:`Trace`."""
        return cls(
            trace=Trace(clock=clock, cost=cost),
            request_id=request_id,
            explain=explain,
            work=work,
        )


#: Shared disabled trace / context — the zero-cost default of every stage.
NULL_TRACE = NullTrace()
NULL_CONTEXT = RequestContext(trace=NULL_TRACE)


def null_context() -> RequestContext:
    """The shared disabled context (no allocation)."""
    return NULL_CONTEXT
