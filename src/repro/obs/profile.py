"""Continuous profiling: an aggregate, weighted call-tree over many requests.

Per-request traces answer "where did *this* query spend its time"; the
questions that drive capacity planning and regression hunts are aggregate —
"where does the *fleet's* time go", "which stage got slower this hour",
"did pruning stop firing".  The :class:`ContinuousProfiler` folds completed
span trees (the same :class:`~repro.obs.trace.Trace` objects the sampler
already retains, so profiling adds no new instrumentation to the hot path)
into a call-tree profile keyed by **stage path** — the ``/``-joined chain
of span names from the root, e.g. ``ask/retrieval/scatter/shard_0`` — with
per-path call counts, cumulative and self time, and deterministic work
units read from ``work_*`` span attributes.

Memory is bounded by a ring of time windows on the deployment's (simulated)
clock: each recorded trace lands in the window of its record instant, and
only the most recent ``max_windows`` windows are retained — a profile is
always "the last N×window seconds", never an unbounded accumulation.

Three renderers cover the usual consumers:

* :meth:`format_top` — a text "top" table sorted by self time;
* :meth:`folded_stacks` — one ``a;b;c <value>`` line per path, directly
  consumable by flamegraph.pl / speedscope / inferno;
* :meth:`speedscope_json` — a speedscope "sampled" profile document.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import Trace

__all__ = [
    "ContinuousProfiler",
    "ProfileNode",
    "WORK_ATTRIBUTE_PREFIX",
]

#: Span attributes carrying work units use this prefix (``work_<kind>``).
WORK_ATTRIBUTE_PREFIX = "work_"


@dataclass
class ProfileNode:
    """Aggregated statistics of one stage path across recorded traces.

    Attributes:
        path: the ``/``-joined span-name chain from the root.
        calls: number of spans folded into this node.
        cumulative_s: summed span durations (includes nested stages).
        self_s: cumulative time minus the time of directly nested spans.
        work: summed deterministic work units by kind, read from the
            spans' ``work_*`` attributes.
        errors: spans that closed with ``status="error"``.
    """

    path: str
    calls: int = 0
    cumulative_s: float = 0.0
    self_s: float = 0.0
    work: dict[str, int] = field(default_factory=dict)
    errors: int = 0

    def merge(self, other: "ProfileNode") -> None:
        """Fold *other* (same path, another window) into this node."""
        self.calls += other.calls
        self.cumulative_s += other.cumulative_s
        self.self_s += other.self_s
        self.errors += other.errors
        for kind, units in other.work.items():
            self.work[kind] = self.work.get(kind, 0) + units

    def to_dict(self) -> dict:
        """Plain-dict form for JSON surfaces (sorted work keys)."""
        payload = {
            "path": self.path,
            "calls": self.calls,
            "cumulative_s": self.cumulative_s,
            "self_s": self.self_s,
        }
        if self.errors:
            payload["errors"] = self.errors
        if self.work:
            payload["work"] = {kind: self.work[kind] for kind in sorted(self.work)}
        return payload


class ContinuousProfiler:
    """Aggregates completed traces into a windowed call-tree profile.

    Args:
        window_seconds: width of one retention window on the recording
            clock (whatever ``now`` values :meth:`record` is fed —
            simulated seconds in every deployment of this repo).
        max_windows: number of most-recent windows retained; older windows
            are evicted, bounding memory regardless of traffic volume.
    """

    def __init__(self, window_seconds: float = 300.0, max_windows: int = 12) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if max_windows <= 0:
            raise ValueError("max_windows must be positive")
        self.window_seconds = float(window_seconds)
        self.max_windows = max_windows
        #: window id -> path -> ProfileNode
        self._windows: dict[int, dict[str, ProfileNode]] = {}
        self._traces_recorded = 0
        self._spans_recorded = 0

    # -- recording ---------------------------------------------------------

    @property
    def traces_recorded(self) -> int:
        """Traces folded in since construction (evictions don't subtract)."""
        return self._traces_recorded

    @property
    def spans_recorded(self) -> int:
        """Completed spans folded in since construction."""
        return self._spans_recorded

    def record(self, trace: Trace, now: float = 0.0) -> None:
        """Fold one completed *trace* into the window containing *now*."""
        if not trace.enabled:
            return
        bucket = self._windows.setdefault(int(now // self.window_seconds), {})
        self._traces_recorded += 1

        # Spans are stored in opening order with explicit depths, so one
        # forward walk with a name stack reconstructs every path.  Child
        # time is charged back to the parent *path* (not the parent span)
        # which is exactly the aggregation a flamegraph performs.
        names: list[str] = []
        paths: list[str] = []
        for span in trace.spans:
            if span.end is None:
                continue  # truncated trace: open spans carry no time
            del names[span.depth :], paths[span.depth :]
            names.append(span.name)
            path = paths[-1] + "/" + span.name if paths else span.name
            paths.append(path)
            self._spans_recorded += 1

            node = bucket.get(path)
            if node is None:
                node = bucket[path] = ProfileNode(path=path)
            node.calls += 1
            node.cumulative_s += span.duration
            node.self_s += span.duration
            if span.status != "ok":
                node.errors += 1
            for key, value in span.attributes.items():
                if key.startswith(WORK_ATTRIBUTE_PREFIX) and isinstance(value, int):
                    kind = key[len(WORK_ATTRIBUTE_PREFIX) :]
                    node.work[kind] = node.work.get(kind, 0) + value
            if len(paths) > 1:
                parent = bucket.get(paths[-2])
                if parent is not None:
                    parent.self_s -= span.duration

        while len(self._windows) > self.max_windows:
            del self._windows[min(self._windows)]

    # -- reading -----------------------------------------------------------

    def aggregate(self) -> dict[str, ProfileNode]:
        """Merge every retained window into one path-keyed profile."""
        merged: dict[str, ProfileNode] = {}
        for window_id in sorted(self._windows):
            for path, node in self._windows[window_id].items():
                into = merged.get(path)
                if into is None:
                    merged[path] = ProfileNode(
                        path=path,
                        calls=node.calls,
                        cumulative_s=node.cumulative_s,
                        self_s=node.self_s,
                        work=dict(node.work),
                        errors=node.errors,
                    )
                else:
                    into.merge(node)
        return merged

    def to_dict(self) -> dict:
        """Structured profile document (the ``profile`` ops route payload)."""
        nodes = sorted(
            self.aggregate().values(), key=lambda n: (-n.self_s, n.path)
        )
        return {
            "window_seconds": self.window_seconds,
            "max_windows": self.max_windows,
            "windows_retained": len(self._windows),
            "traces_recorded": self._traces_recorded,
            "nodes": [node.to_dict() for node in nodes],
        }

    def format_top(self, limit: int = 25) -> str:
        """The text "top" table: hottest paths by self time."""
        nodes = sorted(
            self.aggregate().values(), key=lambda n: (-n.self_s, n.path)
        )
        total_self = sum(node.self_s for node in nodes) or 1.0
        header = (
            f"{'self':>10} {'%':>6} {'cum':>10} {'calls':>7}  path"
        )
        lines = [
            f"profile: {self._traces_recorded} traces over "
            f"{len(self._windows)} window(s) of {self.window_seconds:g}s",
            header,
            "-" * len(header),
        ]
        for node in nodes[:limit]:
            share = 100.0 * node.self_s / total_self
            detail = ""
            if node.work:
                detail = " " + " ".join(
                    f"{kind}={node.work[kind]}" for kind in sorted(node.work)
                )
            if node.errors:
                detail = f" errors={node.errors}" + detail
            lines.append(
                f"{node.self_s * 1000.0:>8.3f}ms {share:>5.1f}% "
                f"{node.cumulative_s * 1000.0:>8.3f}ms {node.calls:>7}  "
                f"{node.path}{detail}"
            )
        if len(nodes) > limit:
            lines.append(f"... {len(nodes) - limit} more path(s)")
        return "\n".join(lines)

    def folded_stacks(self) -> str:
        """Flamegraph-compatible folded stacks, one path per line.

        Frames are ``;``-separated and the value is the path's self time
        in integer microseconds — feed straight into flamegraph.pl,
        inferno or speedscope.  Zero-weight paths are kept (weight 0) so
        call structure survives even for instant stages.
        """
        lines = []
        merged = self.aggregate()
        for path in sorted(merged):
            node = merged[path]
            lines.append(f"{path.replace('/', ';')} {round(node.self_s * 1e6)}")
        return "\n".join(lines)

    def speedscope_json(self, name: str = "uniask") -> dict:
        """A speedscope "sampled" profile document of the aggregate.

        One sample per path, weighted by self time — open the dict (dumped
        as JSON) directly at speedscope.app.
        """
        merged = self.aggregate()
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        samples: list[list[int]] = []
        weights: list[float] = []
        for path in sorted(merged):
            node = merged[path]
            stack = []
            for frame_name in path.split("/"):
                if frame_name not in frame_index:
                    frame_index[frame_name] = len(frames)
                    frames.append({"name": frame_name})
                stack.append(frame_index[frame_name])
            samples.append(stack)
            weights.append(node.self_s)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro.obs.profile",
        }
