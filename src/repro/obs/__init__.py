"""Observability: tracing, metrics, SLOs, sampling and the audit log.

The staged request pipeline (engine → retrieval → LLM → guardrails →
backend) threads a :class:`~repro.obs.trace.RequestContext` through every
stage; each stage records a named :class:`~repro.obs.trace.Span` with its
duration, input/output sizes and outcome.  On top of tracing sits the
production telemetry substrate:

* :mod:`repro.obs.metrics` — typed instruments (Counter / Gauge /
  Histogram with exemplars) on a :class:`~repro.obs.metrics.MetricsRegistry`,
  rendered in the Prometheus text format;
* :mod:`repro.obs.slo` — SLO objects with multi-window burn-rate alerting;
* :mod:`repro.obs.sampling` — probabilistic + tail-latency trace sampling;
* :mod:`repro.obs.audit` — the deterministic JSONL structured audit log;
* :mod:`repro.obs.telemetry` — the per-deployment bundle of all of the
  above.

Everything is zero-cost by default: the shared null context, null registry
and null audit logger record nothing, and enabled telemetry never reads a
clock or a shared RNG, so outputs stay byte-identical either way.
"""

from repro.obs.audit import NULL_AUDIT, AuditLogger, read_audit_log
from repro.obs.incident import BlackBoxRecorder, Incident, IncidentConfig, IncidentManager
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
    render_prometheus,
)
from repro.obs.sampling import TraceSampler
from repro.obs.slo import SLO, BurnRateAlert, BurnWindow, burn_rate, evaluate_burn_rates
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, TelemetryConfig
from repro.obs.trace import (
    NULL_CONTEXT,
    NullTrace,
    RequestContext,
    Span,
    Trace,
    WallClock,
    null_context,
)

__all__ = [
    "NULL_AUDIT",
    "NULL_CONTEXT",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "AuditLogger",
    "BlackBoxRecorder",
    "BurnRateAlert",
    "BurnWindow",
    "Counter",
    "Gauge",
    "Histogram",
    "Incident",
    "IncidentConfig",
    "IncidentManager",
    "MetricsRegistry",
    "NullTrace",
    "RequestContext",
    "SLO",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "Trace",
    "TraceSampler",
    "WallClock",
    "burn_rate",
    "evaluate_burn_rates",
    "exponential_buckets",
    "null_context",
    "read_audit_log",
    "render_prometheus",
]
