"""Observability: request contexts, traces and the span taxonomy.

The staged request pipeline (engine → retrieval → LLM → guardrails →
backend) threads a :class:`~repro.obs.trace.RequestContext` through every
stage; each stage records a named :class:`~repro.obs.trace.Span` with its
duration, input/output sizes and outcome.  Tracing is zero-cost by
default: the shared null context records nothing.
"""

from repro.obs.trace import (
    NULL_CONTEXT,
    NullTrace,
    RequestContext,
    Span,
    Trace,
    WallClock,
    null_context,
)

__all__ = [
    "NULL_CONTEXT",
    "NullTrace",
    "RequestContext",
    "Span",
    "Trace",
    "WallClock",
    "null_context",
]
