"""Typed metrics registry: counters, gauges and histograms with labels.

The Section 9 dashboard "directly queries the logs of the various
microservices"; underneath such a page a production service keeps *typed
metric instruments* — monotonic :class:`Counter`\\ s, point-in-time
:class:`Gauge`\\ s and fixed-bucket :class:`Histogram`\\ s — that a scraper
reads in one pass.  This module is that substrate:

* a :class:`MetricsRegistry` owns every instrument by name (idempotent
  registration, so independently constructed components share the same
  counter when wired with the same registry);
* instruments carry **label sets** (``labels("answered")`` returns a child
  holding one float cell), pre-resolvable in ``__init__`` so the hot path
  is a dict hit plus an add;
* histograms use **fixed exponential buckets** and keep one *exemplar* per
  bucket — the trace id of the slowest sample that landed in it — so a
  latency spike on the dashboard points at a concrete retained trace (see
  :mod:`repro.obs.sampling`);
* :func:`render_prometheus` serialises the whole registry in the
  Prometheus text exposition format (exemplars in OpenMetrics style),
  deterministically (sorted metric names, sorted label sets).

Instrumentation must never perturb the system under observation: no
instrument reads a clock or an RNG, so a fully instrumented deployment is
byte-identical in its outputs to an uninstrumented one.  The shared
:data:`NULL_REGISTRY` makes the whole layer a no-op for components built
without telemetry.
"""

from __future__ import annotations

import re
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "exponential_buckets",
    "render_prometheus",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """*count* upper bounds growing geometrically from *start* (``+Inf`` implicit)."""
    if start <= 0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be positive")
    return tuple(start * factor**i for i in range(count))


#: Default latency buckets: 5 ms to ~20 s in doublings — wide enough for the
#: sub-millisecond retrieval stages and the seconds-long LLM calls alike.
DEFAULT_LATENCY_BUCKETS = exponential_buckets(0.005, 2.0, 12)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(label_names: tuple[str, ...], label_values: tuple[str, ...]) -> str:
    if not label_names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(label_names, label_values)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared parent machinery: child cells keyed on the label-value tuple."""

    kind = ""

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._children: dict[tuple[str, ...], object] = {}
        if not self.label_names:
            # Label-less instruments act as their own (only) child.
            self._children[()] = self

    def labels(self, *label_values: object):
        """The child cell for *label_values* (created on first use)."""
        key = tuple(str(value) for value in label_values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.label_names):
                raise ValueError(
                    f"{self.name}: expected {len(self.label_names)} label values, got {len(key)}"
                )
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def children(self) -> dict[tuple[str, ...], object]:
        """Label values → child cell, in first-use order."""
        return dict(self._children)


class _CounterChild:
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Counter(_Instrument, _CounterChild):
    """A monotonically increasing count, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()) -> None:
        _CounterChild.__init__(self)
        _Instrument.__init__(self, name, help, label_names)

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def total(self) -> float:
        """Sum over all label sets."""
        return sum(child.value for child in self._children.values())


class _GaugeChild:
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Instrument, _GaugeChild):
    """A value that can go up and down (queue depth, live replicas, …)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()) -> None:
        _GaugeChild.__init__(self)
        _Instrument.__init__(self, name, help, label_names)

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()


class _HistogramChild:
    """Per-bucket counts, sum, count, and one exemplar per bucket.

    The exemplar of a bucket is the ``(value, trace_id)`` of the **slowest**
    sample observed in it, so every bucket of a latency histogram links to
    the concrete trace that best explains it.
    """

    __slots__ = ("_bounds", "counts", "sum", "count", "exemplars")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self.sum = 0.0
        self.count = 0
        self.exemplars: list[tuple[float, str] | None] = [None] * (len(bounds) + 1)

    def observe(self, value: float, trace_id: str | None = None) -> None:
        index = bisect_left(self._bounds, value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if trace_id:
            exemplar = self.exemplars[index]
            if exemplar is None or value > exemplar[0]:
                self.exemplars[index] = (value, trace_id)

    def drop_exemplars(self, trace_id: str) -> None:
        for index, exemplar in enumerate(self.exemplars):
            if exemplar is not None and exemplar[1] == trace_id:
                self.exemplars[index] = None


class Histogram(_Instrument, _HistogramChild):
    """Fixed-bucket distribution with exemplar linkage.

    Buckets are upper bounds (``+Inf`` implicit), fixed at construction;
    :data:`DEFAULT_LATENCY_BUCKETS` (exponential) when omitted.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("buckets must be strictly increasing")
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        self.bounds = bounds
        _HistogramChild.__init__(self, bounds)
        _Instrument.__init__(self, name, help, label_names)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def drop_all_exemplars(self, trace_id: str) -> None:
        """Remove every exemplar referencing *trace_id* (trace evicted)."""
        for child in self._children.values():
            child.drop_exemplars(trace_id)


class MetricsRegistry:
    """Owns every instrument of one deployment, keyed by metric name.

    Registration is idempotent: asking for an existing name returns the
    existing instrument (and raises if the kind or label names differ, the
    usual copy-paste bug).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Instrument] = {}

    def counter(self, name: str, help: str = "", label_names: tuple[str, ...] = ()) -> Counter:
        """Get or create the counter *name*."""
        return self._register(Counter, name, help, tuple(label_names))

    def gauge(self, name: str, help: str = "", label_names: tuple[str, ...] = ()) -> Gauge:
        """Get or create the gauge *name*."""
        return self._register(Gauge, name, help, tuple(label_names))

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create the histogram *name*."""
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, tuple(label_names), buckets=buckets)
            self._metrics[name] = metric
            return metric
        self._check(existing, Histogram, name, tuple(label_names))
        if buckets is not None and tuple(buckets) != existing.bounds:
            raise ValueError(f"metric {name!r} re-registered with different buckets")
        return existing

    def _register(self, cls, name: str, help: str, label_names: tuple[str, ...]):
        existing = self._metrics.get(name)
        if existing is None:
            metric = cls(name, help, label_names)
            self._metrics[name] = metric
            return metric
        self._check(existing, cls, name, label_names)
        return existing

    @staticmethod
    def _check(existing, cls, name: str, label_names: tuple[str, ...]) -> None:
        if type(existing) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        if existing.label_names != label_names:
            raise ValueError(f"metric {name!r} re-registered with different labels")

    def attach(self, metric: _Instrument) -> _Instrument:
        """Expose an externally **owned** instrument under its name.

        Unlike :meth:`counter` & co. (idempotent sharing), ``attach``
        replaces any existing registration: the caller owns the instrument
        and its zeroed state.  Used by components that must keep private
        counts (one dashboard collector per service) while still appearing
        in the deployment's exposition — the latest attached owner wins.
        """
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> _Instrument | None:
        """The instrument registered as *name* (None when absent)."""
        return self._metrics.get(name)

    def collect(self) -> list[_Instrument]:
        """Every instrument, sorted by name (the exposition order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def histograms(self) -> list[Histogram]:
        """Every histogram in the registry."""
        return [m for m in self._metrics.values() if isinstance(m, Histogram)]

    def drop_exemplars(self, trace_id: str) -> None:
        """Remove every exemplar referencing *trace_id* from all histograms.

        Called by the trace sampler when it evicts a retained trace, so an
        exemplar never dangles: every exposed trace id resolves to a trace
        that can actually be fetched.
        """
        for histogram in self.histograms():
            histogram.drop_all_exemplars(trace_id)

    def render(self) -> str:
        """The Prometheus text exposition of the whole registry."""
        return render_prometheus(self)


class _NullChild:
    """One shared sink for every disabled instrument."""

    __slots__ = ()

    def labels(self, *label_values: object) -> "_NullChild":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, trace_id: str | None = None) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_CHILD = _NullChild()


class NullRegistry(MetricsRegistry):
    """A disabled registry: every instrument is the shared no-op child."""

    enabled = False

    def counter(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):  # type: ignore[override]
        return _NULL_CHILD

    def gauge(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):  # type: ignore[override]
        return _NULL_CHILD

    def histogram(self, name: str, help: str = "", label_names=(), buckets=None):  # type: ignore[override]
        return _NULL_CHILD

    def attach(self, metric: _Instrument) -> _Instrument:  # type: ignore[override]
        return metric


#: Shared disabled registry — the zero-cost default of every component.
NULL_REGISTRY = NullRegistry()


def _render_bound(bound: float) -> str:
    return _format_value(bound)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Serialise *registry* in the Prometheus text format.

    Output is deterministic: metrics sort by name, children by label
    values.  Histogram buckets are cumulative with an implicit ``+Inf``;
    bucket exemplars render in OpenMetrics style
    (``… # {trace_id="q-0000004"} 2.31``).
    """
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        children = sorted(metric.children.items())
        if isinstance(metric, Histogram):
            for label_values, child in children:
                cumulative = 0
                for index, bound in enumerate(metric.bounds):
                    cumulative += child.counts[index]
                    suffix = _label_suffix(
                        metric.label_names + ("le",), label_values + (_render_bound(bound),)
                    )
                    line = f"{metric.name}_bucket{suffix} {cumulative}"
                    exemplar = child.exemplars[index]
                    if exemplar is not None:
                        value, trace_id = exemplar
                        line += f' # {{trace_id="{_escape_label(trace_id)}"}} {_format_value(value)}'
                    lines.append(line)
                cumulative += child.counts[-1]
                suffix = _label_suffix(metric.label_names + ("le",), label_values + ("+Inf",))
                line = f"{metric.name}_bucket{suffix} {cumulative}"
                exemplar = child.exemplars[-1]
                if exemplar is not None:
                    value, trace_id = exemplar
                    line += f' # {{trace_id="{_escape_label(trace_id)}"}} {_format_value(value)}'
                lines.append(line)
                base = _label_suffix(metric.label_names, label_values)
                lines.append(f"{metric.name}_sum{base} {_format_value(child.sum)}")
                lines.append(f"{metric.name}_count{base} {child.count}")
        else:
            for label_values, child in children:
                suffix = _label_suffix(metric.label_names, label_values)
                lines.append(f"{metric.name}{suffix} {_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")
