"""Online quality-drift observability: canary probes and drift detectors.

Section 6's deployment lesson is that the dangerous production failures are
*silent quality regressions*: an index refresh, a batch of near-duplicate
procedure docs, or jargon drift degrades retrieval and generation long
before users complain, and the paper's guardrail/groundedness evaluation
(Table 5) is offline-only.  This module closes the loop online with two
complementary mechanisms:

**Streaming drift detectors** watch signals of the live query stream
against a frozen *reference window* captured when the deployment was known
healthy:

* the fused-score distribution of the top retrieval hit, compared with a
  from-scratch two-sample Kolmogorov–Smirnov test
  (:func:`ks_statistic` / :func:`ks_p_value`) and a Population Stability
  Index over reference-quantile bins (:func:`population_stability_index`);
* the guardrail pass rate and the citation-coverage rate of accepted
  answers, compared with a two-proportion z-test plus an absolute-delta
  floor (rate changes too small to matter never fire).

**Canary probes** replay a deterministic suite of questions with ground
truth sampled from :mod:`repro.corpus.queries` through the live engine —
cache-bypassed, so they measure the pipeline and not the cache — and
record recall@k / MRR / groundedness / guardrail-rate gauges into the
metrics registry.  The first run freezes the baseline; later runs alert on
relative degradation beyond per-metric tolerances.  With
``record_work=True`` each probe is additionally served with profiling
enabled and its deterministic work counts recorded (per probe and in
aggregate), so *work drift* — a kernel suddenly scanning more postings, an
index refresh doubling segments touched — pages through the same alert
surface as quality drift.

Both mechanisms emit :class:`QualityAlert` values which
:func:`repro.service.alerting.evaluate_quality_alerts` adapts into the
service alert shape, so quality alerts ride the same SLO/alert surface as
burn rates (``metrics`` CLI gating, the ops ``slo`` route, CI).

Everything is pure python and deterministic: no scipy, no wall clock — the
canary schedule runs off the deployment's simulated clock.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "CanaryProbe",
    "CanaryReport",
    "CanaryRunner",
    "CanarySuite",
    "CanaryThresholds",
    "DriftVerdict",
    "QualityAlert",
    "QualityMonitor",
    "RateDriftDetector",
    "ScoreDriftDetector",
    "format_canary_report",
    "ks_p_value",
    "ks_statistic",
    "population_stability_index",
    "two_proportion_z",
]

#: Alert severities (same strings as :mod:`repro.service.alerting`).
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"


# -- two-sample statistics (pure python, no scipy) ---------------------------


def ks_statistic(sample_a: list[float], sample_b: list[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic D = sup |F_a(x) - F_b(x)|.

    The supremum of the absolute difference between the two empirical
    CDFs, computed with the standard merge sweep in O((n+m) log(n+m)).
    """
    if not sample_a or not sample_b:
        raise ValueError("both samples must be non-empty")
    a = sorted(sample_a)
    b = sorted(sample_b)
    n, m = len(a), len(b)
    i = j = 0
    d = 0.0
    # Consume every occurrence of each distinct value from both samples
    # before measuring the CDF gap: measuring mid-tie would report a
    # spurious gap of 1/n for identical samples.
    while i < n and j < m:
        value = a[i] if a[i] <= b[j] else b[j]
        while i < n and a[i] == value:
            i += 1
        while j < m and b[j] == value:
            j += 1
        d = max(d, abs(i / n - j / m))
    # Once one sample is exhausted the gap only shrinks as the other
    # side's CDF climbs to 1, so the sweep has already seen the supremum.
    return d


def ks_p_value(d: float, n: int, m: int, terms: int = 100) -> float:
    """Asymptotic p-value of a two-sample KS statistic *d*.

    Uses the Kolmogorov distribution tail with the Stephens small-sample
    correction: with ``en = sqrt(n·m/(n+m))`` and
    ``λ = (en + 0.12 + 0.11/en)·d``,

        Q_KS(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)

    truncated at *terms* (the series converges extremely fast for λ of
    practical size).  Clamped to [0, 1].
    """
    if n <= 0 or m <= 0:
        raise ValueError("sample sizes must be positive")
    if d <= 0.0:
        return 1.0
    en = math.sqrt(n * m / (n + m))
    lam = (en + 0.12 + 0.11 / en) * d
    total = 0.0
    for k in range(1, terms + 1):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


def population_stability_index(
    reference: list[float], current: list[float], bins: int = 10, epsilon: float = 1e-4
) -> float:
    """PSI of *current* against *reference* over reference-quantile bins.

    Bin edges are the quantiles of the reference sample, so each bin holds
    ~1/bins of the reference mass; empty proportions are smoothed with
    *epsilon* to keep the logarithm finite.  Rule of thumb: < 0.1 stable,
    0.1–0.25 moderate shift, > 0.25 major shift.
    """
    if not reference or not current:
        raise ValueError("both samples must be non-empty")
    if bins < 2:
        raise ValueError("bins must be at least 2")
    ordered = sorted(reference)
    edges = []
    for k in range(1, bins):
        # Nearest-rank quantile of the reference sample.
        position = min(len(ordered) - 1, max(0, round(k * len(ordered) / bins) - 1))
        edges.append(ordered[position])

    def proportions(sample: list[float]) -> list[float]:
        counts = [0] * bins
        for value in sample:
            bucket = 0
            while bucket < len(edges) and value > edges[bucket]:
                bucket += 1
            counts[bucket] += 1
        return [count / len(sample) for count in counts]

    psi = 0.0
    for ref_p, cur_p in zip(proportions(list(reference)), proportions(list(current))):
        ref_p = max(ref_p, epsilon)
        cur_p = max(cur_p, epsilon)
        psi += (cur_p - ref_p) * math.log(cur_p / ref_p)
    return psi


def two_proportion_z(
    successes_a: int, total_a: int, successes_b: int, total_b: int
) -> float:
    """z-statistic of a two-proportion test (pooled standard error)."""
    if total_a <= 0 or total_b <= 0:
        raise ValueError("sample sizes must be positive")
    p_a = successes_a / total_a
    p_b = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    variance = pooled * (1.0 - pooled) * (1.0 / total_a + 1.0 / total_b)
    if variance <= 0.0:
        return 0.0
    return (p_a - p_b) / math.sqrt(variance)


# -- streaming detectors -----------------------------------------------------


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of one drift check.

    Attributes:
        signal: the watched signal (``fused_score``, ``guardrail_pass``,
            ``citation_coverage``, ...).
        drifted: True when the detector fired.
        statistic: the primary test statistic (KS D, or the proportion
            delta for rate detectors).
        p_value: the KS p-value (None for rate detectors).
        psi: the PSI (None for rate detectors).
        reference_n / current_n: sample sizes compared.
        reason: human-readable description of the verdict.
    """

    signal: str
    drifted: bool
    statistic: float = 0.0
    p_value: float | None = None
    psi: float | None = None
    reference_n: int = 0
    current_n: int = 0
    reason: str = ""


class ScoreDriftDetector:
    """KS + PSI drift detection of one score distribution.

    The first *reference_size* observations freeze the reference window;
    subsequent observations stream through a rolling window of
    *window_size*.  :meth:`check` fires only when **both** tests agree —
    the KS p-value drops below *alpha* **and** the PSI exceeds
    *psi_threshold* — which keeps single-statistic noise from paging
    anyone.  Until both windows are full the detector reports
    ``warming_up`` and never fires.
    """

    def __init__(
        self,
        signal: str,
        reference_size: int = 200,
        window_size: int = 100,
        alpha: float = 0.01,
        psi_threshold: float = 0.25,
    ) -> None:
        if reference_size < 2 or window_size < 2:
            raise ValueError("windows need at least 2 samples")
        self.signal = signal
        self._reference_size = reference_size
        self._alpha = alpha
        self._psi_threshold = psi_threshold
        self._reference: list[float] = []
        self._window: deque[float] = deque(maxlen=window_size)

    @property
    def reference_full(self) -> bool:
        return len(self._reference) >= self._reference_size

    def observe(self, value: float) -> None:
        """Feed one observation."""
        if not self.reference_full:
            self._reference.append(float(value))
            return
        self._window.append(float(value))

    def check(self) -> DriftVerdict:
        """Compare the rolling window against the frozen reference."""
        window = list(self._window)
        if not self.reference_full or len(window) < self._window.maxlen:
            return DriftVerdict(
                signal=self.signal,
                drifted=False,
                reference_n=len(self._reference),
                current_n=len(window),
                reason="warming_up",
            )
        d = ks_statistic(self._reference, window)
        p = ks_p_value(d, len(self._reference), len(window))
        psi = population_stability_index(self._reference, window)
        drifted = p < self._alpha and psi > self._psi_threshold
        reason = (
            f"{self.signal}: KS D={d:.3f} (p={p:.4f}, alpha={self._alpha:g}), "
            f"PSI={psi:.3f} (threshold {self._psi_threshold:g})"
        )
        return DriftVerdict(
            signal=self.signal,
            drifted=drifted,
            statistic=d,
            p_value=p,
            psi=psi,
            reference_n=len(self._reference),
            current_n=len(window),
            reason=reason,
        )


class RateDriftDetector:
    """Drift detection of a boolean rate (guardrail pass, citation coverage).

    Fires when the rolling-window rate moves against the frozen reference
    by more than *min_delta* (absolute, in the watched direction) **and**
    the two-proportion z-statistic exceeds *z_threshold* — small samples
    with large swings and large samples with negligible swings both stay
    quiet.  ``direction=-1`` watches for drops (pass rates), ``+1`` for
    rises, ``0`` for any movement.
    """

    def __init__(
        self,
        signal: str,
        reference_size: int = 200,
        window_size: int = 100,
        min_delta: float = 0.10,
        z_threshold: float = 3.0,
        direction: int = -1,
    ) -> None:
        if reference_size < 2 or window_size < 2:
            raise ValueError("windows need at least 2 samples")
        self.signal = signal
        self._reference_size = reference_size
        self._min_delta = min_delta
        self._z_threshold = z_threshold
        self._direction = direction
        self._reference: list[bool] = []
        self._window: deque[bool] = deque(maxlen=window_size)

    @property
    def reference_full(self) -> bool:
        return len(self._reference) >= self._reference_size

    def observe(self, good: bool) -> None:
        """Feed one boolean observation."""
        if not self.reference_full:
            self._reference.append(bool(good))
            return
        self._window.append(bool(good))

    def check(self) -> DriftVerdict:
        """Compare the rolling rate against the frozen reference rate."""
        window = list(self._window)
        if not self.reference_full or len(window) < self._window.maxlen:
            return DriftVerdict(
                signal=self.signal,
                drifted=False,
                reference_n=len(self._reference),
                current_n=len(window),
                reason="warming_up",
            )
        ref_hits = sum(self._reference)
        cur_hits = sum(window)
        ref_rate = ref_hits / len(self._reference)
        cur_rate = cur_hits / len(window)
        delta = cur_rate - ref_rate
        z = two_proportion_z(cur_hits, len(window), ref_hits, len(self._reference))
        if self._direction < 0:
            moved = delta <= -self._min_delta
        elif self._direction > 0:
            moved = delta >= self._min_delta
        else:
            moved = abs(delta) >= self._min_delta
        drifted = moved and abs(z) >= self._z_threshold
        reason = (
            f"{self.signal}: rate {cur_rate:.1%} vs reference {ref_rate:.1%} "
            f"(delta {delta:+.1%}, z={z:.2f}, threshold |z|>={self._z_threshold:g} "
            f"and |delta|>={self._min_delta:.0%})"
        )
        return DriftVerdict(
            signal=self.signal,
            drifted=drifted,
            statistic=delta,
            reference_n=len(self._reference),
            current_n=len(window),
            reason=reason,
        )


# -- quality alerts and the monitor -----------------------------------------


@dataclass(frozen=True)
class QualityAlert:
    """One fired quality alert (drift detector or canary degradation)."""

    name: str
    severity: str
    message: str


class QualityMonitor:
    """Streams answer-quality signals and raises drift alerts.

    Feed every served answer through :meth:`observe_answer`; the monitor
    maintains three detectors — the top-hit fused-score distribution, the
    guardrail pass rate, and the citation-coverage rate of accepted
    answers — plus gauges in *registry* for the dashboard.  Canary runs
    hand their alerts over via :meth:`record_canary`, so :meth:`alerts`
    is the one surface the service layer has to poll.

    Cached answers are skipped: they replay an answer computed earlier, so
    they carry no fresh signal about the pipeline's current quality.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        reference_size: int = 200,
        window_size: int = 100,
        score_alpha: float = 0.01,
        score_psi_threshold: float = 0.25,
        rate_min_delta: float = 0.10,
        rate_z_threshold: float = 3.0,
    ) -> None:
        self.score = ScoreDriftDetector(
            "fused_score",
            reference_size=reference_size,
            window_size=window_size,
            alpha=score_alpha,
            psi_threshold=score_psi_threshold,
        )
        self.guardrail = RateDriftDetector(
            "guardrail_pass",
            reference_size=reference_size,
            window_size=window_size,
            min_delta=rate_min_delta,
            z_threshold=rate_z_threshold,
            direction=-1,
        )
        self.citations = RateDriftDetector(
            "citation_coverage",
            reference_size=reference_size,
            window_size=window_size,
            min_delta=rate_min_delta,
            z_threshold=rate_z_threshold,
            direction=-1,
        )
        registry = registry or NULL_REGISTRY
        self._g_psi = registry.gauge(
            "uniask_quality_psi",
            "Population Stability Index of watched quality signals.",
            ("signal",),
        )
        self._g_ks_p = registry.gauge(
            "uniask_quality_ks_p_value",
            "Two-sample KS p-value of watched quality signals.",
            ("signal",),
        )
        self._g_rate = registry.gauge(
            "uniask_quality_rate",
            "Rolling-window rate of watched boolean quality signals.",
            ("signal",),
        )
        self._m_observed = registry.counter(
            "uniask_quality_observations_total",
            "Answers observed by the quality monitor, by signal.",
            ("signal",),
        )
        self._canary_alerts: tuple[QualityAlert, ...] = ()

    def observe_answer(self, answer) -> None:
        """Feed one served :class:`~repro.core.answer.UniAskAnswer`."""
        if answer.cache_hit:
            return
        if answer.documents:
            self.score.observe(answer.documents[0].score)
            self._m_observed.labels("fused_score").inc()
        outcome = answer.outcome
        generated = outcome == "answered" or outcome.startswith("guardrail_")
        if generated:
            self.guardrail.observe(outcome == "answered")
            self._m_observed.labels("guardrail_pass").inc()
        if outcome == "answered":
            self.citations.observe(len(answer.citations) > 0)
            self._m_observed.labels("citation_coverage").inc()

    def record_canary(self, alerts: list[QualityAlert]) -> None:
        """Store the latest canary run's alerts for :meth:`alerts`."""
        self._canary_alerts = tuple(alerts)

    def check(self) -> list[DriftVerdict]:
        """Run every detector; updates the dashboard gauges."""
        verdicts = []
        for detector in (self.score, self.guardrail, self.citations):
            verdict = detector.check()
            verdicts.append(verdict)
            if verdict.psi is not None:
                self._g_psi.labels(verdict.signal).set(verdict.psi)
            if verdict.p_value is not None:
                self._g_ks_p.labels(verdict.signal).set(verdict.p_value)
            if isinstance(detector, RateDriftDetector) and verdict.reason != "warming_up":
                self._g_rate.labels(verdict.signal).set(
                    sum(detector._window) / len(detector._window)
                )
        return verdicts

    def alerts(self) -> list[QualityAlert]:
        """Fired drift alerts plus the latest canary run's alerts."""
        fired = [
            QualityAlert(
                name=f"drift_{verdict.signal}",
                severity=SEVERITY_CRITICAL,
                message=verdict.reason,
            )
            for verdict in self.check()
            if verdict.drifted
        ]
        fired.extend(self._canary_alerts)
        return fired


# -- canary probes -----------------------------------------------------------


@dataclass(frozen=True)
class CanaryProbe:
    """One canary question with its ground truth.

    Attributes:
        probe_id: unique identifier within the suite.
        question: the probed question.
        relevant_docs: ground-truth document ids.
        kind: the :mod:`repro.corpus.queries` kind the probe was drawn from.
        route: the agent route the probe exercises ("" for plain probes —
            the defaults keep pre-agents suites byte-identical).
        setup_question: a first turn played into the same session before
            *question* (follow-up dialogue probes only).
    """

    probe_id: str
    question: str
    relevant_docs: frozenset[str]
    kind: str
    route: str = ""
    setup_question: str = ""


@dataclass(frozen=True)
class CanarySuite:
    """A deterministic suite of canary probes."""

    probes: tuple[CanaryProbe, ...]

    def __len__(self) -> int:
        return len(self.probes)

    @classmethod
    def from_kb(
        cls, kb, size: int = 24, seed: int = 1789, include_route_probes: bool = False
    ) -> "CanarySuite":
        """Sample *size* probes with ground truth from the knowledge base.

        Three quarters are human-style questions, one quarter error-code
        lookups — the two query families with exact document-level ground
        truth.  The sample is fully determined by *seed*, so every canary
        run replays the identical suite.

        With ``include_route_probes`` the suite appends one probe per
        non-trivial agent route — a multi-hop comparison, a structured
        error-code lookup, and a two-turn follow-up dialogue — so an
        agents-enabled deployment's canary also watches the orchestrated
        paths for silent regressions.
        """
        from repro.corpus.queries import (
            HumanDatasetConfig,
            generate_error_code_queries,
            generate_follow_up_dialogues,
            generate_human_dataset,
            generate_multi_hop_queries,
        )

        if size < 4:
            raise ValueError("a canary suite needs at least 4 probes")
        human_n = size - size // 4
        human = generate_human_dataset(
            kb, HumanDatasetConfig(num_questions=human_n, seed=seed)
        )
        codes = generate_error_code_queries(kb, count=size - human_n, seed=seed + 1)
        probes = [
            CanaryProbe(
                probe_id=f"canary-{index:03d}",
                question=query.text,
                relevant_docs=query.relevant_docs,
                kind=query.kind,
            )
            for index, query in enumerate(list(human) + list(codes))
            if query.relevant_docs
        ]
        if include_route_probes:
            from repro.agents.routes import (
                ROUTE_FOLLOW_UP,
                ROUTE_MULTI_HOP,
                ROUTE_STRUCTURED,
            )

            multi_hop = generate_multi_hop_queries(kb, count=1, seed=seed + 2)[0]
            probes.append(
                CanaryProbe(
                    probe_id="canary-route-multi-hop",
                    question=multi_hop.text,
                    relevant_docs=multi_hop.relevant_docs,
                    kind=multi_hop.kind,
                    route=ROUTE_MULTI_HOP,
                )
            )
            structured = generate_error_code_queries(kb, count=1, seed=seed + 3)[0]
            probes.append(
                CanaryProbe(
                    probe_id="canary-route-structured",
                    question=structured.text,
                    relevant_docs=structured.relevant_docs,
                    kind=structured.kind,
                    route=ROUTE_STRUCTURED,
                )
            )
            dialogue = generate_follow_up_dialogues(kb, count=1, seed=seed + 4)[0]
            probes.append(
                CanaryProbe(
                    probe_id="canary-route-follow-up",
                    question=dialogue.follow_up.text,
                    relevant_docs=dialogue.follow_up.relevant_docs,
                    kind=dialogue.follow_up.kind,
                    route=ROUTE_FOLLOW_UP,
                    setup_question=dialogue.setup.text,
                )
            )
        if not probes:
            raise ValueError("the sampled suite has no probes with ground truth")
        return cls(probes=tuple(probes))


@dataclass(frozen=True)
class CanaryReport:
    """Aggregated outcome of one canary run.

    Attributes:
        probes_run: probes replayed.
        recall_at_4 / mrr / hit_at_4: document-granularity retrieval
            quality against the probes' ground truth.
        answered_fraction: fraction of probes that produced an accepted
            answer.
        guardrail_fire_rate: fraction of generated answers a guardrail
            invalidated.
        citation_coverage: fraction of accepted answers with ≥ 1 resolved
            citation.
        groundedness: mean groundedness score of accepted answers (0.0
            when no judge was configured).
        partial_results: probes served by a degraded cluster.
        started_at: simulated clock reading when the run started.
        work: aggregate deterministic work counts (``{kind: units}``)
            booked by the probes, when the runner records work — the
            pipeline is deterministic, so any movement against the
            baseline is real drift (index growth, config change, a
            regressed kernel), never noise.  None when not recorded.
    """

    probes_run: int
    recall_at_4: float
    mrr: float
    hit_at_4: float
    answered_fraction: float
    guardrail_fire_rate: float
    citation_coverage: float
    groundedness: float
    partial_results: int
    started_at: float
    work: dict[str, int] | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation (CI artifacts)."""
        payload = {
            "probes_run": self.probes_run,
            "recall_at_4": self.recall_at_4,
            "mrr": self.mrr,
            "hit_at_4": self.hit_at_4,
            "answered_fraction": self.answered_fraction,
            "guardrail_fire_rate": self.guardrail_fire_rate,
            "citation_coverage": self.citation_coverage,
            "groundedness": self.groundedness,
            "partial_results": self.partial_results,
            "started_at": self.started_at,
        }
        if self.work is not None:
            payload["work"] = dict(self.work)
        return payload


@dataclass(frozen=True)
class CanaryThresholds:
    """Per-metric degradation tolerances of the canary alerting.

    Each threshold is the maximum tolerated *absolute drop* (or rise, for
    the guardrail fire rate) against the frozen baseline run.
    """

    max_recall_drop: float = 0.15
    max_mrr_drop: float = 0.15
    max_guardrail_rise: float = 0.20
    max_citation_drop: float = 0.25
    max_groundedness_drop: float = 0.25
    #: Maximum tolerated *relative* movement (either direction) of a work
    #: counter against the baseline run.  The pipeline is deterministic, so
    #: the default of 0.0 flags any change at all.
    max_work_drift: float = 0.0


class CanaryRunner:
    """Replays the canary suite through the live engine on a schedule.

    Probes run cache-bypassed (:data:`~repro.api.types.CACHE_BYPASS`), so
    they always measure the current pipeline — index, retrieval, LLM and
    guardrails — never a cached answer.  The first run freezes the
    baseline; each later run compares against it with *thresholds* and
    emits :class:`QualityAlert` values, optionally handing them to a
    :class:`QualityMonitor` so they surface on the service alert route.

    Args:
        engine: the live :class:`~repro.core.engine.UniAskEngine`.
        suite: the deterministic probe suite.
        judge: optional groundedness judge for accepted answers.
        registry: metrics registry for the canary gauges.
        interval: simulated seconds between scheduled runs
            (:meth:`maybe_run`).
        thresholds: degradation tolerances against the baseline.
        baseline: explicit baseline report (otherwise the first run).
        monitor: quality monitor receiving each run's alerts.
        record_work: serve each probe with profiling enabled and record
            its deterministic work counts — per probe in
            :attr:`last_work`, aggregated on the report — so work drift
            (a silent capacity regression) alerts like quality drift.
    """

    def __init__(
        self,
        engine,
        suite: CanarySuite,
        judge=None,
        registry: MetricsRegistry | None = None,
        interval: float = 300.0,
        thresholds: CanaryThresholds | None = None,
        baseline: CanaryReport | None = None,
        monitor: QualityMonitor | None = None,
        record_work: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._engine = engine
        self._suite = suite
        self._judge = judge
        self._interval = interval
        self.thresholds = thresholds or CanaryThresholds()
        self.baseline = baseline
        self._monitor = monitor
        self._record_work = record_work
        self.last_report: CanaryReport | None = None
        self.last_alerts: tuple[QualityAlert, ...] = ()
        #: Per-probe work counts of the latest run (``{probe_id: {kind: units}}``).
        self.last_work: dict[str, dict[str, int]] = {}
        self._next_due = 0.0
        registry = registry or NULL_REGISTRY
        self._m_runs = registry.counter(
            "uniask_canary_runs_total", "Canary suite runs completed."
        )
        self._g_metric = registry.gauge(
            "uniask_canary_metric",
            "Latest canary run's quality metrics, by metric name.",
            ("metric",),
        )
        self._g_alerts = registry.gauge(
            "uniask_canary_alerts", "Quality alerts raised by the latest canary run."
        )
        self._g_work = registry.gauge(
            "uniask_canary_work_units",
            "Aggregate deterministic work units of the latest canary run, by kind.",
            ("kind",),
        )

    def due(self, now: float) -> bool:
        """True when a scheduled run is due at simulated time *now*."""
        return now >= self._next_due

    def maybe_run(self, now: float) -> CanaryReport | None:
        """Run the suite if the schedule says so (None when not due)."""
        if not self.due(now):
            return None
        self._next_due = now + self._interval
        return self.run_once(now)

    def run_once(self, now: float = 0.0) -> CanaryReport:
        """Replay every probe and aggregate one :class:`CanaryReport`."""
        from repro.api.types import CACHE_BYPASS, AskOptions, AskRequest
        from repro.search.results import dedupe_by_document

        recalls: list[float] = []
        mrrs: list[float] = []
        hits: list[float] = []
        groundedness_scores: list[float] = []
        answered = 0
        generated = 0
        fired = 0
        cited = 0
        partial = 0
        work_totals: dict[str, int] = {}
        work_per_probe: dict[str, dict[str, int]] = {}
        from repro.eval.metrics import hit_rate_at, recall_at, reciprocal_rank

        for probe in self._suite.probes:
            session_id = ""
            if probe.setup_question:
                # Dialogue probes play their setup turn into a dedicated
                # session first, so the probed follow-up has a turn to
                # resolve against (a no-op on agents-off deployments).
                session_id = f"canary-session-{probe.probe_id}"
                self._engine.answer(
                    AskRequest(
                        probe.setup_question,
                        AskOptions(
                            cache=CACHE_BYPASS,
                            request_id=f"{probe.probe_id}-setup",
                            session_id=session_id,
                        ),
                    )
                )
            response = self._engine.answer(
                AskRequest(
                    probe.question,
                    AskOptions(
                        cache=CACHE_BYPASS,
                        request_id=probe.probe_id,
                        session_id=session_id,
                        profile=self._record_work,
                    ),
                )
            )
            answer = response.answer
            if self._record_work and response.work is not None:
                work_per_probe[probe.probe_id] = dict(response.work)
                for kind, units in response.work.items():
                    work_totals[kind] = work_totals.get(kind, 0) + units
            ranked = [
                chunk.doc_id for chunk in dedupe_by_document(list(answer.documents))
            ]
            recalls.append(recall_at(ranked, probe.relevant_docs, 4))
            mrrs.append(reciprocal_rank(ranked, probe.relevant_docs))
            hits.append(hit_rate_at(ranked, probe.relevant_docs, 4))
            if answer.partial_results:
                partial += 1
            outcome = answer.outcome
            if outcome == "answered" or outcome.startswith("guardrail_"):
                generated += 1
                if outcome != "answered":
                    fired += 1
            if outcome == "answered":
                answered += 1
                if answer.citations:
                    cited += 1
                if self._judge is not None:
                    verdict = self._judge.judge(
                        answer.answer_text, list(answer.context)
                    )
                    groundedness_scores.append(verdict.score)

        count = len(self._suite.probes)
        report = CanaryReport(
            probes_run=count,
            recall_at_4=sum(recalls) / count,
            mrr=sum(mrrs) / count,
            hit_at_4=sum(hits) / count,
            answered_fraction=answered / count,
            guardrail_fire_rate=(fired / generated) if generated else 0.0,
            citation_coverage=(cited / answered) if answered else 0.0,
            groundedness=(
                sum(groundedness_scores) / len(groundedness_scores)
                if groundedness_scores
                else 0.0
            ),
            partial_results=partial,
            started_at=now,
            work=dict(sorted(work_totals.items())) if self._record_work else None,
        )
        self.last_report = report
        self.last_work = work_per_probe
        self._m_runs.inc()
        for metric, value in report.to_dict().items():
            if metric in ("started_at", "work"):
                continue
            self._g_metric.labels(metric).set(float(value))
        if report.work:
            for kind, units in report.work.items():
                self._g_work.labels(kind).set(float(units))
        if self.baseline is None:
            self.baseline = report
        alerts = self.evaluate(report)
        self.last_alerts = tuple(alerts)
        self._g_alerts.set(float(len(alerts)))
        if self._monitor is not None:
            self._monitor.record_canary(alerts)
        return report

    def evaluate(self, report: CanaryReport) -> list[QualityAlert]:
        """Degradation alerts of *report* against the frozen baseline."""
        baseline = self.baseline
        if baseline is None or baseline is report:
            return []
        t = self.thresholds
        alerts: list[QualityAlert] = []

        def drop(name: str, current: float, reference: float, tolerance: float) -> None:
            if reference - current > tolerance:
                alerts.append(
                    QualityAlert(
                        name=f"canary_{name}",
                        severity=SEVERITY_CRITICAL,
                        message=(
                            f"canary {name} dropped to {current:.3f} from baseline "
                            f"{reference:.3f} (tolerance {tolerance:g})"
                        ),
                    )
                )

        drop("recall_at_4", report.recall_at_4, baseline.recall_at_4, t.max_recall_drop)
        drop("mrr", report.mrr, baseline.mrr, t.max_mrr_drop)
        drop(
            "citation_coverage",
            report.citation_coverage,
            baseline.citation_coverage,
            t.max_citation_drop,
        )
        if self._judge is not None:
            drop(
                "groundedness",
                report.groundedness,
                baseline.groundedness,
                t.max_groundedness_drop,
            )
        if report.work is not None and baseline.work is not None:
            for kind in sorted(set(baseline.work) | set(report.work)):
                reference = baseline.work.get(kind, 0)
                current = report.work.get(kind, 0)
                if current == reference:
                    continue
                if abs(current - reference) / max(abs(reference), 1) > t.max_work_drift:
                    alerts.append(
                        QualityAlert(
                            name=f"canary_work_{kind}",
                            severity=SEVERITY_WARNING,
                            message=(
                                f"canary work {kind} moved to {current} from "
                                f"baseline {reference} (tolerance "
                                f"{t.max_work_drift:.0%} relative)"
                            ),
                        )
                    )
        if report.guardrail_fire_rate - baseline.guardrail_fire_rate > t.max_guardrail_rise:
            alerts.append(
                QualityAlert(
                    name="canary_guardrail_fire_rate",
                    severity=SEVERITY_CRITICAL,
                    message=(
                        f"canary guardrail fire rate rose to "
                        f"{report.guardrail_fire_rate:.1%} from baseline "
                        f"{baseline.guardrail_fire_rate:.1%} "
                        f"(tolerance {t.max_guardrail_rise:.0%})"
                    ),
                )
            )
        return alerts


def format_canary_report(report: CanaryReport, alerts: list[QualityAlert]) -> str:
    """Render one canary run as the ``canary`` CLI output."""
    lines = [
        f"canary run @t={report.started_at:g}s: {report.probes_run} probes",
        f"  recall@4           : {report.recall_at_4:.3f}",
        f"  MRR                : {report.mrr:.3f}",
        f"  hit@4              : {report.hit_at_4:.3f}",
        f"  answered           : {report.answered_fraction:.1%}",
        f"  guardrail fire rate: {report.guardrail_fire_rate:.1%}",
        f"  citation coverage  : {report.citation_coverage:.1%}",
        f"  groundedness       : {report.groundedness:.3f}",
        f"  partial results    : {report.partial_results}",
    ]
    if alerts:
        for alert in alerts:
            lines.append(f"  QUALITY ALERT [{alert.severity}] {alert.name}: {alert.message}")
    else:
        lines.append("  quality: no degradation against baseline")
    return "\n".join(lines)
