"""Concept lexicon: the semantic backbone of the synthetic embedder.

A real embedding model (text-embedding-ada-002 in the paper) maps different
surface forms of the same meaning — a formal term, its banking jargon
equivalent, an abbreviation — to nearby vectors.  Since the proprietary model
is not available offline, we reproduce that *property* explicitly: a
:class:`ConceptLexicon` groups surface forms into concepts, and the embedder
(:mod:`repro.embeddings.model`) assigns every form of a concept the same base
direction plus a small form-specific perturbation.

The lexicon is a plain data structure; the Italian banking instance used by
the benchmarks is built in :mod:`repro.corpus.vocabulary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.analyzer import ItalianAnalyzer
from repro.text.stemmer import stem


@dataclass(frozen=True)
class Concept:
    """One unit of meaning with its alternative surface forms.

    Attributes:
        concept_id: stable unique identifier (e.g. ``"bonifico"``).
        canonical: the preferred surface form, used in document prose.
        synonyms: alternative forms (jargon, abbreviations, paraphrases)
            that user questions may use instead of the canonical form.
        domain: topical domain the concept belongs to.
    """

    concept_id: str
    canonical: str
    synonyms: tuple[str, ...] = ()
    domain: str = ""

    @property
    def forms(self) -> tuple[str, ...]:
        """All surface forms, canonical first."""
        return (self.canonical, *self.synonyms)


class ConceptLexicon:
    """Mapping from surface-form stems to concepts.

    Lookup happens at the *stem* level so that inflected variants
    (``bonifico`` / ``bonifici``) hit the same concept, exactly as an
    embedding model generalizes across inflection.

    Multi-word forms are registered under the stem of each content word with
    fractional weight, which approximates the distributed representation a
    neural encoder gives to compounds.
    """

    def __init__(
        self,
        concepts: list[Concept] | None = None,
        analyzer: ItalianAnalyzer | None = None,
    ) -> None:
        self._concepts: dict[str, Concept] = {}
        self._stem_to_concepts: dict[str, list[tuple[str, float]]] = {}
        # Surface forms are analyzed without stemming (the stem is applied
        # separately so inflected lookups hit the same key); pass a
        # language pack's analyzer to localize the lexicon.
        if analyzer is None:
            analyzer = ItalianAnalyzer(remove_stopwords=True, apply_stemming=False)
        self._analyzer = analyzer
        self._stem = analyzer.stem_fn if analyzer.stem_fn is not None else stem
        for concept in concepts or []:
            self.add(concept)

    def add(self, concept: Concept) -> None:
        """Register *concept* and index all its surface forms."""
        if concept.concept_id in self._concepts:
            raise ValueError(f"duplicate concept id: {concept.concept_id}")
        self._concepts[concept.concept_id] = concept
        for form in concept.forms:
            words = self._analyzer.analyze(form.lower())
            if not words:
                continue
            weight = 1.0 / len(words)
            for word in words:
                key = self._stem(word)
                entries = self._stem_to_concepts.setdefault(key, [])
                if all(existing_id != concept.concept_id for existing_id, _ in entries):
                    entries.append((concept.concept_id, weight))

    def get(self, concept_id: str) -> Concept:
        """Return the concept registered under *concept_id*."""
        return self._concepts[concept_id]

    def __contains__(self, concept_id: str) -> bool:
        return concept_id in self._concepts

    def __len__(self) -> int:
        return len(self._concepts)

    @property
    def concepts(self) -> list[Concept]:
        """All registered concepts, in insertion order."""
        return list(self._concepts.values())

    def concepts_for_stem(self, stemmed_token: str) -> list[tuple[str, float]]:
        """Concepts (with weights) whose surface forms contain this stem."""
        return self._stem_to_concepts.get(stemmed_token, [])

    def concepts_in_text(self, text: str) -> dict[str, float]:
        """Aggregate concept weights present in *text*.

        Returns a concept_id → accumulated weight map; this is the "meaning
        fingerprint" used by the semantic reranker and the simulated LLM.
        """
        weights: dict[str, float] = {}
        for word in self._analyzer.analyze(text.lower()):
            for concept_id, weight in self.concepts_for_stem(self._stem(word)):
                weights[concept_id] = weights.get(concept_id, 0.0) + weight
        return weights


@dataclass(frozen=True)
class ConceptOverlap:
    """Shared-meaning summary between two texts."""

    shared: dict[str, float] = field(default_factory=dict)
    score: float = 0.0


def concept_overlap(lexicon: ConceptLexicon, a: str, b: str) -> ConceptOverlap:
    """Cosine-style overlap of the concept fingerprints of *a* and *b*."""
    weights_a = lexicon.concepts_in_text(a)
    weights_b = lexicon.concepts_in_text(b)
    if not weights_a or not weights_b:
        return ConceptOverlap()
    shared = {cid: min(weights_a[cid], weights_b[cid]) for cid in weights_a.keys() & weights_b.keys()}
    norm_a = sum(w * w for w in weights_a.values()) ** 0.5
    norm_b = sum(w * w for w in weights_b.values()) ** 0.5
    dot = sum(weights_a[cid] * weights_b[cid] for cid in shared)
    score = dot / (norm_a * norm_b) if norm_a and norm_b else 0.0
    return ConceptOverlap(shared=shared, score=score)
