"""Embedding substrate: concept lexicon, deterministic embedders, adapters."""

from repro.embeddings.adapter import (
    AdaptedEmbedder,
    LinearQueryAdapter,
    TrainingPair,
    pairs_from_labeled_queries,
    train_query_adapter,
)
from repro.embeddings.cache import CachingEmbedder
from repro.embeddings.concepts import Concept, ConceptLexicon, ConceptOverlap, concept_overlap
from repro.embeddings.model import EmbeddingModel, SyntheticAdaEmbedder, cosine_similarity

__all__ = [
    "AdaptedEmbedder",
    "LinearQueryAdapter",
    "TrainingPair",
    "pairs_from_labeled_queries",
    "train_query_adapter",
    "CachingEmbedder",
    "Concept",
    "ConceptLexicon",
    "ConceptOverlap",
    "concept_overlap",
    "EmbeddingModel",
    "SyntheticAdaEmbedder",
    "cosine_similarity",
]
