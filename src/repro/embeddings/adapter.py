"""Embedding adapters — the paper's future-work retrieval upgrade.

Section 11: "We will test further improvements for the retrieval module,
e.g., fine tuning the embedding model with internal data, or by using
embedding adapters."  An *adapter* is a small transformation applied to the
frozen base embeddings; the standard enterprise recipe (the base model is a
hosted API and cannot be fine-tuned) trains a **linear query adapter** on
(question, relevant-document) pairs harvested from evaluation datasets and
user feedback, and applies it at query time only — documents keep their
already-indexed vectors.

Training is closed-form ridge regression toward the identity:

    W* = argmin_W  Σ ||W q_i − d_i||²  +  λ ||W − I||²_F

so with no data (or huge λ) the adapter degrades gracefully to identity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.model import EmbeddingModel


@dataclass(frozen=True)
class TrainingPair:
    """One supervision pair: a query and the text it should retrieve."""

    query: str
    relevant_text: str


class LinearQueryAdapter:
    """A dim×dim linear map applied to query embeddings."""

    def __init__(self, matrix: np.ndarray) -> None:
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("adapter matrix must be square")
        self._matrix = matrix

    @property
    def dim(self) -> int:
        """Embedding dimensionality the adapter operates on."""
        return self._matrix.shape[0]

    @classmethod
    def identity(cls, dim: int) -> "LinearQueryAdapter":
        """The do-nothing adapter."""
        return cls(np.eye(dim))

    def adapt(self, vector: np.ndarray) -> np.ndarray:
        """Apply the adapter and re-normalize."""
        adapted = self._matrix @ np.asarray(vector, dtype=np.float64)
        norm = float(np.linalg.norm(adapted))
        if norm < 1e-12:
            return np.asarray(vector, dtype=np.float64)
        return adapted / norm

    def deviation_from_identity(self) -> float:
        """Frobenius distance from the identity (0 = untrained)."""
        return float(np.linalg.norm(self._matrix - np.eye(self.dim)))


def train_query_adapter(
    embedder: EmbeddingModel,
    pairs: list[TrainingPair],
    regularization: float = 1.0,
) -> LinearQueryAdapter:
    """Fit a :class:`LinearQueryAdapter` on supervision *pairs*.

    Args:
        embedder: the frozen base model (embeds both sides of each pair).
        pairs: (query, relevant text) supervision; in the deployment these
            come from the validation datasets and from the ground-truth
            links users contribute through the feedback form.
        regularization: λ ≥ 0; larger values stay closer to identity.

    Returns the identity adapter when *pairs* is empty.
    """
    if regularization < 0:
        raise ValueError("regularization must be non-negative")
    dim = embedder.dim
    if not pairs:
        return LinearQueryAdapter.identity(dim)

    queries = np.stack([embedder.embed(pair.query) for pair in pairs])
    targets = np.stack([embedder.embed(pair.relevant_text) for pair in pairs])

    # Solve (QᵀQ + λI) Wᵀ = QᵀD + λI  (ridge toward the identity).
    gram = queries.T @ queries + regularization * np.eye(dim)
    rhs = queries.T @ targets + regularization * np.eye(dim)
    matrix_t = np.linalg.solve(gram, rhs)
    return LinearQueryAdapter(matrix_t.T)


class AdaptedEmbedder:
    """An :class:`EmbeddingModel` view that adapts every embedding.

    Wraps a base model with a query adapter so that existing retrieval code
    (which calls ``embed`` on the query) picks the adapter up transparently.
    Use for *queries only* — documents must be indexed with the base model.
    """

    def __init__(self, base: EmbeddingModel, adapter: LinearQueryAdapter) -> None:
        if base.dim != adapter.dim:
            raise ValueError("adapter/base dimensionality mismatch")
        self._base = base
        self._adapter = adapter

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self._base.dim

    def embed(self, text: str) -> np.ndarray:
        """Embed *text* with the base model, then adapt."""
        return self._adapter.adapt(self._base.embed(text))

    def embed_batch(self, texts) -> np.ndarray:
        """Adapted batch embedding."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(text) for text in texts])


def pairs_from_labeled_queries(queries, kb) -> list[TrainingPair]:
    """Build supervision pairs from a labeled dataset over a synthetic KB.

    Each query pairs with the key sentence of its first ground-truth
    document — the text a retriever should consider closest.
    """
    pairs = []
    for query in queries:
        if not query.relevant_docs:
            continue
        doc_id = sorted(query.relevant_docs)[0]
        generated = kb.document(doc_id)
        pairs.append(TrainingPair(query=query.text, relevant_text=generated.key_sentence))
    return pairs
