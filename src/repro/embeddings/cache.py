"""Embedding cache.

Embedding calls are the expensive step of indexing (in the paper they are
remote Azure OpenAI calls billed per token).  The indexing service wraps its
model in a :class:`CachingEmbedder` so that re-ingesting an unchanged
document — which happens every 15-minute polling cycle — never re-embeds it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.embeddings.model import EmbeddingModel


class CachingEmbedder:
    """LRU cache wrapper around any :class:`EmbeddingModel`.

    Args:
        inner: the wrapped model.
        capacity: maximum number of distinct texts kept; least recently used
            entries are evicted first.
    """

    def __init__(self, inner: EmbeddingModel, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._inner = inner
        self._capacity = capacity
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def dim(self) -> int:
        """Embedding dimensionality of the wrapped model."""
        return self._inner.dim

    def embed(self, text: str) -> np.ndarray:
        """Embed *text*, serving repeated texts from the cache."""
        cached = self._cache.get(text)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(text)
            return cached
        self.misses += 1
        vector = self._inner.embed(text)
        self._cache[text] = vector
        if len(self._cache) > self._capacity:
            self._cache.popitem(last=False)
        return vector

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts through the cache."""
        if not texts:
            return np.zeros((0, self.dim))
        return np.stack([self.embed(text) for text in texts])

    @property
    def hit_rate(self) -> float:
        """Fraction of embed calls answered from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
