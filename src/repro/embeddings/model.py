"""Deterministic synthetic text embedder.

Stands in for Azure OpenAI's ``text-embedding-ada-002`` (Section 4 of the
paper), which cannot be called offline.  The substitution preserves the two
properties hybrid search depends on:

1. **Paraphrase proximity** — all surface forms of one concept share a base
   direction (drawn from the :class:`~repro.embeddings.concepts.ConceptLexicon`),
   so a question phrased with jargon or synonyms lands near the document
   phrased with canonical terms.
2. **Lexical sensitivity** — out-of-lexicon tokens get stable hashed random
   directions, so unrelated texts stay far apart and exact-term matches
   still help.

Everything is deterministic: a term's vector is derived from a BLAKE2 digest
of the term plus the model seed, never from global RNG state.
"""

from __future__ import annotations

import hashlib
from typing import Protocol, Sequence

import numpy as np

from repro.embeddings.concepts import ConceptLexicon
from repro.text.analyzer import ItalianAnalyzer
from repro.text.stemmer import stem


class EmbeddingModel(Protocol):
    """Anything that can embed text into fixed-width float vectors."""

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        ...

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm vector of length :attr:`dim`."""
        ...

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into a ``(len(texts), dim)`` matrix."""
        ...


def _seeded_vector(key: str, seed: int, dim: int) -> np.ndarray:
    """A stable Gaussian direction for *key*: same key, same vector, always."""
    digest = hashlib.blake2b(f"{seed}:{key}".encode("utf-8"), digest_size=8).digest()
    generator = np.random.default_rng(int.from_bytes(digest, "little"))
    return generator.standard_normal(dim)


class SyntheticAdaEmbedder:
    """Concept-aware deterministic embedder (the ada-002 stand-in).

    Args:
        lexicon: concept lexicon that defines which surface forms share
            meaning; ``None`` degrades to a purely lexical hashed embedder.
        dim: embedding width (ada-002 uses 1536; 256 keeps the benchmarks
            fast with no change in ranking behaviour).
        seed: model identity — two embedders with the same seed and lexicon
            produce identical vectors.
        analyzer: language pack analyzer (None → Italian), must match the
            lexicon's.
        form_noise: standard deviation of the per-surface-form perturbation
            added to the concept base direction.  Small values make synonyms
            nearly identical; large values make the model "more lexical".
        oov_weight: contribution weight of out-of-lexicon tokens.
    """

    def __init__(
        self,
        lexicon: ConceptLexicon | None = None,
        dim: int = 256,
        seed: int = 17,
        form_noise: float = 0.50,
        oov_weight: float = 0.80,
        analyzer: ItalianAnalyzer | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self._lexicon = lexicon
        self._dim = dim
        self._seed = seed
        self._form_noise = form_noise
        self._oov_weight = oov_weight
        if analyzer is None:
            analyzer = ItalianAnalyzer(remove_stopwords=True, apply_stemming=False)
        self._analyzer = analyzer
        self._stem = analyzer.stem_fn if analyzer.stem_fn is not None else stem
        self._term_cache: dict[str, np.ndarray] = {}
        self.calls = 0  # embed() invocations, for cache-effectiveness tests

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self._dim

    def embed(self, text: str) -> np.ndarray:
        """Embed *text* into a unit-norm float64 vector.

        The vector is the weighted sum of per-token vectors; empty or
        all-stop-word input maps to a stable "null direction" so that
        downstream cosine math never divides by zero.
        """
        self.calls += 1
        vector = np.zeros(self._dim)
        for token in self._analyzer.analyze(text.lower()):
            vector += self._token_vector(token)
        norm = float(np.linalg.norm(vector))
        if norm < 1e-12:
            vector = _seeded_vector("<empty>", self._seed, self._dim)
            norm = float(np.linalg.norm(vector))
        return vector / norm

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed a sequence of texts into a ``(n, dim)`` matrix."""
        if not texts:
            return np.zeros((0, self._dim))
        return np.stack([self.embed(text) for text in texts])

    def _token_vector(self, token: str) -> np.ndarray:
        cached = self._term_cache.get(token)
        if cached is not None:
            return cached

        stemmed = self._stem(token)
        concept_entries = self._lexicon.concepts_for_stem(stemmed) if self._lexicon else []
        if concept_entries:
            vector = np.zeros(self._dim)
            for concept_id, weight in concept_entries:
                base = _seeded_vector(f"concept:{concept_id}", self._seed, self._dim)
                noise = _seeded_vector(f"form:{stemmed}", self._seed, self._dim)
                vector += weight * (base + self._form_noise * noise)
        else:
            vector = self._oov_weight * _seeded_vector(f"oov:{stemmed}", self._seed, self._dim)

        self._term_cache[token] = vector
        return vector


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors (0 if either is null)."""
    norm = float(np.linalg.norm(a)) * float(np.linalg.norm(b))
    if norm < 1e-12:
        return 0.0
    return float(np.dot(a, b)) / norm
