"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``ask "<question>"`` — build a demo deployment and answer one question
  (``--shards N`` serves it from a sharded cluster, ``--explain`` prints
  the per-chunk score-provenance report, ``--cluster-status`` prints the
  shard/replica health table, ``--metrics`` dumps the Prometheus
  exposition of the deployment's telemetry registry);
* ``demo`` — an interactive search box over a demo deployment;
* ``eval`` — a compact UniAsk-vs-legacy evaluation (Table 1 style);
* ``loadtest`` — the Figure 2 open-system load test;
* ``metrics`` — serve a traced query stream through the backend and print
  the operational surface: ``/metrics`` exposition with exemplars,
  ``/healthz``/``/readyz`` probes, SLO burn-rate alerts, and optionally
  the JSONL audit log (``--audit PATH``); exits non-zero when any
  page-severity (critical) alert is firing;
* ``profile`` — serve a query stream through a profiling-enabled backend
  and print the aggregated call-tree profile (``--format top|folded|
  speedscope|json``), optionally with the saturation dashboard section
  (``--saturation``); ``ask --profile`` profiles a single request instead;
* ``canary`` — run the canary probe suite once through a demo deployment
  and report quality metrics against the (freshly frozen) baseline;
  exits non-zero when a quality alert fires;
* ``incident`` — run a compressed chaos day (replica kill + cache-epoch
  flip, no revive) through an incident-enabled sharded deployment and
  print the incident list; ``--timeline`` renders each incident's
  causally ordered flight-recorder timeline, ``--show ID`` one specific
  incident, ``--diagnose`` the root-cause verdict of the last served
  request; exits non-zero while an incident is open and unrecovered;
* ``index`` — build the demo corpus index and persist it to a directory,
  optionally sharded (``--shards N``).

The demo deployment uses the synthetic banking KB; sizes and seeds are
configurable via flags so the CLI stays deterministic by default.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.factory import UniAskSystem, build_uniask_system
from repro.corpus.generator import KbGenerator, KbGeneratorConfig, SyntheticKb
from repro.corpus.vocabulary import build_banking_lexicon
from repro.service.frontend import render_answer_page


def _build_system(
    topics: int,
    seed: int,
    shards: int = 1,
    replicas: int = 2,
    cache: bool = False,
    agents: bool = False,
) -> tuple[SyntheticKb, UniAskSystem]:
    print(f"building demo deployment ({topics} topics, seed {seed})...", file=sys.stderr)
    kb = KbGenerator(KbGeneratorConfig(num_topics=topics, error_families=6, seed=seed)).generate()
    config = None
    if shards > 1 or cache or agents:
        from repro.agents import AgentsConfig
        from repro.cache import CacheConfig
        from repro.cluster import ClusterConfig
        from repro.core.config import UniAskConfig

        config = UniAskConfig(
            cluster=ClusterConfig(shards=shards, replicas=replicas),
            cache=CacheConfig(enabled=cache),
            agents=AgentsConfig(enabled=agents),
        )
    system = build_uniask_system(kb.store(), build_banking_lexicon(), config=config, seed=seed)
    if shards > 1:
        sizes = ", ".join(
            f"shard {sid}: {len(system.index.shard_index(sid))}" for sid in system.index.shard_ids
        )
        print(f"indexed {len(system.index)} chunks over {shards} shards ({sizes}).", file=sys.stderr)
    else:
        print(f"indexed {len(system.index)} chunks.", file=sys.stderr)
    return kb, system


def _cmd_ask(args: argparse.Namespace) -> int:
    from repro.api import AskOptions, AskRequest

    agents_on = args.agents or bool(args.route)
    _, system = _build_system(
        args.topics,
        args.seed,
        shards=args.shards,
        replicas=args.replicas,
        cache=args.cache,
        agents=agents_on,
    )
    request = AskRequest(
        args.question,
        AskOptions(
            trace=args.trace,
            explain=args.explain,
            profile=args.profile,
            request_id="cli-ask" if (args.trace or args.profile) else "",
            route=args.route,
            priority=args.priority,
            deadline_ms=args.deadline_ms,
        ),
    )
    for _ in range(max(1, args.repeat)):
        answer = system.engine.answer(request).answer
    print(render_answer_page(answer))
    if args.show_route:
        if answer.route:
            print(f"\n[route] {answer.route}")
        else:
            print("\n[route] (agents disabled — run with --agents)")
    if args.trace:
        print()
        print(answer.trace.format_table())
    if args.explain and answer.explain_report is not None:
        print()
        print(answer.explain_report.format_report())
    if args.profile:
        from repro.obs.profile import ContinuousProfiler

        profiler = ContinuousProfiler()
        profiler.record(answer.trace)
        print()
        print(profiler.format_top())
        if answer.work:
            shown = " ".join(f"{kind}={units}" for kind, units in sorted(answer.work.items()))
            print(f"\nwork: {shown}")
    if answer.cache_hit:
        print(f"\n[cache] served from cache (kind={answer.cache_hit})")
    if answer.partial_results:
        print("\n[degraded] partial results: some shards missed their deadline.")
    if args.cache and system.answer_cache is not None:
        stats = system.answer_cache.stats
        print(
            f"\nanswer cache: {stats.hits_exact} exact + {stats.hits_semantic} semantic hits, "
            f"{stats.misses} misses, {stats.stores} stores"
        )
    if args.cluster_status:
        if system.cluster is None:
            print("\ncluster status: single-index deployment (no cluster).")
        else:
            from repro.cluster import format_cluster_status

            print()
            print(format_cluster_status(system.cluster.status()))
    if args.metrics:
        print()
        print(system.telemetry.render_metrics(), end="")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    _, system = _build_system(args.topics, args.seed, shards=args.shards)
    if system.cluster is not None:
        from repro.cluster import save_cluster

        save_cluster(system.index, args.out)
        for sid in system.index.shard_ids:
            shard = system.index.shard_index(sid)
            print(f"shard {sid}: {shard.document_count} documents, {len(shard)} chunks")
        print(f"saved {args.shards}-shard cluster to {args.out}")
    else:
        from repro.search.persistence import save_index

        save_index(system.index, args.out)
        print(f"{system.index.document_count} documents, {len(system.index)} chunks")
        print(f"saved single index to {args.out}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    _, system = _build_system(args.topics, args.seed)
    print("UniAsk demo — domande in italiano; riga vuota per uscire.")
    while True:
        try:
            question = input("\n❓ > ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not question:
            break
        print(render_answer_page(system.engine.answer(question).answer))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.baselines.keyword_engine import PrevKeywordEngine
    from repro.corpus.queries import HumanDatasetConfig, generate_human_dataset
    from repro.eval.harness import RetrievalEvaluator, hss_retriever, prev_retriever
    from repro.eval.reporting import format_comparison_table

    kb, system = _build_system(args.topics, args.seed)
    prev = PrevKeywordEngine()
    prev.index_all(kb.store().all_documents())
    questions = generate_human_dataset(
        kb, HumanDatasetConfig(num_questions=args.questions, seed=args.seed)
    )
    evaluator = RetrievalEvaluator()
    prev_result = evaluator.evaluate(prev_retriever(prev), questions)
    uniask_result = evaluator.evaluate(hss_retriever(system.searcher), questions)
    print(
        format_comparison_table(
            "Prev", prev_result, "UniAsk", uniask_result,
            title=f"Human questions (n={args.questions})",
        )
    )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.service.loadtest import LoadTestConfig, run_load_test

    config = LoadTestConfig(
        duration_seconds=args.minutes * 60.0, tokens_per_minute=args.quota
    )
    report = run_load_test(config)
    print(f"total requests : {report.total_requests}")
    print(f"failed requests: {report.failed_requests} ({report.failure_rate:.2%})")
    print(f"first failure  : minute {report.first_failure_minute}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.service.alerting import SEVERITY_CRITICAL
    from repro.service.backend import BackendService, ROLE_OPS

    _, system = _build_system(args.topics, args.seed, shards=args.shards, replicas=args.replicas)
    backend = BackendService(system.engine, system.clock, tracing=True)
    token = backend.login("cli-user")
    questions = [
        "come sbloccare la carta di credito",
        "bonifico estero commissioni",
        "limiti prelievo bancomat",
        "apertura conto online",
        "quadratura di cassa",
    ]
    for i in range(args.queries):
        backend.serve(token, questions[i % len(questions)])
    ops_token = backend.login("cli-ops", role=ROLE_OPS)

    print(f"# served {args.queries} traced queries\n", file=sys.stderr)
    print(backend.metrics_text(ops_token), end="")
    print()
    print(f"healthz: {backend.healthz()}")
    print(f"readyz:  {backend.readyz()}")
    alerts = backend.slo_status(ops_token)
    if alerts:
        for alert in alerts:
            print(f"SLO ALERT [{alert.severity}] {alert.rule}: {alert.message}")
    else:
        print("SLO burn rates: all objectives within budget")
    sampler = backend.telemetry.sampler
    print(
        f"trace sampler: {len(sampler)} retained of {sampler.offered} offered "
        f"(head={sampler.head_sampled}, tail={sampler.tail_sampled})"
    )
    if args.audit:
        path = backend.telemetry.audit.dump(args.audit)
        print(f"audit log: {len(backend.telemetry.audit)} entries written to {path}")
    paging = [alert for alert in alerts if alert.severity == SEVERITY_CRITICAL]
    if paging:
        print(f"exit: {len(paging)} page-severity alert(s) firing", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.service.backend import BackendService, ROLE_OPS

    _, system = _build_system(args.topics, args.seed, shards=args.shards, replicas=args.replicas)
    backend = BackendService(
        system.engine, system.clock, tracing=True, profiling=True, capacity=True
    )
    token = backend.login("cli-user")
    questions = [
        "come sbloccare la carta di credito",
        "bonifico estero commissioni",
        "limiti prelievo bancomat",
        "apertura conto online",
        "quadratura di cassa",
    ]
    for i in range(args.queries):
        backend.serve(token, questions[i % len(questions)])
    ops_token = backend.login("cli-ops", role=ROLE_OPS)
    print(f"# profiled {args.queries} requests\n", file=sys.stderr)
    payload = backend.ops("profile", ops_token, format=args.format, limit=args.limit)
    if isinstance(payload, str):
        print(payload)
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    if args.saturation and backend.capacity is not None:
        from repro.obs.capacity import format_saturation

        print()
        print(format_saturation(backend.capacity.snapshot()))
    return 0


def _cmd_canary(args: argparse.Namespace) -> int:
    from repro.eval.groundedness import GroundednessJudge
    from repro.obs.quality import CanaryRunner, CanarySuite, format_canary_report

    kb, system = _build_system(
        args.topics, args.seed, shards=args.shards, replicas=args.replicas, agents=args.agents
    )
    suite = CanarySuite.from_kb(
        kb, size=args.probes, seed=args.seed + 1747, include_route_probes=args.agents
    )
    runner = CanaryRunner(
        system.engine,
        suite,
        judge=GroundednessJudge(build_banking_lexicon()),
        registry=system.telemetry.registry,
    )
    report = runner.run_once(now=system.clock.now())
    alerts = list(runner.last_alerts)
    print(format_canary_report(report, alerts))
    return 1 if alerts else 0


def _cmd_incident(args: argparse.Namespace) -> int:
    from repro.api import create_backend
    from repro.autoscale.loadgen import (
        CHAOS_EPOCH_FLIP,
        CHAOS_KILL,
        ChaosEvent,
        DiurnalLoadConfig,
        run_diurnal_load,
    )
    from repro.cache import CacheConfig
    from repro.cluster import ClusterConfig
    from repro.core.config import UniAskConfig
    from repro.corpus.queries import HumanDatasetConfig, generate_human_dataset
    from repro.obs.incident import IncidentConfig

    print(
        f"building incident-enabled deployment ({args.topics} topics, "
        f"{args.shards} shards, seed {args.seed})...",
        file=sys.stderr,
    )
    kb = KbGenerator(
        KbGeneratorConfig(num_topics=args.topics, error_families=6, seed=args.seed)
    ).generate()
    config = UniAskConfig(
        cluster=ClusterConfig(shards=args.shards, replicas=args.replicas),
        cache=CacheConfig(enabled=True),
        incident=IncidentConfig(enabled=True),
    )
    system = build_uniask_system(kb.store(), build_banking_lexicon(), config=config, seed=args.seed)
    backend = create_backend(system)
    token = backend.login("cli-incident")
    questions = [
        q.text
        for q in generate_human_dataset(
            kb, HumanDatasetConfig(num_questions=args.questions, seed=args.seed)
        )
    ]
    # The canonical pageable fault: kill one replica a third of the way in,
    # then flip the cache epoch shortly after so the re-scattering herd
    # actually sees the dark shard (cache hits never go partial).  No
    # revive and no autoscaler — the incident stays open.
    chaos: tuple[ChaosEvent, ...] = ()
    if args.chaos:
        kill_at = args.duration / 3.0
        chaos = (
            ChaosEvent(at=kill_at, kind=CHAOS_KILL, shard_id=0),
            ChaosEvent(at=kill_at + 30.0, kind=CHAOS_EPOCH_FLIP),
        )
    load = DiurnalLoadConfig(
        duration_seconds=args.duration,
        base_rate=args.rate,
        period_seconds=args.duration,
        chaos=chaos,
    )
    report = run_diurnal_load(backend, system.cluster, system.clock, token, questions, load)
    manager = backend.incidents
    print(
        f"# chaos day: served {report.served} requests over {args.duration:.0f}s "
        f"({'with' if args.chaos else 'without'} injected faults)\n",
        file=sys.stderr,
    )

    status = manager.status()
    print(
        f"incidents: {status['open']} open / {status['total']} total  "
        f"(flight recorder: {status['recorder_events']} events retained, "
        f"{status['recorder_total']} recorded)"
    )
    for summary in status["incidents"]:
        rules = ",".join(summary["rules"])
        print(
            f"  {summary['incident_id']}  [{summary['status']:<9}]  "
            f"opened=t={summary['opened_at']:.0f}s  rules={rules}  "
            f"cause={summary['top_cause'] or '-'}  seen={summary['count']}x"
        )
    if not status["incidents"]:
        print("  (none — no page-severity alert fired)")

    shown = []
    if args.show:
        try:
            shown = [manager.get(args.show)]
        except KeyError:
            print(f"error: unknown incident id {args.show!r}", file=sys.stderr)
            return 2
    elif args.timeline:
        shown = list(manager.incidents)
    for incident in shown:
        print()
        print(manager.format_timeline(incident))

    if args.diagnose:
        query_id = f"q-{backend.served_queries:07d}"
        diagnosis = manager.diagnose(query_id)
        print()
        print(f"diagnosis of {query_id} (route {diagnosis['route']}): {diagnosis['verdict']}")
        for finding in diagnosis["findings"]:
            print(f"  - {finding}")

    open_count = len(manager.open_incidents)
    if open_count:
        print(f"exit: {open_count} incident(s) still open", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--topics", type=int, default=120, help="demo corpus size (topics)")
    parser.add_argument("--seed", type=int, default=42, help="master seed")
    commands = parser.add_subparsers(dest="command", required=True)

    ask = commands.add_parser("ask", help="answer one question")
    ask.add_argument("question")
    ask.add_argument(
        "--trace",
        action="store_true",
        help="print the per-stage timing table of the request trace",
    )
    ask.add_argument("--shards", type=int, default=1, help="serve from N index shards")
    ask.add_argument("--replicas", type=int, default=2, help="replicas per shard")
    ask.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="enable the answer/retrieval cache (--no-cache restores the default)",
    )
    ask.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="serve the question N times (repeats hit the cache when --cache is on)",
    )
    ask.add_argument(
        "--cluster-status",
        action="store_true",
        help="print the shard/replica health table after answering",
    )
    ask.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus exposition of the telemetry registry",
    )
    ask.add_argument(
        "--explain",
        action="store_true",
        help="print the per-chunk score-provenance report of the retrieval",
    )
    ask.add_argument(
        "--profile",
        action="store_true",
        help="profile the request: hottest stage paths plus deterministic work counters",
    )
    ask.add_argument(
        "--agents",
        action="store_true",
        help="enable the multi-agent orchestration layer (intent routing)",
    )
    ask.add_argument(
        "--route",
        default="",
        help="force an agent route (conversational|lookup|multi_hop|structured|follow_up); implies --agents",
    )
    ask.add_argument(
        "--show-route",
        action="store_true",
        help="print the route the orchestrator chose for the question",
    )
    ask.add_argument(
        "--priority",
        default="interactive",
        choices=["interactive", "batch", "canary"],
        help="QoS priority class of the request (admission sheds canary and batch first)",
    )
    ask.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="client deadline in milliseconds; an admission-enabled backend degrades "
        "or rejects requests whose deadline full service cannot meet",
    )
    ask.set_defaults(func=_cmd_ask)

    demo = commands.add_parser("demo", help="interactive search box")
    demo.set_defaults(func=_cmd_demo)

    evaluate = commands.add_parser("eval", help="UniAsk vs legacy engine")
    evaluate.add_argument("--questions", type=int, default=150)
    evaluate.set_defaults(func=_cmd_eval)

    loadtest = commands.add_parser("loadtest", help="Figure 2 load test")
    loadtest.add_argument("--minutes", type=int, default=60)
    loadtest.add_argument("--quota", type=float, default=1_045_000.0)
    loadtest.set_defaults(func=_cmd_loadtest)

    metrics = commands.add_parser("metrics", help="telemetry surface of a demo backend")
    metrics.add_argument("--queries", type=int, default=8, help="traced queries to serve")
    metrics.add_argument("--shards", type=int, default=1, help="serve from N index shards")
    metrics.add_argument("--replicas", type=int, default=2, help="replicas per shard")
    metrics.add_argument("--audit", default="", help="write the JSONL audit log to this path")
    metrics.set_defaults(func=_cmd_metrics)

    profile = commands.add_parser(
        "profile", help="continuous profile of a served query stream"
    )
    profile.add_argument("--queries", type=int, default=12, help="requests to profile")
    profile.add_argument("--shards", type=int, default=1, help="serve from N index shards")
    profile.add_argument("--replicas", type=int, default=2, help="replicas per shard")
    profile.add_argument(
        "--format",
        choices=("top", "folded", "speedscope", "json"),
        default="top",
        help="output format of the aggregated profile",
    )
    profile.add_argument("--limit", type=int, default=25, help="rows in the top table")
    profile.add_argument(
        "--saturation",
        action="store_true",
        help="also print the saturation (USE) dashboard section",
    )
    profile.set_defaults(func=_cmd_profile)

    canary = commands.add_parser("canary", help="run the canary probe suite once")
    canary.add_argument("--probes", type=int, default=24, help="canary suite size")
    canary.add_argument("--shards", type=int, default=1, help="serve from N index shards")
    canary.add_argument("--replicas", type=int, default=2, help="replicas per shard")
    canary.add_argument(
        "--agents",
        action="store_true",
        help="enable agent routing and add per-route canary probes",
    )
    canary.set_defaults(func=_cmd_canary)

    incident = commands.add_parser(
        "incident", help="chaos day through an incident-enabled deployment"
    )
    incident.add_argument("--shards", type=int, default=2, help="serve from N index shards")
    incident.add_argument("--replicas", type=int, default=1, help="replicas per shard")
    incident.add_argument("--questions", type=int, default=40, help="distinct questions")
    incident.add_argument(
        "--duration", type=float, default=900.0, help="simulated chaos-day length (seconds)"
    )
    incident.add_argument("--rate", type=float, default=1.2, help="base request rate (req/s)")
    incident.add_argument(
        "--chaos",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="inject the replica kill + cache-epoch flip (--no-chaos for a clean day)",
    )
    incident.add_argument(
        "--timeline",
        action="store_true",
        help="print every incident's causally ordered flight-recorder timeline",
    )
    incident.add_argument("--show", default="", help="print one incident by id (e.g. inc-0001)")
    incident.add_argument(
        "--diagnose",
        action="store_true",
        help="print the root-cause diagnosis of the last served request",
    )
    incident.set_defaults(func=_cmd_incident)

    index = commands.add_parser("index", help="build and persist the demo index")
    index.add_argument("--shards", type=int, default=1, help="partition into N shards")
    index.add_argument("--out", required=True, help="output directory")
    index.set_defaults(func=_cmd_index)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
