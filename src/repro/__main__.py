"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``ask "<question>"`` — build a demo deployment and answer one question;
* ``demo`` — an interactive search box over a demo deployment;
* ``eval`` — a compact UniAsk-vs-legacy evaluation (Table 1 style);
* ``loadtest`` — the Figure 2 open-system load test.

The demo deployment uses the synthetic banking KB; sizes and seeds are
configurable via flags so the CLI stays deterministic by default.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.factory import UniAskSystem, build_uniask_system
from repro.corpus.generator import KbGenerator, KbGeneratorConfig, SyntheticKb
from repro.corpus.vocabulary import build_banking_lexicon
from repro.service.frontend import render_answer_page


def _build_system(topics: int, seed: int) -> tuple[SyntheticKb, UniAskSystem]:
    print(f"building demo deployment ({topics} topics, seed {seed})...", file=sys.stderr)
    kb = KbGenerator(KbGeneratorConfig(num_topics=topics, error_families=6, seed=seed)).generate()
    system = build_uniask_system(kb.store(), build_banking_lexicon(), seed=seed)
    print(f"indexed {len(system.index)} chunks.", file=sys.stderr)
    return kb, system


def _cmd_ask(args: argparse.Namespace) -> int:
    _, system = _build_system(args.topics, args.seed)
    if args.trace:
        from repro.obs.trace import RequestContext

        ctx = RequestContext.traced(request_id="cli-ask")
        answer = system.engine.ask(args.question, ctx=ctx)
        print(render_answer_page(answer))
        print()
        print(answer.trace.format_table())
    else:
        answer = system.engine.ask(args.question)
        print(render_answer_page(answer))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    _, system = _build_system(args.topics, args.seed)
    print("UniAsk demo — domande in italiano; riga vuota per uscire.")
    while True:
        try:
            question = input("\n❓ > ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not question:
            break
        print(render_answer_page(system.engine.ask(question)))
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.baselines.keyword_engine import PrevKeywordEngine
    from repro.corpus.queries import HumanDatasetConfig, generate_human_dataset
    from repro.eval.harness import RetrievalEvaluator, hss_retriever, prev_retriever
    from repro.eval.reporting import format_comparison_table

    kb, system = _build_system(args.topics, args.seed)
    prev = PrevKeywordEngine()
    prev.index_all(kb.store().all_documents())
    questions = generate_human_dataset(
        kb, HumanDatasetConfig(num_questions=args.questions, seed=args.seed)
    )
    evaluator = RetrievalEvaluator()
    prev_result = evaluator.evaluate(prev_retriever(prev), questions)
    uniask_result = evaluator.evaluate(hss_retriever(system.searcher), questions)
    print(
        format_comparison_table(
            "Prev", prev_result, "UniAsk", uniask_result,
            title=f"Human questions (n={args.questions})",
        )
    )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.service.loadtest import LoadTestConfig, run_load_test

    config = LoadTestConfig(
        duration_seconds=args.minutes * 60.0, tokens_per_minute=args.quota
    )
    report = run_load_test(config)
    print(f"total requests : {report.total_requests}")
    print(f"failed requests: {report.failed_requests} ({report.failure_rate:.2%})")
    print(f"first failure  : minute {report.first_failure_minute}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--topics", type=int, default=120, help="demo corpus size (topics)")
    parser.add_argument("--seed", type=int, default=42, help="master seed")
    commands = parser.add_subparsers(dest="command", required=True)

    ask = commands.add_parser("ask", help="answer one question")
    ask.add_argument("question")
    ask.add_argument(
        "--trace",
        action="store_true",
        help="print the per-stage timing table of the request trace",
    )
    ask.set_defaults(func=_cmd_ask)

    demo = commands.add_parser("demo", help="interactive search box")
    demo.set_defaults(func=_cmd_demo)

    evaluate = commands.add_parser("eval", help="UniAsk vs legacy engine")
    evaluate.add_argument("--questions", type=int, default=150)
    evaluate.set_defaults(func=_cmd_eval)

    loadtest = commands.add_parser("loadtest", help="Figure 2 load test")
    loadtest.add_argument("--minutes", type=int, default=60)
    loadtest.add_argument("--quota", type=float, default=1_045_000.0)
    loadtest.set_defaults(func=_cmd_loadtest)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
