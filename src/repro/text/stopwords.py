"""Italian stop-word list used by the full-text analyzer.

The list mirrors the one shipped with Lucene's Italian analyzer
(``it-analyzer-lucene-full`` in Azure AI Search terminology): articles,
prepositions, pronouns, common auxiliary verb forms and conjunctions.
Stop words are removed *after* elision splitting and lower-casing, so the
entries here are plain lower-case word forms.
"""

from __future__ import annotations

# Core function words: articles, simple and articulated prepositions.
_ARTICLES_PREPOSITIONS = """
il lo la i gli le un uno una
di a da in con su per tra fra
del dello della dei degli delle
al allo alla ai agli alle
dal dallo dalla dai dagli dalle
nel nello nella nei negli nelle
col coi sul sullo sulla sui sugli sulle
"""

# Pronouns and demonstratives.
_PRONOUNS = """
io tu lui lei noi voi loro
mi ti ci vi si ne li
me te se ce ve
mio mia miei mie tuo tua tuoi tue
suo sua suoi sue nostro nostra nostri nostre
vostro vostra vostri vostre
questo questa questi queste
quello quella quelli quelle quegli quei
chi che cui qual quale quali quanto quanta quanti quante
"""

# Conjunctions, adverbs, and common particles.
_CONNECTIVES = """
e ed o od ma se anche come dove quando perche perché
piu più meno molto poco tanto tutto tutti tutta tutte
non piu' gia già ancora sempre mai qui qua li lì la' là
allora quindi dunque pero però inoltre oppure ovvero cioe cioè
"""

# High-frequency forms of essere / avere / fare / stare / dovere / potere.
_VERB_FORMS = """
è e' sono sei siamo siete era erano ero eri eravamo eravate
sia siano sarebbe sarebbero sara sarà saranno essere stato stata stati state
ho hai ha abbiamo avete hanno aveva avevano avevo avevi
avere avuto abbia abbiano avrebbe avrà avranno
fa fai faccio facciamo fate fanno fare fatto faceva
sto stai sta stiamo state stanno stare
devo devi deve dobbiamo dovete devono dovere
posso puoi puo può possiamo potete possono potere
voglio vuoi vuole vogliamo volete vogliono volere
"""

ITALIAN_STOPWORDS: frozenset[str] = frozenset(
    word
    for block in (_ARTICLES_PREPOSITIONS, _PRONOUNS, _CONNECTIVES, _VERB_FORMS)
    for word in block.split()
)


def is_stopword(token: str) -> bool:
    """Return True when *token* (already lower-cased) is an Italian stop word."""
    return token in ITALIAN_STOPWORDS
