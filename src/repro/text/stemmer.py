"""Italian light stemmer.

A from-scratch implementation of the *light* Italian stemmer used by
Lucene's ``ItalianLightStemFilter`` (Savoy, "Light Stemming Approaches for
the French, Portuguese, German and Hungarian Languages", applied to Italian).
Light stemming only normalizes plural/gender inflection on nouns and
adjectives; it deliberately does not attack verb conjugation, which keeps
precision high for retrieval.

The algorithm:

1. replace accented vowels with their plain forms,
2. drop a final vowel chain according to simple plural/gender rules
   (``-chi/-che`` → ``-c``  … ``-i/-e/-a/-o`` dropped),
3. never stem below 3 characters.
"""

from __future__ import annotations

_ACCENT_MAP = str.maketrans(
    "àáâäèéêëìíîïòóôöùúûüÀÁÂÄÈÉÊËÌÍÎÏÒÓÔÖÙÚÛÜ",
    "aaaaeeeeiiiioooouuuuAAAAEEEEIIIIOOOOUUUU",
)


def remove_accents(word: str) -> str:
    """Replace accented vowels with unaccented equivalents."""
    return word.translate(_ACCENT_MAP)


def stem(word: str) -> str:
    """Return the light stem of an Italian *word* (expects lower-case input)."""
    word = remove_accents(word)
    if len(word) < 4:
        return word

    # Plural of -co/-ca and -go/-ga words keeps the velar sound with an h:
    # banchi/banche -> banc, luoghi -> luog.
    if len(word) > 5 and word.endswith(("chi", "che")):
        return word[:-2]
    if len(word) > 5 and word.endswith(("ghi", "ghe")):
        return word[:-2]

    # Final unstressed vowel marks gender/number: conto/conti/conta/conte.
    if word[-1] in "aeio":
        word = word[:-1]
        # A remaining final 'i' after dropping ('bonifici' -> 'bonifici' ->
        # 'bonific' via the double-vowel plural) normalizes too.
        if len(word) > 3 and word[-1] == "i":
            word = word[:-1]
    return word


def stem_tokens(tokens: list[str]) -> list[str]:
    """Stem every token in *tokens*."""
    return [stem(token) for token in tokens]
