"""Text similarity measures used by guardrails and dataset construction.

* :func:`rouge_l` — the ROUGE-L F-measure (Lin, 2004) that drives the paper's
  primary hallucination guardrail (Section 6, threshold 0.15).
* :func:`lcs_length` — longest common subsequence, the core of ROUGE-L.
* :func:`jaccard` — Jaccard similarity on non-stop terms, used by the UAT
  dataset construction (Section 8) to pick human questions similar to
  frequent log queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.analyzer import FULL_ANALYZER, SURFACE_ANALYZER, ItalianAnalyzer


def lcs_length(a: list[str], b: list[str]) -> int:
    """Length of the longest common subsequence of token lists *a* and *b*.

    Classic O(len(a)*len(b)) dynamic program over two rolling rows.
    """
    if not a or not b:
        return 0
    # Keep the shorter sequence in the inner dimension for memory locality.
    if len(b) > len(a):
        a, b = b, a
    previous = [0] * (len(b) + 1)
    current = [0] * (len(b) + 1)
    for token_a in a:
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous, current = current, previous
    return previous[len(b)]


@dataclass(frozen=True)
class RougeLScore:
    """Precision/recall/F decomposition of a ROUGE-L comparison."""

    precision: float
    recall: float
    fmeasure: float


def rouge_l_score(
    candidate: str,
    reference: str,
    analyzer: ItalianAnalyzer = SURFACE_ANALYZER,
    beta: float = 1.2,
) -> RougeLScore:
    """Full ROUGE-L score of *candidate* against *reference*.

    Follows Lin (2004): P = LCS/len(candidate), R = LCS/len(reference),
    F = ((1+beta^2) P R) / (R + beta^2 P).  Tokenization keeps stop words
    (surface analyzer) because ROUGE is a surface measure.
    """
    candidate_tokens = [token.lower() for token in analyzer.analyze(candidate)]
    reference_tokens = [token.lower() for token in analyzer.analyze(reference)]
    if not candidate_tokens or not reference_tokens:
        return RougeLScore(0.0, 0.0, 0.0)
    lcs = lcs_length(candidate_tokens, reference_tokens)
    precision = lcs / len(candidate_tokens)
    recall = lcs / len(reference_tokens)
    if precision == 0.0 and recall == 0.0:
        return RougeLScore(0.0, 0.0, 0.0)
    beta_sq = beta * beta
    fmeasure = (1 + beta_sq) * precision * recall / (recall + beta_sq * precision)
    return RougeLScore(precision, recall, fmeasure)


def rouge_l(candidate: str, reference: str) -> float:
    """ROUGE-L F-measure, the scalar the guardrail thresholds on."""
    return rouge_l_score(candidate, reference).fmeasure


def jaccard(a: str, b: str, analyzer: ItalianAnalyzer = FULL_ANALYZER) -> float:
    """Jaccard similarity of the non-stop term sets of *a* and *b*."""
    set_a = analyzer.analyze_unique(a)
    set_b = analyzer.analyze_unique(b)
    if not set_a and not set_b:
        return 0.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)
