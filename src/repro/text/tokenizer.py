"""Tokenization primitives shared across the library.

Two distinct needs are served:

* :func:`word_tokenize` — surface word segmentation used by the analyzer,
  the similarity measures, and the corpus tooling.
* :class:`TokenCounter` — an LLM-style token counter used wherever the paper
  speaks in "tokens" (512-token chunks, 7200-token load-test requests, prompt
  budgets).  Real BPE vocabularies average roughly 0.75 words per token on
  Italian prose; we approximate that by charging one token per short word and
  one extra token per 4 characters beyond the first 4, which tracks
  ``tiktoken`` within a few percent on this kind of text without shipping a
  vocabulary file.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Words (including accented letters and internal apostrophes used by Italian
# elision such as "l'estratto"), numbers, and error/procedure codes such as
# "ERR-4821" are each kept as a single surface token.
_WORD_RE = re.compile(r"[A-Z]+-\d+|[A-Za-zÀ-ÖØ-öø-ÿ]+(?:'[A-Za-zÀ-ÖØ-öø-ÿ]+)?|\d+(?:[.,]\d+)*")

# Sentence boundaries: ., !, ? followed by whitespace, keeping abbreviations
# with a following lower-case letter attached.  Paragraph breaks (newlines)
# are always boundaries — chunk texts join paragraphs without punctuation.
_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+(?=[A-ZÀ-Ö0-9])|\n+")


def word_tokenize(text: str) -> list[str]:
    """Split *text* into surface word tokens, preserving case and accents."""
    return _WORD_RE.findall(text)


def sentence_split(text: str) -> list[str]:
    """Split *text* into sentences on terminal punctuation."""
    stripped = text.strip()
    if not stripped:
        return []
    return [part.strip() for part in _SENTENCE_RE.split(stripped) if part.strip()]


@dataclass(frozen=True)
class TokenCounter:
    """Approximate LLM (BPE) token counting.

    chars_per_extra_token: how many characters past the base length cost one
        additional token.  4 matches the usual "one token ≈ 4 characters"
        rule of thumb.
    """

    chars_per_extra_token: int = 4

    def count(self, text: str) -> int:
        """Return the approximate number of LLM tokens in *text*."""
        if not text:
            return 0
        total = 0
        for word in text.split():
            extra = max(0, len(word) - self.chars_per_extra_token)
            total += 1 + extra // self.chars_per_extra_token
        return total

    def truncate(self, text: str, max_tokens: int) -> str:
        """Return the longest word-boundary prefix of *text* within budget.

        Whitespace structure (including newlines) is preserved, so a
        multi-line completion truncates without collapsing its lines.
        """
        if max_tokens <= 0:
            return ""
        used = 0
        end = len(text)
        for match in re.finditer(r"\S+", text):
            word = match.group(0)
            cost = 1 + max(0, len(word) - self.chars_per_extra_token) // self.chars_per_extra_token
            if used + cost > max_tokens:
                end = match.start()
                break
            used += cost
        return text[:end].rstrip()


DEFAULT_TOKEN_COUNTER = TokenCounter()


def count_tokens(text: str) -> int:
    """Module-level convenience for :meth:`TokenCounter.count`."""
    return DEFAULT_TOKEN_COUNTER.count(text)
