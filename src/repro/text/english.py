"""English language pack.

The paper's first future-work goal is "to adapt our system to other
languages and other use cases".  The analysis chain is language-specific in
exactly three places — stop words, stemming, elision — all injectable into
:class:`~repro.text.analyzer.ItalianAnalyzer`'s generic machinery.  This
module provides the English instances:

* :data:`ENGLISH_STOPWORDS` — the classic function-word list;
* :func:`english_stem` — Harman's S-stemmer (plural normalization only),
  the English counterpart of the Italian *light* stemmer: high precision,
  no verb-conjugation heroics;
* :func:`english_analyzer` — the assembled chain.
"""

from __future__ import annotations

from repro.text.analyzer import ItalianAnalyzer

_STOPWORD_BLOCK = """
a an the this that these those
i you he she it we they me him her us them my your his its our their
is are was were be been being am
do does did doing have has had having
will would shall should can could may might must
and or but if then else when where how what which who whom why
of in on at by for with about against between into through to from
up down out off over under again further once not no nor only same so
than too very just there here all any both each few more most other some such
"""

ENGLISH_STOPWORDS: frozenset[str] = frozenset(_STOPWORD_BLOCK.split())


def english_stem(word: str) -> str:
    """Harman S-stemmer: conflate English plurals, nothing else.

    Rules (first match wins, never stem below 3 characters):
    ``-ies`` → ``-y`` (policies → policy), ``-es`` → drop ``s`` unless the
    word ends in ``-aies/-eies/-oies``, ``-s`` → drop unless the word ends
    in ``-us/-ss``.
    """
    if len(word) < 4:
        return word
    if word.endswith("ies") and not word.endswith(("aies", "eies")):
        return word[:-3] + "y"
    if word.endswith("es") and not word.endswith(("aes", "ees", "oes")):
        return word[:-1]
    if word.endswith("s") and not word.endswith(("us", "ss")):
        return word[:-1]
    return word


def english_analyzer(remove_stopwords: bool = True, apply_stemming: bool = True) -> ItalianAnalyzer:
    """The English analysis chain, assembled on the generic analyzer."""
    return ItalianAnalyzer(
        remove_stopwords=remove_stopwords,
        apply_stemming=apply_stemming,
        stopword_set=ENGLISH_STOPWORDS,
        stem_fn=english_stem,
    )
