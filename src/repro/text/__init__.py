"""Text analysis substrate: tokenization, Italian analysis, similarity."""

from repro.text.analyzer import FULL_ANALYZER, SURFACE_ANALYZER, ItalianAnalyzer
from repro.text.similarity import RougeLScore, jaccard, lcs_length, rouge_l, rouge_l_score
from repro.text.stemmer import remove_accents, stem, stem_tokens
from repro.text.stopwords import ITALIAN_STOPWORDS, is_stopword
from repro.text.tokenizer import (
    DEFAULT_TOKEN_COUNTER,
    TokenCounter,
    count_tokens,
    sentence_split,
    word_tokenize,
)

__all__ = [
    "FULL_ANALYZER",
    "SURFACE_ANALYZER",
    "ItalianAnalyzer",
    "RougeLScore",
    "jaccard",
    "lcs_length",
    "rouge_l",
    "rouge_l_score",
    "remove_accents",
    "stem",
    "stem_tokens",
    "ITALIAN_STOPWORDS",
    "is_stopword",
    "DEFAULT_TOKEN_COUNTER",
    "TokenCounter",
    "count_tokens",
    "sentence_split",
    "word_tokenize",
]
