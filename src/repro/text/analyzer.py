"""Italian full-text analyzer.

Re-implements the analysis chain of Azure AI Search's
``it-analyzer-lucene-full`` that the paper relies on for BM25 full-text
retrieval (Section 4): sentence/word segmentation, elision splitting,
lower-casing, stop-word removal, and light stemming.

The analyzer is the single normalization authority for the whole library —
the inverted index, the BM25 scorer, the semantic reranker and the ROUGE
guardrail all tokenize through it so that scores are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.text.stemmer import stem
from repro.text.stopwords import ITALIAN_STOPWORDS
from repro.text.tokenizer import word_tokenize

# Italian elided forms: "l'estratto" -> "l" + "estratto"; the leading
# particle is an article/preposition and is dropped as a stop word.
_ELISION_PREFIXES = frozenset(
    ["l", "un", "dell", "nell", "sull", "all", "dall", "quell", "quest", "c", "d", "m", "s", "t", "v"]
)


@dataclass(frozen=True)
class ItalianAnalyzer:
    """Configurable Lucene-style analyzer (Italian defaults).

    The machinery — tokenization, elision handling, lower-casing, stop-word
    removal, stemming — is language-neutral; the Italian stop-word list and
    light stemmer are only *defaults*, so other language packs
    (:mod:`repro.text.english`) assemble their chains on this same class,
    which is how the paper's "adapt to other languages" future work plugs
    in.

    Args:
        remove_stopwords: drop stop words (on for indexing/search).
        apply_stemming: apply the stemmer (on for indexing/search).
        extra_stopwords: domain-specific stop words to remove in addition
            to the language's standard list.
        stopword_set: the language's stop words (None → Italian).
        stem_fn: the language's stemmer (None → the Italian light stemmer).
    """

    remove_stopwords: bool = True
    apply_stemming: bool = True
    extra_stopwords: frozenset[str] = field(default_factory=frozenset)
    stopword_set: frozenset[str] | None = None
    stem_fn: Callable[[str], str] | None = None

    def analyze(self, text: str) -> list[str]:
        """Analyze *text* into a list of normalized index terms."""
        stem_word = self.stem_fn if self.stem_fn is not None else stem
        terms: list[str] = []
        for raw in word_tokenize(text):
            lowered = raw.lower()
            for piece in self._split_elision(lowered):
                if self.remove_stopwords and self._is_stopword(piece):
                    continue
                terms.append(stem_word(piece) if self.apply_stemming else piece)
        return terms

    def analyze_unique(self, text: str) -> set[str]:
        """Analyze *text* and return the set of distinct terms."""
        return set(self.analyze(text))

    def _split_elision(self, token: str) -> list[str]:
        if "'" not in token:
            return [token]
        head, _, tail = token.partition("'")
        if head in _ELISION_PREFIXES and tail:
            # The elided particle is an article/preposition; Lucene's
            # elision filter drops it outright.
            return [tail]
        return [token.replace("'", "")]

    def _is_stopword(self, token: str) -> bool:
        base = self.stopword_set if self.stopword_set is not None else ITALIAN_STOPWORDS
        return token in base or token in self.extra_stopwords


#: Analyzer with the full chain, the configuration used by the search index.
FULL_ANALYZER = ItalianAnalyzer()

#: Analyzer that keeps stop words and inflection; used where surface overlap
#: matters (ROUGE guardrail, Jaccard question matching).
SURFACE_ANALYZER = ItalianAnalyzer(remove_stopwords=False, apply_stemming=False)
