"""Knowledge graph over the banking knowledge base.

Section 11: "We will consider building a knowledge graph to support guiding
the generation via ontological reasoning."  This module builds that graph
from the indexed corpus itself — no external ontology needed:

* **concept nodes** — entities, actions and systems from the lexicon;
* **document nodes** — one per knowledge-base document;
* ``mentions`` edges (document → concept, weighted by the concept's weight
  in the document text);
* ``related`` edges (concept ↔ concept, weighted by how often the two
  concepts co-occur in a document) — the emergent ontology;
* ``duplicate_of`` edges (document ↔ document) between documents sharing a
  title concept fingerprint, capturing the KB's heavy near-duplication.

Built on :mod:`networkx`; all downstream consumers (the graph reranker, the
ontological answer guidance, the KG guardrail) read this one structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.embeddings.concepts import ConceptLexicon
from repro.search.index import SearchIndex

#: Node kinds.
KIND_CONCEPT = "concept"
KIND_DOCUMENT = "document"


@dataclass(frozen=True)
class GraphStats:
    """Shape summary of a built knowledge graph."""

    concepts: int
    documents: int
    mention_edges: int
    related_edges: int
    duplicate_edges: int


class KnowledgeGraph:
    """A typed graph of concepts and documents with weighted relations."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    # -- construction -------------------------------------------------------

    def add_concept(self, concept_id: str, canonical: str, domain: str = "") -> None:
        """Register a concept node."""
        self.graph.add_node(
            f"c:{concept_id}", kind=KIND_CONCEPT, concept_id=concept_id,
            canonical=canonical, domain=domain,
        )

    def add_document(self, doc_id: str, title: str) -> None:
        """Register a document node."""
        self.graph.add_node(f"d:{doc_id}", kind=KIND_DOCUMENT, doc_id=doc_id, title=title)

    def add_mention(self, doc_id: str, concept_id: str, weight: float) -> None:
        """Document *doc_id* mentions *concept_id* with the given weight."""
        self.graph.add_edge(f"d:{doc_id}", f"c:{concept_id}", relation="mentions", weight=weight)

    def add_related(self, concept_a: str, concept_b: str, weight: float) -> None:
        """Two concepts co-occur; accumulate the relation weight."""
        key = (f"c:{concept_a}", f"c:{concept_b}")
        if self.graph.has_edge(*key):
            self.graph[key[0]][key[1]]["weight"] += weight
        else:
            self.graph.add_edge(*key, relation="related", weight=weight)

    def add_duplicate(self, doc_a: str, doc_b: str) -> None:
        """Mark two documents as near-duplicates."""
        self.graph.add_edge(f"d:{doc_a}", f"d:{doc_b}", relation="duplicate_of", weight=1.0)

    # -- queries ---------------------------------------------------------------

    def concepts_of_document(self, doc_id: str) -> dict[str, float]:
        """concept_id → mention weight for one document."""
        node = f"d:{doc_id}"
        if node not in self.graph:
            return {}
        result = {}
        for neighbor in self.graph[node]:
            edge = self.graph[node][neighbor]
            if edge.get("relation") == "mentions":
                result[self.graph.nodes[neighbor]["concept_id"]] = edge["weight"]
        return result

    def documents_of_concept(self, concept_id: str) -> dict[str, float]:
        """doc_id → mention weight for one concept."""
        node = f"c:{concept_id}"
        if node not in self.graph:
            return {}
        result = {}
        for neighbor in self.graph[node]:
            edge = self.graph[node][neighbor]
            if edge.get("relation") == "mentions":
                result[self.graph.nodes[neighbor]["doc_id"]] = edge["weight"]
        return result

    def related_concepts(self, concept_id: str) -> dict[str, float]:
        """concept_id → relation weight of the co-occurrence neighbours."""
        node = f"c:{concept_id}"
        if node not in self.graph:
            return {}
        result = {}
        for neighbor in self.graph[node]:
            edge = self.graph[node][neighbor]
            if edge.get("relation") == "related":
                result[self.graph.nodes[neighbor]["concept_id"]] = edge["weight"]
        return result

    def duplicates_of(self, doc_id: str) -> list[str]:
        """Near-duplicate documents of *doc_id*."""
        node = f"d:{doc_id}"
        if node not in self.graph:
            return []
        return [
            self.graph.nodes[neighbor]["doc_id"]
            for neighbor in self.graph[node]
            if self.graph[node][neighbor].get("relation") == "duplicate_of"
        ]

    def stats(self) -> GraphStats:
        """Counts of nodes and typed edges."""
        concepts = sum(1 for _, d in self.graph.nodes(data=True) if d["kind"] == KIND_CONCEPT)
        documents = sum(1 for _, d in self.graph.nodes(data=True) if d["kind"] == KIND_DOCUMENT)
        relations = {"mentions": 0, "related": 0, "duplicate_of": 0}
        for _, _, data in self.graph.edges(data=True):
            relations[data["relation"]] += 1
        return GraphStats(
            concepts=concepts,
            documents=documents,
            mention_edges=relations["mentions"],
            related_edges=relations["related"],
            duplicate_edges=relations["duplicate_of"],
        )


def build_graph_from_index(
    index: SearchIndex,
    lexicon: ConceptLexicon,
    min_mention_weight: float = 0.34,
    duplicate_title_overlap: float = 0.99,
) -> KnowledgeGraph:
    """Construct the knowledge graph from an indexed corpus.

    Concepts come from the lexicon; mentions are extracted from chunk
    contents; concept co-occurrence within a document creates the
    ``related`` layer; documents whose *titles* share an identical concept
    fingerprint are linked as near-duplicates.
    """
    kg = KnowledgeGraph()
    for concept in lexicon.concepts:
        kg.add_concept(concept.concept_id, concept.canonical, concept.domain)

    # Aggregate per-document concept weights across chunks.
    doc_concepts: dict[str, dict[str, float]] = {}
    doc_titles: dict[str, str] = {}
    for internal in index.live_internals():
        record = index.record(internal)
        doc_titles.setdefault(record.doc_id, record.title)
        weights = lexicon.concepts_in_text(f"{record.title} {record.content}")
        bucket = doc_concepts.setdefault(record.doc_id, {})
        for concept_id, weight in weights.items():
            bucket[concept_id] = bucket.get(concept_id, 0.0) + weight

    title_fingerprints: dict[tuple[str, ...], list[str]] = {}
    for doc_id, weights in doc_concepts.items():
        kg.add_document(doc_id, doc_titles[doc_id])
        strong = {cid: w for cid, w in weights.items() if w >= min_mention_weight}
        for concept_id, weight in strong.items():
            kg.add_mention(doc_id, concept_id, weight)
        # Co-occurrence layer (cap at the strongest few to bound degree).
        top = sorted(strong, key=strong.get, reverse=True)[:5]
        for i, concept_a in enumerate(top):
            for concept_b in top[i + 1 :]:
                kg.add_related(concept_a, concept_b, 1.0)
        # Near-duplicate layer via title concept fingerprint.
        title_weights = lexicon.concepts_in_text(doc_titles[doc_id])
        fingerprint = tuple(sorted(cid for cid, w in title_weights.items() if w >= duplicate_title_overlap))
        if fingerprint:
            title_fingerprints.setdefault(fingerprint, []).append(doc_id)

    for doc_ids in title_fingerprints.values():
        for i, doc_a in enumerate(doc_ids):
            for doc_b in doc_ids[i + 1 :]:
                kg.add_duplicate(doc_a, doc_b)
    return kg
