"""Graph-based context-informed reranking (G-RAG style).

The related-work section cites Dong et al.'s G-RAG: a reranker that
combines "connections between documents and semantic information".  This
module implements that idea over our knowledge graph: a retrieved chunk is
boosted when its document is *graph-connected* to the query — directly
(mentions a query concept) or transitively (mentions a concept related to a
query concept, or duplicates a directly connected document).
"""

from __future__ import annotations

from repro.embeddings.concepts import ConceptLexicon
from repro.kg.graph import KnowledgeGraph
from repro.search.results import RetrievedChunk


class GraphReranker:
    """Adds a graph-connectivity score on top of an existing ranking.

    Args:
        kg: the knowledge graph.
        lexicon: used to extract the query's concepts.
        direct_weight: contribution of a direct doc→query-concept mention.
        related_weight: contribution of a one-hop related-concept mention.
        duplicate_weight: contribution inherited from a duplicate document.
        scale: multiplier applied to the final graph score before adding it
            to the base relevance score.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        lexicon: ConceptLexicon,
        direct_weight: float = 1.0,
        related_weight: float = 0.25,
        duplicate_weight: float = 0.15,
        scale: float = 0.5,
    ) -> None:
        self._kg = kg
        self._lexicon = lexicon
        self._direct_weight = direct_weight
        self._related_weight = related_weight
        self._duplicate_weight = duplicate_weight
        self._scale = scale

    def query_seed(self, query: str) -> dict[str, float]:
        """The query's concept seeds (concept_id → weight)."""
        return self._lexicon.concepts_in_text(query)

    def graph_score(self, query: str, doc_id: str) -> float:
        """Connectivity of *doc_id* to the query's concepts in [0, ~1]."""
        seeds = self.query_seed(query)
        if not seeds:
            return 0.0

        # Expand seeds one hop through the related-concept layer.
        expanded: dict[str, float] = dict(seeds)
        for concept_id, weight in seeds.items():
            for related_id, relation_weight in self._kg.related_concepts(concept_id).items():
                bonus = self._related_weight * weight * min(relation_weight, 4.0) / 4.0
                expanded[related_id] = max(expanded.get(related_id, 0.0), bonus)

        mentions = self._kg.concepts_of_document(doc_id)
        score = sum(
            self._direct_weight * expanded[cid] * min(mention_weight, 3.0) / 3.0
            for cid, mention_weight in mentions.items()
            if cid in expanded
        )

        # Duplicates of well-connected documents inherit a small bonus.
        for duplicate_id in self._kg.duplicates_of(doc_id):
            duplicate_mentions = self._kg.concepts_of_document(duplicate_id)
            shared = sum(
                expanded[cid] for cid in duplicate_mentions if cid in expanded
            )
            score += self._duplicate_weight * min(shared, 1.0)

        norm = sum(expanded.values()) or 1.0
        return min(score / norm, 1.5)

    def rerank(self, query: str, results: list[RetrievedChunk]) -> list[RetrievedChunk]:
        """Add the scaled graph score to each result and re-sort."""
        rescored = []
        for result in results:
            graph_score = self._scale * self.graph_score(query, result.doc_id)
            components = dict(result.components)
            components["graph"] = graph_score
            rescored.append(
                RetrievedChunk(
                    record=result.record,
                    score=result.score + graph_score,
                    components=components,
                )
            )
        rescored.sort(key=lambda r: (-r.score, r.record.chunk_id))
        return rescored
