"""Knowledge graph: construction, graph reranking, ontological reasoning."""

from repro.kg.graph import GraphStats, KnowledgeGraph, build_graph_from_index
from repro.kg.reasoning import KgGuardrail, RelatedPage, suggest_related_pages
from repro.kg.reranker import GraphReranker

__all__ = [
    "GraphStats",
    "KnowledgeGraph",
    "build_graph_from_index",
    "KgGuardrail",
    "RelatedPage",
    "suggest_related_pages",
    "GraphReranker",
]
