"""Ontological guidance for generation.

The two generation-side uses of the knowledge graph the paper anticipates:

* :class:`KgGuardrail` — a *semantic* hallucination check ("we will
  strengthen our guardrails with more sophisticated approaches"): the
  answer's concept fingerprint must stay inside the graph neighbourhood of
  the retrieval context.  Unlike ROUGE-L this is robust to heavy
  paraphrasing (a reworded grounded answer passes; a fluent off-topic
  answer fails even when it shares surface words).
* :func:`suggest_related_pages` — "guiding the generation via ontological
  reasoning": related procedures for the query's concepts, surfaced as
  see-also links next to the answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.concepts import ConceptLexicon
from repro.guardrails.base import GuardrailVerdict
from repro.kg.graph import KnowledgeGraph
from repro.search.results import RetrievedChunk


class KgGuardrail:
    """Concept-neighbourhood grounding check.

    The allowed concept set for an answer is every concept mentioned by a
    context document; with ``expand_related=True`` it additionally expands
    one hop through the ``related`` layer (more forgiving, but action
    concepts are co-occurrence hubs, so expansion weakens the check — it is
    off by default).  The guardrail fires when less than ``min_supported``
    of the answer's concept mass falls inside the allowed set.
    """

    def __init__(
        self,
        kg: KnowledgeGraph,
        lexicon: ConceptLexicon,
        min_supported: float = 0.5,
        expand_related: bool = False,
        min_concept_weight: float = 0.75,
    ) -> None:
        if not 0.0 <= min_supported <= 1.0:
            raise ValueError("min_supported must lie in [0, 1]")
        self._kg = kg
        self._lexicon = lexicon
        self._min_supported = min_supported
        self._expand_related = expand_related
        # Multi-word forms match fractionally word by word; a stray shared
        # word ("pratica" of "pratica di successione") must not count as a
        # concept mention on either side of the check.
        self._min_concept_weight = min_concept_weight

    def _fingerprint(self, text: str) -> dict[str, float]:
        weights = self._lexicon.concepts_in_text(text)
        return {cid: w for cid, w in weights.items() if w >= self._min_concept_weight}

    @property
    def name(self) -> str:
        """Guardrail identifier."""
        return "kg"

    def allowed_concepts(self, context: list[RetrievedChunk]) -> set[str]:
        """The context's concept neighbourhood."""
        allowed: set[str] = set()
        for chunk in context:
            allowed |= set(self._fingerprint(f"{chunk.record.title} {chunk.record.content}"))
        if self._expand_related:
            for concept_id in list(allowed):
                allowed |= set(self._kg.related_concepts(concept_id))
        return allowed

    def supported_fraction(self, answer: str, context: list[RetrievedChunk]) -> float:
        """Share of the answer's concept mass inside the allowed set."""
        weights = self._fingerprint(answer)
        total = sum(weights.values())
        if total == 0.0:
            return 1.0  # no factual concepts to verify
        allowed = self.allowed_concepts(context)
        supported = sum(weight for cid, weight in weights.items() if cid in allowed)
        return supported / total

    def check(
        self, question: str, answer: str, context: list[RetrievedChunk]
    ) -> GuardrailVerdict:
        """Fire when the answer drifts outside the context's neighbourhood."""
        if not context:
            return GuardrailVerdict(
                passed=False, guardrail=self.name, detail="no context to ground against"
            )
        fraction = self.supported_fraction(answer, context)
        if fraction < self._min_supported:
            return GuardrailVerdict(
                passed=False,
                guardrail=self.name,
                detail=f"only {fraction:.0%} of answer concepts supported by the context neighbourhood",
                score=fraction,
            )
        return GuardrailVerdict(passed=True, score=fraction)


@dataclass(frozen=True)
class RelatedPage:
    """One see-also suggestion."""

    doc_id: str
    title: str
    via_concept: str
    score: float


def suggest_related_pages(
    kg: KnowledgeGraph,
    lexicon: ConceptLexicon,
    query: str,
    exclude_docs: set[str] | None = None,
    limit: int = 3,
) -> list[RelatedPage]:
    """Related procedures for the query's concepts (ontological see-also).

    Walks query concepts → related concepts → documents, scoring each
    candidate page by seed weight × relation weight × mention weight, and
    skipping the documents already shown (*exclude_docs*).
    """
    exclude = exclude_docs or set()
    seeds = lexicon.concepts_in_text(query)
    candidates: dict[str, RelatedPage] = {}
    for seed_id, seed_weight in seeds.items():
        neighbourhood = {seed_id: 1.0}
        neighbourhood.update(
            {cid: min(w, 4.0) / 8.0 for cid, w in kg.related_concepts(seed_id).items()}
        )
        for concept_id, hop_weight in neighbourhood.items():
            for doc_id, mention_weight in kg.documents_of_concept(concept_id).items():
                if doc_id in exclude:
                    continue
                score = seed_weight * hop_weight * min(mention_weight, 3.0)
                current = candidates.get(doc_id)
                if current is None or score > current.score:
                    title = kg.graph.nodes[f"d:{doc_id}"]["title"]
                    candidates[doc_id] = RelatedPage(
                        doc_id=doc_id, title=title, via_concept=concept_id, score=score
                    )
    ranked = sorted(candidates.values(), key=lambda page: (-page.score, page.doc_id))
    # One suggestion per near-duplicate family: a see-also list of three
    # segment variants of the same page helps nobody.
    picked: list[RelatedPage] = []
    suppressed: set[str] = set()
    for page in ranked:
        if page.doc_id in suppressed:
            continue
        picked.append(page)
        suppressed.update(kg.duplicates_of(page.doc_id))
        if len(picked) >= limit:
            break
    return picked
