"""HTML parsing and document chunking substrate."""

from repro.htmlproc.chunking import Chunk, HtmlParagraphChunker, RecursiveCharacterTextSplitter
from repro.htmlproc.parser import ParsedDocument, parse_html

__all__ = [
    "Chunk",
    "HtmlParagraphChunker",
    "RecursiveCharacterTextSplitter",
    "ParsedDocument",
    "parse_html",
]
