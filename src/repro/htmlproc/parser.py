"""HTML document parsing.

The knowledge base is made of short HTML pages authored by employees.  The
ingestion flow (Section 3) extracts from each page its title and the text of
each paragraph, preserving the paragraph boundaries chosen by the human
editor — those boundaries are what the paper's ad-hoc chunking strategy
splits on.  Built on the standard library ``html.parser``; no external
dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

# Elements whose content forms one paragraph-level text block.
_BLOCK_TAGS = frozenset(["p", "li", "h1", "h2", "h3", "h4", "h5", "h6", "td", "pre", "blockquote"])
# Elements whose content is never user-visible text.  <head> is not skipped
# wholesale because <title> lives inside it; scripts and styles are.
_SKIP_TAGS = frozenset(["script", "style"])


@dataclass(frozen=True)
class ParsedDocument:
    """The text view of one HTML page.

    Attributes:
        title: content of ``<title>`` (or the first heading as fallback).
        paragraphs: visible text of each block element, in document order.
        paragraph_offsets: character start offset of each paragraph within
            :attr:`text` — the split points used by the HTML chunker.
    """

    title: str
    paragraphs: tuple[str, ...]
    paragraph_offsets: tuple[int, ...]

    @property
    def text(self) -> str:
        """The full visible text, paragraphs joined by blank lines."""
        return "\n\n".join(self.paragraphs)


@dataclass
class _ExtractionState:
    title_parts: list[str] = field(default_factory=list)
    paragraphs: list[str] = field(default_factory=list)
    current: list[str] = field(default_factory=list)
    in_title: bool = False
    skip_depth: int = 0
    first_heading: str | None = None
    current_is_heading: bool = False


class _TextExtractor(HTMLParser):
    """Streaming extraction of title + block texts from HTML markup."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.state = _ExtractionState()

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        state = self.state
        if tag in _SKIP_TAGS:
            state.skip_depth += 1
            return
        if tag == "title":
            state.in_title = True
            return
        if tag in _BLOCK_TAGS:
            self._flush_block()
            state.current_is_heading = tag in ("h1", "h2", "h3", "h4", "h5", "h6")
        elif tag == "br":
            state.current.append(" ")

    def handle_endtag(self, tag: str) -> None:
        state = self.state
        if tag in _SKIP_TAGS and state.skip_depth > 0:
            state.skip_depth -= 1
            return
        if tag == "title":
            state.in_title = False
            return
        if tag in _BLOCK_TAGS:
            self._flush_block()

    def handle_data(self, data: str) -> None:
        state = self.state
        if state.skip_depth > 0:
            return
        if state.in_title:
            state.title_parts.append(data)
        else:
            state.current.append(data)

    def _flush_block(self) -> None:
        state = self.state
        text = " ".join("".join(state.current).split())
        state.current.clear()
        if not text:
            state.current_is_heading = False
            return
        state.paragraphs.append(text)
        if state.current_is_heading and state.first_heading is None:
            state.first_heading = text
        state.current_is_heading = False


def parse_html(markup: str) -> ParsedDocument:
    """Parse HTML *markup* into a :class:`ParsedDocument`."""
    extractor = _TextExtractor()
    extractor.feed(markup)
    extractor.close()
    extractor._flush_block()
    state = extractor.state

    title = " ".join("".join(state.title_parts).split())
    if not title:
        title = state.first_heading or ""

    offsets: list[int] = []
    cursor = 0
    for index, paragraph in enumerate(state.paragraphs):
        offsets.append(cursor)
        cursor += len(paragraph)
        if index != len(state.paragraphs) - 1:
            cursor += 2  # the "\n\n" separator
    return ParsedDocument(
        title=title,
        paragraphs=tuple(state.paragraphs),
        paragraph_offsets=tuple(offsets),
    )
