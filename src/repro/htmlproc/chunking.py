"""Document chunking strategies.

The paper (Section 4) evaluated two splitters for producing 512-token index
chunks:

* LangChain's ``RecursiveCharacterTextSplitter`` — a generic character-based
  splitter the authors found to produce *noisy* chunks.  Re-implemented here
  as :class:`RecursiveCharacterTextSplitter` so the comparison can be run.
* An ad-hoc **HTML-paragraph** strategy — non-overlapping chunks cut at the
  start offsets of HTML paragraphs, recursively merging consecutive small
  chunks until the target length is reached.  This respects the coherent
  fragments designed by the human page editors.  Implemented as
  :class:`HtmlParagraphChunker` and used by the production indexing flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htmlproc.parser import ParsedDocument, parse_html
from repro.text.tokenizer import DEFAULT_TOKEN_COUNTER, TokenCounter


@dataclass(frozen=True)
class Chunk:
    """One index-able fragment of a document.

    Attributes:
        text: the chunk content.
        index: ordinal position of the chunk within its document.
        start_paragraph / end_paragraph: paragraph span (HTML chunker only;
            character splitter reports -1).
    """

    text: str
    index: int
    start_paragraph: int = -1
    end_paragraph: int = -1


@dataclass(frozen=True)
class HtmlParagraphChunker:
    """Paragraph-aligned chunker (the strategy UniAsk deploys).

    Paragraph start offsets are the only admissible split points, so a chunk
    is always a run of whole paragraphs.  Consecutive paragraphs are merged
    greedily while the merged chunk stays within ``max_tokens``; a paragraph
    that alone exceeds the budget becomes its own (oversized) chunk rather
    than being cut mid-sentence, mirroring the paper's preference for
    editor-coherent fragments.

    Args:
        max_tokens: target chunk size (512 in the deployment, chosen for
            text-embedding-ada-002).
        min_tokens: chunks smaller than this are merged forward when possible.
    """

    max_tokens: int = 512
    min_tokens: int = 32
    counter: TokenCounter = field(default_factory=lambda: DEFAULT_TOKEN_COUNTER)

    def chunk_document(self, document: ParsedDocument) -> list[Chunk]:
        """Chunk a parsed document along its paragraph boundaries."""
        paragraphs = document.paragraphs
        if not paragraphs:
            return []

        chunks: list[Chunk] = []
        buffer: list[str] = []
        buffer_tokens = 0
        buffer_start = 0

        def flush(end_paragraph: int) -> None:
            nonlocal buffer, buffer_tokens, buffer_start
            if not buffer:
                return
            chunks.append(
                Chunk(
                    text="\n\n".join(buffer),
                    index=len(chunks),
                    start_paragraph=buffer_start,
                    end_paragraph=end_paragraph,
                )
            )
            buffer = []
            buffer_tokens = 0

        for position, paragraph in enumerate(paragraphs):
            cost = self.counter.count(paragraph)
            if buffer and buffer_tokens + cost > self.max_tokens:
                flush(position - 1)
            if not buffer:
                buffer_start = position
            buffer.append(paragraph)
            buffer_tokens += cost
        flush(len(paragraphs) - 1)
        return self._merge_small(chunks)

    def chunk_html(self, markup: str) -> list[Chunk]:
        """Parse *markup* and chunk it in one call."""
        return self.chunk_document(parse_html(markup))

    def _merge_small(self, chunks: list[Chunk]) -> list[Chunk]:
        """Recursively merge consecutive undersized chunks."""
        merged = True
        while merged and len(chunks) > 1:
            merged = False
            result: list[Chunk] = []
            i = 0
            while i < len(chunks):
                current = chunks[i]
                if (
                    i + 1 < len(chunks)
                    and self.counter.count(current.text) < self.min_tokens
                    and self.counter.count(current.text) + self.counter.count(chunks[i + 1].text)
                    <= self.max_tokens
                ):
                    nxt = chunks[i + 1]
                    result.append(
                        Chunk(
                            text=current.text + "\n\n" + nxt.text,
                            index=len(result),
                            start_paragraph=current.start_paragraph,
                            end_paragraph=nxt.end_paragraph,
                        )
                    )
                    i += 2
                    merged = True
                else:
                    result.append(
                        Chunk(
                            text=current.text,
                            index=len(result),
                            start_paragraph=current.start_paragraph,
                            end_paragraph=current.end_paragraph,
                        )
                    )
                    i += 1
            chunks = result
        return chunks


@dataclass(frozen=True)
class RecursiveCharacterTextSplitter:
    """LangChain-compatible recursive character splitter (the noisy baseline).

    Splits on the first separator in ``separators`` that produces pieces, and
    recursively re-splits pieces still larger than ``chunk_size``; adjacent
    small pieces are then merged back with up to ``chunk_overlap`` characters
    of overlap, matching LangChain's documented behaviour.

    Sizes here are in **characters**, as in LangChain's default length
    function.
    """

    chunk_size: int = 2000
    chunk_overlap: int = 200
    separators: tuple[str, ...] = ("\n\n", "\n", ". ", " ", "")

    def __post_init__(self) -> None:
        if self.chunk_overlap >= self.chunk_size:
            raise ValueError("chunk_overlap must be smaller than chunk_size")

    def split_text(self, text: str) -> list[str]:
        """Split *text* into overlapping character chunks."""
        pieces = self._split(text, list(self.separators))
        return [piece for piece in pieces if piece.strip()]

    def chunk_document(self, document: ParsedDocument) -> list[Chunk]:
        """Chunk a parsed document, ignoring its paragraph structure."""
        return [Chunk(text=piece, index=i) for i, piece in enumerate(self.split_text(document.text))]

    def _split(self, text: str, separators: list[str]) -> list[str]:
        if len(text) <= self.chunk_size:
            return [text]
        separator = separators[0] if separators else ""
        remaining = separators[1:]

        if separator:
            parts = [part for part in text.split(separator) if part]
        else:
            parts = [text[i : i + self.chunk_size] for i in range(0, len(text), self.chunk_size)]

        expanded: list[str] = []
        for part in parts:
            if len(part) > self.chunk_size and (remaining or not separator):
                expanded.extend(self._split(part, remaining))
            else:
                expanded.append(part)
        return self._merge(expanded, separator)

    def _merge(self, parts: list[str], separator: str) -> list[str]:
        chunks: list[str] = []
        window: list[str] = []
        window_len = 0
        for part in parts:
            part_len = len(part) + (len(separator) if window else 0)
            if window and window_len + part_len > self.chunk_size:
                chunks.append(separator.join(window))
                # Retain a suffix of the window as overlap.
                while window and window_len > self.chunk_overlap:
                    dropped = window.pop(0)
                    window_len -= len(dropped) + (len(separator) if window else 0)
            window.append(part)
            window_len += part_len
        if window:
            chunks.append(separator.join(window))
        return chunks
