"""Groundedness metric.

Section 7: groundedness "evaluates whether an answer is stating facts that
are present in a given context", judged by an LLM.  The paper found that in
automatic evaluation it "failed to return meaningful results in the large
majority of cases", and deferred generation assessment to real users.

The offline judge reproduces both the metric and its unreliability: the
score is the fraction of answer sentences whose concept fingerprint is
covered by the context, but — like the LLM judge — it only *commits* to a
verdict when the evidence is clear-cut; mid-range scores are flagged as not
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.concepts import ConceptLexicon
from repro.search.results import RetrievedChunk
from repro.text.tokenizer import sentence_split


@dataclass(frozen=True)
class GroundednessVerdict:
    """One groundedness judgement."""

    score: float
    meaningful: bool
    supported_sentences: int
    total_sentences: int


class GroundednessJudge:
    """Concept-coverage groundedness with an honesty band.

    Args:
        lexicon: concept lexicon used to fingerprint sentences.
        confident_low / confident_high: scores inside the open interval
            (low, high) are reported as not meaningful, mirroring the
            LLM judge's refusal to commit on ambiguous cases.
    """

    def __init__(
        self,
        lexicon: ConceptLexicon,
        confident_low: float = 0.2,
        confident_high: float = 0.8,
    ) -> None:
        if not 0.0 <= confident_low <= confident_high <= 1.0:
            raise ValueError("confidence band must satisfy 0 <= low <= high <= 1")
        self._lexicon = lexicon
        self._low = confident_low
        self._high = confident_high

    def judge(self, answer: str, context: list[RetrievedChunk]) -> GroundednessVerdict:
        """Judge how grounded *answer* is in *context*."""
        sentences = sentence_split(answer)
        if not sentences or not context:
            return GroundednessVerdict(0.0, meaningful=False, supported_sentences=0, total_sentences=len(sentences))

        context_concepts: set[str] = set()
        for chunk in context:
            context_concepts |= set(self._lexicon.concepts_in_text(chunk.record.content))

        supported = 0
        for sentence in sentences:
            sentence_concepts = set(self._lexicon.concepts_in_text(sentence))
            if not sentence_concepts:
                continue  # no factual content to verify
            if sentence_concepts <= context_concepts:
                supported += 1
        score = supported / len(sentences)
        meaningful = score <= self._low or score >= self._high
        return GroundednessVerdict(
            score=score,
            meaningful=meaningful,
            supported_sentences=supported,
            total_sentences=len(sentences),
        )
