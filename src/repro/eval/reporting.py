"""Table formatting for evaluation results.

Renders the same row/column structure as the paper's tables: absolute
metrics side by side with percentage variations (Table 1), or pure
percent-variation grids against a reference system (Tables 2–4).
"""

from __future__ import annotations

from repro.eval.harness import EvaluationResult
from repro.eval.metrics import RetrievalMetrics, percent_variation


def format_comparison_table(
    reference_name: str,
    reference: EvaluationResult,
    system_name: str,
    system: EvaluationResult,
    title: str = "",
) -> str:
    """Table-1-style rendering: reference, system, % variation per metric."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'Metric':<8} {reference_name:>10} {system_name:>10} {'% Var':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for label, name in zip(RetrievalMetrics.LABELS, RetrievalMetrics.FIELDS):
        ref_value = getattr(reference.metrics, name)
        sys_value = getattr(system.metrics, name)
        variation = percent_variation(sys_value, ref_value)
        arrow = "↑" if variation > 0 else ("↓" if variation < 0 else "=")
        lines.append(f"{label:<8} {ref_value:>10.4f} {sys_value:>10.4f} {variation:>8.1f} {arrow}")
    lines.append(
        f"answered: {reference_name} {reference.answered}/{reference.total}"
        f" | {system_name} {system.answered}/{system.total}"
    )
    return "\n".join(lines)


def format_variation_table(
    reference: EvaluationResult,
    variants: dict[str, EvaluationResult],
    title: str = "",
    metric_names: tuple[str, ...] | None = None,
) -> str:
    """Tables 2–4 rendering: % variation of each variant w.r.t. the reference."""
    names = metric_names or RetrievalMetrics.FIELDS
    labels = {
        field_name: label
        for field_name, label in zip(RetrievalMetrics.FIELDS, RetrievalMetrics.LABELS)
    }
    lines = []
    if title:
        lines.append(title)
    header = f"{'% var':<8}" + "".join(f"{name:>10}" for name in variants)
    lines.append(header)
    lines.append("-" * len(header))
    for name in names:
        row = f"{labels[name]:<8}"
        ref_value = getattr(reference.metrics, name)
        for variant_result in variants.values():
            variation = percent_variation(getattr(variant_result.metrics, name), ref_value)
            row += f"{variation:>10.1f}"
        lines.append(row)
    return "\n".join(lines)


def variation_grid(
    reference: EvaluationResult, variants: dict[str, EvaluationResult]
) -> dict[str, dict[str, float]]:
    """Machine-readable form of :func:`format_variation_table`."""
    grid: dict[str, dict[str, float]] = {}
    for variant_name, result in variants.items():
        grid[variant_name] = {
            metric: percent_variation(
                getattr(result.metrics, metric), getattr(reference.metrics, metric)
            )
            for metric in RetrievalMetrics.FIELDS
        }
    return grid
