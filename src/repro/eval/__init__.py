"""Evaluation: metrics, splits, harness, groundedness, reporting."""

from repro.eval.groundedness import GroundednessJudge, GroundednessVerdict
from repro.eval.harness import (
    EvaluationResult,
    QueryOutcome,
    RetrievalEvaluator,
    Retriever,
    hss_retriever,
    prev_retriever,
    searcher_retriever,
)
from repro.eval.metrics import (
    REPORTED_CUTOFFS,
    RetrievalMetrics,
    average_metrics,
    compute_query_metrics,
    hit_rate_at,
    percent_variation,
    precision_at,
    recall_at,
    reciprocal_rank,
)
from repro.eval.reporting import format_comparison_table, format_variation_table, variation_grid
from repro.eval.splits import DatasetSplit, split_dataset

__all__ = [
    "GroundednessJudge",
    "GroundednessVerdict",
    "EvaluationResult",
    "QueryOutcome",
    "RetrievalEvaluator",
    "Retriever",
    "hss_retriever",
    "prev_retriever",
    "searcher_retriever",
    "REPORTED_CUTOFFS",
    "RetrievalMetrics",
    "average_metrics",
    "compute_query_metrics",
    "hit_rate_at",
    "percent_variation",
    "precision_at",
    "recall_at",
    "reciprocal_rank",
    "format_comparison_table",
    "format_variation_table",
    "variation_grid",
    "DatasetSplit",
    "split_dataset",
]
