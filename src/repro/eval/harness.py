"""Retrieval evaluation harness.

Runs any retriever — production HSS, its ablations, the legacy engine, a
query-expansion variant — over a labeled query dataset and aggregates the
paper's metrics with the paper's conventions:

* metrics are computed at **document** granularity (chunk rankings are
  collapsed to their best chunk per document);
* dataset averages are taken **over the queries for which a non-empty
  result list was obtained**, and the answered fraction is reported
  separately — this is how Table 1 can show the legacy engine's numbers
  even though it fails to return anything for ~81% of human questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.keyword_engine import PrevKeywordEngine
from repro.corpus.queries import LabeledQuery
from repro.eval.metrics import RetrievalMetrics, average_metrics, compute_query_metrics
from repro.search.hybrid import HybridSemanticSearch
from repro.search.results import dedupe_by_document

#: A retriever maps a query string to a ranked list of document ids.
Retriever = Callable[[str], list[str]]


@dataclass(frozen=True)
class QueryOutcome:
    """Evaluation record of one query."""

    query_id: str
    answered: bool
    metrics: RetrievalMetrics


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregate evaluation of one retriever on one dataset."""

    metrics: RetrievalMetrics
    answered: int
    total: int
    outcomes: tuple[QueryOutcome, ...] = field(default_factory=tuple)

    @property
    def answered_fraction(self) -> float:
        """Share of queries with a non-empty result list."""
        return self.answered / self.total if self.total else 0.0


class RetrievalEvaluator:
    """Evaluates retrievers over labeled datasets."""

    def evaluate(self, retrieve: Retriever, dataset: list[LabeledQuery]) -> EvaluationResult:
        """Run *retrieve* on every query and aggregate the paper's metrics."""
        outcomes: list[QueryOutcome] = []
        answered_metrics: list[RetrievalMetrics] = []
        for query in dataset:
            ranked = retrieve(query.text)
            answered = bool(ranked)
            metrics = compute_query_metrics(ranked, query.relevant_docs)
            outcomes.append(QueryOutcome(query_id=query.query_id, answered=answered, metrics=metrics))
            if answered:
                answered_metrics.append(metrics)
        return EvaluationResult(
            metrics=average_metrics(answered_metrics),
            answered=len(answered_metrics),
            total=len(dataset),
            outcomes=tuple(outcomes),
        )


def hss_retriever(searcher: HybridSemanticSearch) -> Retriever:
    """Adapt a hybrid searcher into a document-id retriever."""

    def retrieve(query: str) -> list[str]:
        results = dedupe_by_document(searcher.search(query))
        return [result.doc_id for result in results]

    return retrieve


def prev_retriever(engine: PrevKeywordEngine, n: int = 50) -> Retriever:
    """Adapt the legacy keyword engine into a document-id retriever."""

    def retrieve(query: str) -> list[str]:
        return [result.doc_id for result in engine.search(query, n=n)]

    return retrieve


def searcher_retriever(search: Callable[[str], list], name: str = "") -> Retriever:
    """Adapt any ``search(query) -> list[RetrievedChunk]`` callable.

    Used for the expansion variants (QGA/MQ1/MQ2), which expose ``search``
    but are not :class:`HybridSemanticSearch` instances.
    """

    def retrieve(query: str) -> list[str]:
        return [result.doc_id for result in dedupe_by_document(search(query))]

    return retrieve
