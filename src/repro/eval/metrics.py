"""Retrieval metrics (Section 7).

The paper evaluates retrieval with precision@n, recall@n, binary hit
rate@n and MRR, at document granularity.  All functions take a ranked list
of document ids and the set of relevant document ids.
"""

from __future__ import annotations

from dataclasses import dataclass


def precision_at(ranked: list[str], relevant: frozenset[str] | set[str], n: int) -> float:
    """Fraction of the top *n* results that are relevant.

    The denominator is *n* even when fewer results were returned, matching
    the standard definition (an engine that returns little is penalized).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    hits = sum(1 for doc_id in ranked[:n] if doc_id in relevant)
    return hits / n


def recall_at(ranked: list[str], relevant: frozenset[str] | set[str], n: int) -> float:
    """Fraction of the relevant documents found in the top *n* results."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not relevant:
        return 0.0
    hits = sum(1 for doc_id in ranked[:n] if doc_id in relevant)
    return hits / len(relevant)


def hit_rate_at(ranked: list[str], relevant: frozenset[str] | set[str], n: int) -> float:
    """Binary hit rate@n: 1.0 when the top *n* contain ≥ 1 relevant result."""
    if n <= 0:
        raise ValueError("n must be positive")
    return 1.0 if any(doc_id in relevant for doc_id in ranked[:n]) else 0.0


def reciprocal_rank(ranked: list[str], relevant: frozenset[str] | set[str]) -> float:
    """1/rank of the first relevant result (0.0 when none is retrieved)."""
    for position, doc_id in enumerate(ranked, start=1):
        if doc_id in relevant:
            return 1.0 / position
    return 0.0


#: The cut-offs reported in Tables 1–4.
REPORTED_CUTOFFS = (1, 4, 50)


@dataclass(frozen=True)
class RetrievalMetrics:
    """The paper's metric set for one query or one dataset average."""

    p_at_1: float = 0.0
    p_at_4: float = 0.0
    p_at_50: float = 0.0
    r_at_1: float = 0.0
    r_at_4: float = 0.0
    r_at_50: float = 0.0
    hit_at_1: float = 0.0
    hit_at_4: float = 0.0
    hit_at_50: float = 0.0
    mrr: float = 0.0

    #: Row order used by every results table.
    FIELDS = (
        "p_at_1", "p_at_4", "p_at_50",
        "r_at_1", "r_at_4", "r_at_50",
        "hit_at_1", "hit_at_4", "hit_at_50",
        "mrr",
    )

    #: Paper-style row labels, aligned with :attr:`FIELDS`.
    LABELS = ("p@1", "p@4", "p@50", "r@1", "r@4", "r@50", "hit@1", "hit@4", "hit@50", "MRR")

    def as_dict(self) -> dict[str, float]:
        """Metric name → value, in table order."""
        return {name: getattr(self, name) for name in self.FIELDS}


def compute_query_metrics(ranked: list[str], relevant: frozenset[str] | set[str]) -> RetrievalMetrics:
    """All reported metrics for one query."""
    return RetrievalMetrics(
        p_at_1=precision_at(ranked, relevant, 1),
        p_at_4=precision_at(ranked, relevant, 4),
        p_at_50=precision_at(ranked, relevant, 50),
        r_at_1=recall_at(ranked, relevant, 1),
        r_at_4=recall_at(ranked, relevant, 4),
        r_at_50=recall_at(ranked, relevant, 50),
        hit_at_1=hit_rate_at(ranked, relevant, 1),
        hit_at_4=hit_rate_at(ranked, relevant, 4),
        hit_at_50=hit_rate_at(ranked, relevant, 50),
        mrr=reciprocal_rank(ranked, relevant),
    )


def average_metrics(per_query: list[RetrievalMetrics]) -> RetrievalMetrics:
    """Mean of per-query metrics (empty input averages to zeros)."""
    if not per_query:
        return RetrievalMetrics()
    count = len(per_query)
    sums = {name: 0.0 for name in RetrievalMetrics.FIELDS}
    for metrics in per_query:
        for name in RetrievalMetrics.FIELDS:
            sums[name] += getattr(metrics, name)
    return RetrievalMetrics(**{name: total / count for name, total in sums.items()})


def percent_variation(value: float, reference: float) -> float:
    """Percentage change of *value* with respect to *reference*.

    This is how Tables 1–4 compare systems; a zero reference with a nonzero
    value reports +100% per unit convention (the paper never hits this
    case on averages).
    """
    if reference == 0.0:
        return 0.0 if value == 0.0 else float("inf")
    return 100.0 * (value - reference) / reference
