"""Validation/test splitting.

Section 7: "We split both datasets in two parts: validation (2/3 of
queries) and test (1/3 of queries)."  The split is a deterministic seeded
shuffle so that every component of the evaluation sees the same partition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.queries import LabeledQuery


@dataclass(frozen=True)
class DatasetSplit:
    """A validation/test partition of one query dataset."""

    validation: list[LabeledQuery]
    test: list[LabeledQuery]

    @property
    def total(self) -> int:
        """Total number of queries in both parts."""
        return len(self.validation) + len(self.test)


def split_dataset(
    queries: list[LabeledQuery], validation_fraction: float = 2.0 / 3.0, seed: int = 31
) -> DatasetSplit:
    """Shuffle and partition *queries* into validation and test parts."""
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must lie strictly between 0 and 1")
    shuffled = list(queries)
    random.Random(seed).shuffle(shuffled)
    cut = round(len(shuffled) * validation_fraction)
    return DatasetSplit(validation=shuffled[:cut], test=shuffled[cut:])
