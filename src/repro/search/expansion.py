"""Query-expansion variants (Table 3).

The paper tested three LLM-based expansions of the input query, none of
which improved over plain HSS:

* **QGA** — ask the LLM to answer the question *without* context, then
  retrieve with the query expanded by that blind answer.  The blind answer
  mixes in generic boilerplate and off-topic terms, which dilutes the query.
* **MQ1** — ask the LLM for several related queries, run a hybrid search per
  query, and fuse the per-query rankings (multi-query hybrid search).
* **MQ2** — same generated queries, but one standard hybrid search over the
  *text concatenation* of all queries and the *average embedding* of all
  queries.

Each variant wraps a configured :class:`~repro.search.hybrid.HybridSemanticSearch`
so the rest of the pipeline is byte-identical to production.
"""

from __future__ import annotations

import numpy as np

from repro.llm.base import ChatCompletionClient
from repro.llm.prompts import build_blind_answer_prompt, build_related_queries_prompt
from repro.search.hybrid import HybridSemanticSearch
from repro.search.results import RetrievedChunk


class QgaExpansion:
    """Query + Generated Answer expansion."""

    def __init__(self, searcher: HybridSemanticSearch, llm: ChatCompletionClient) -> None:
        self._searcher = searcher
        self._llm = llm

    def expand(self, query: str) -> str:
        """Return the query expanded with a context-free generated answer."""
        response = self._llm.complete(build_blind_answer_prompt(query), max_tokens=128)
        return f"{query} {response.content}"

    def search(self, query: str, filters: dict[str, str] | None = None) -> list[RetrievedChunk]:
        """HSS over the expanded query."""
        return self._searcher.search(self.expand(query), filters=filters)


class _MultiQueryBase:
    """Shared related-query generation for MQ1/MQ2."""

    def __init__(
        self, searcher: HybridSemanticSearch, llm: ChatCompletionClient, num_queries: int = 3
    ) -> None:
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        self._searcher = searcher
        self._llm = llm
        self._num_queries = num_queries

    def generate_queries(self, query: str) -> list[str]:
        """The original query plus the LLM-generated related queries."""
        response = self._llm.complete(
            build_related_queries_prompt(query, self._num_queries), max_tokens=256
        )
        related = [line.strip() for line in response.content.splitlines() if line.strip()]
        return [query, *related[: self._num_queries]]


class Mq1Expansion(_MultiQueryBase):
    """Multi-query expansion, variant 1: per-query search fused by RRF."""

    def search(self, query: str, filters: dict[str, str] | None = None) -> list[RetrievedChunk]:
        """One hybrid search per generated query, fused into one ranking."""
        return self._searcher.search_multi(self.generate_queries(query), filters=filters)


class Mq2Expansion(_MultiQueryBase):
    """Multi-query expansion, variant 2: concatenated text + mean embedding."""

    def search(self, query: str, filters: dict[str, str] | None = None) -> list[RetrievedChunk]:
        """Single hybrid search on the concatenation and average embedding."""
        queries = self.generate_queries(query)
        concatenated = " ".join(queries)
        embedder = self._searcher.index.embedder
        vectors = np.stack([embedder.embed(q) for q in queries])
        mean_vector = vectors.mean(axis=0)
        norm = float(np.linalg.norm(mean_vector))
        if norm > 1e-12:
            mean_vector = mean_vector / norm
        return self._searcher.search_fused_vector(concatenated, mean_vector, filters=filters)
