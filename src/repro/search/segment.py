"""Lucene-style segmented postings: sealed segments + a write buffer.

The monolithic index couples ingestion to query cost: every upsert mutates
the one postings structure every query reads, and the kernel layer
(:mod:`repro.search.kernels`) would have to re-freeze the whole collection
on every write.  The segmented design decouples them the way Lucene does:

* **Write buffer** — a small mutable :class:`~repro.search.inverted
  .InvertedIndex` per field.  Upserts and deletes of buffered documents are
  plain dict operations and are *immediately* visible to queries, so live
  ingestion needs no stop-the-world rebuild.
* **Sealed segments** — once the buffer reaches ``flush_threshold``
  documents it is frozen into a :class:`SealedSegment`: per-field
  :class:`~repro.search.kernels.KernelPostings` (immutable contiguous
  arrays) plus one *shared* live mask.  Deleting a sealed document flips a
  bit and records the document's length and distinct terms in per-field
  ledgers, so global statistics stay exact without touching the arrays.
* **Background merges** — maintenance on the simulated clock folds small
  or tombstone-heavy segments together (:meth:`SegmentedTextStore
  .run_maintenance`), which is all ``vacuum()`` fundamentally is.

**Exact global statistics.**  BM25 is a function of the collection's
document count, per-term document frequencies and total analyzed length.
Each is kept as an exact integer per segment (raw totals minus the deleted
ledgers) and summed across segments + buffer, so the one float division
``total_length / document_count`` sees bit-identical operands to the
monolithic index — the keystone of the byte-identical differential gate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.search.inverted import InvertedIndex
from repro.search.kernels import KernelPostings, KernelView
from repro.text.analyzer import ItalianAnalyzer


@dataclass(frozen=True)
class IndexConfig:
    """Layout and maintenance knobs of a :class:`~repro.search.index.SearchIndex`.

    Attributes:
        use_kernels: score with the vectorized numpy kernels (bit-identical
            to the loop scorer; see :mod:`repro.search.kernels`).
        segmented: segmented postings (live ingestion) vs the monolithic
            layout (kept for the differential gate).
        flush_threshold: buffered documents that trigger an automatic seal.
        max_segments: merge down to this many segments during maintenance.
        merge_factor: how many of the smallest segments one merge folds.
        segment_dead_ratio: tombstone fraction above which maintenance
            compacts a segment in place.
        merge_interval: simulated seconds between maintenance sweeps.
        vacuum_tombstone_ratio: default threshold of
            :meth:`~repro.search.index.SearchIndex.vacuum` — a no-arg
            vacuum only rebuilds once this fraction of chunks is dead.
    """

    use_kernels: bool = True
    segmented: bool = True
    flush_threshold: int = 128
    max_segments: int = 8
    merge_factor: int = 4
    segment_dead_ratio: float = 0.25
    merge_interval: float = 900.0
    vacuum_tombstone_ratio: float = 0.35

    def __post_init__(self) -> None:
        if self.flush_threshold < 1:
            raise ValueError("flush_threshold must be at least 1")
        if self.max_segments < 1:
            raise ValueError("max_segments must be at least 1")
        if self.merge_factor < 2:
            raise ValueError("merge_factor must be at least 2")
        if not 0.0 <= self.segment_dead_ratio <= 1.0:
            raise ValueError("segment_dead_ratio must lie in [0, 1]")
        if not 0.0 <= self.vacuum_tombstone_ratio <= 1.0:
            raise ValueError("vacuum_tombstone_ratio must lie in [0, 1]")


class SegmentField:
    """One field's frozen postings inside a segment, plus deletion ledgers.

    A sealed segment cannot remove postings, so deletes are accounted for
    on the side: ``deleted_total_length`` and ``deleted_df`` record what
    the dead documents contributed to this field's statistics.  Raw kernel
    totals minus the ledgers give the exact live statistics.
    """

    __slots__ = ("kernel", "deleted_total_length", "deleted_df")

    def __init__(self, kernel: KernelPostings) -> None:
        self.kernel = kernel
        self.deleted_total_length = 0
        self.deleted_df: dict[str, int] = {}

    @property
    def live_total_length(self) -> int:
        """Exact summed analyzed length of the live member documents."""
        return self.kernel.total_length - self.deleted_total_length

    def live_document_frequency(self, term: str) -> int:
        """Exact number of live member documents containing *term*."""
        df = self.kernel.document_frequency(term)
        if not df:
            return 0
        return df - self.deleted_df.get(term, 0)


class SealedSegment:
    """An immutable generation of documents with a shared live mask.

    All fields of one segment share the same slot order (every document
    indexes every searchable field), so a single boolean ``live`` array
    serves them all: a tombstone flips one bit and bumps the segment's
    ``epoch`` — the per-segment cache-invalidation stamp — while the
    postings arrays never move.
    """

    def __init__(self, segment_id: int, doc_ids: np.ndarray, fields: dict[str, SegmentField]) -> None:
        self.segment_id = segment_id
        self.epoch = 0
        self.doc_ids = doc_ids
        self.fields = fields
        self.live = np.ones(doc_ids.size, dtype=bool)
        self.live_count = int(doc_ids.size)

    def __len__(self) -> int:
        return int(self.doc_ids.size)

    @property
    def dead_ratio(self) -> float:
        """Fraction of member documents that are tombstoned."""
        if not self.doc_ids.size:
            return 0.0
        return 1.0 - self.live_count / self.doc_ids.size

    def slot_of(self, internal: int) -> int:
        """The member slot of *internal*; -1 when not a member."""
        position = int(np.searchsorted(self.doc_ids, internal))
        if position < self.doc_ids.size and int(self.doc_ids[position]) == internal:
            return position
        return -1

    def tombstone(self, internal: int, field_terms: dict[str, list[str]]) -> bool:
        """Mark *internal* dead; *field_terms* re-derives its ledger entries.

        The analyzer is deterministic, so re-analyzing the record's field
        text yields exactly the distinct terms that were indexed at add
        time — no per-document term list needs to be stored.
        """
        slot = self.slot_of(internal)
        if slot < 0 or not self.live[slot]:
            return False
        self.live[slot] = False
        self.live_count -= 1
        self.epoch += 1
        for name, field in self.fields.items():
            field.deleted_total_length += int(field.kernel.lengths[slot])
            for term in set(field_terms.get(name, ())):
                field.deleted_df[term] = field.deleted_df.get(term, 0) + 1
        return True

    def live_internal_ids(self) -> list[int]:
        """The live member document ids, ascending."""
        return [int(i) for i in self.doc_ids[self.live]]


def seal_buffer(segment_id: int, buffers: dict[str, InvertedIndex]) -> SealedSegment | None:
    """Freeze the write buffer into a sealed segment (None when empty).

    Every field buffer holds the same document set, so the first one fixes
    the shared slot order and every field kernel is built against it.
    """
    field_names = list(buffers)
    if not field_names or not len(buffers[field_names[0]]):
        return None
    first = buffers[field_names[0]]
    doc_ids = np.array(sorted(first.doc_ids()), dtype=np.int64)
    fields = {
        name: SegmentField(buffer.to_kernel(doc_ids=doc_ids))
        for name, buffer in buffers.items()
    }
    return SealedSegment(segment_id, doc_ids, fields)


def merge_segments(segment_id: int, segments: list[SealedSegment]) -> SealedSegment | None:
    """Fold several segments into one, dropping tombstoned documents."""
    if not segments:
        return None
    field_names = list(segments[0].fields)
    merged_ids: list[int] = []
    for segment in segments:
        merged_ids.extend(segment.live_internal_ids())
    if not merged_ids:
        return None
    doc_ids = np.array(sorted(merged_ids), dtype=np.int64)
    fields: dict[str, SegmentField] = {}
    for name in field_names:
        doc_lengths: dict[int, int] = {}
        postings: dict[str, dict[int, int]] = {}
        for segment in segments:
            seg_lengths, seg_postings = segment.fields[name].kernel.to_dicts(segment.live)
            doc_lengths.update(seg_lengths)
            for term, term_postings in seg_postings.items():
                postings.setdefault(term, {}).update(term_postings)
        fields[name] = SegmentField(KernelPostings.build(doc_lengths, postings, doc_ids=doc_ids))
    return SealedSegment(segment_id, doc_ids, fields)


class SegmentedTextStore:
    """All searchable-field postings of one segmented index.

    Owns the sealed segment list, the per-field write buffers, and the
    document→segment map; :class:`~repro.search.index.SearchIndex`
    delegates every full-text read and write here when configured
    ``segmented``.
    """

    def __init__(
        self,
        field_names: tuple[str, ...],
        analyzer: ItalianAnalyzer,
        config: IndexConfig,
    ) -> None:
        self.config = config
        self.analyzer = analyzer
        self.field_names = tuple(field_names)
        self.segments: list[SealedSegment] = []
        self.buffers: dict[str, InvertedIndex] = {
            name: InvertedIndex(analyzer, use_kernels=config.use_kernels)
            for name in self.field_names
        }
        self.op_counts: dict[str, int] = {}
        self._segment_by_internal: dict[int, SealedSegment] = {}
        self._next_segment_id = 0
        self._buffer_writes = 0
        self._last_maintenance: float | None = None
        self._views: dict[str, SegmentedFieldView] = {}

    # -- sizing / stamps ---------------------------------------------------

    def buffered_count(self) -> int:
        """Documents currently in the (unsealed) write buffer."""
        if not self.field_names:
            return 0
        return len(self.buffers[self.field_names[0]])

    def doc_count(self) -> int:
        """Live documents across sealed segments and the buffer."""
        return sum(segment.live_count for segment in self.segments) + self.buffered_count()

    def segment_stamp(self) -> tuple:
        """The cache-invalidation stamp: per-segment epochs + buffer writes.

        Changes on every content-changing write (adds and buffer removals
        bump the buffer-write counter, sealed-document tombstones bump that
        segment's epoch) and on segment replacement (merges introduce new
        segment ids), but an untouched segment's component stays stable.
        """
        parts: list[tuple] = [
            (segment.segment_id, segment.epoch) for segment in self.segments
        ]
        parts.append(("buffer", self._buffer_writes))
        return tuple(parts)

    # -- writes ------------------------------------------------------------

    def add(self, internal: int, field_texts: dict[str, str]) -> None:
        """Buffer one document; auto-seals at the flush threshold."""
        for name, buffer in self.buffers.items():
            buffer.add(internal, field_texts[name])
        self._buffer_writes += 1
        if self.buffered_count() >= self.config.flush_threshold:
            self.flush()

    def remove(self, internal: int, field_texts: dict[str, str]) -> bool:
        """Remove a document: for-real from the buffer, masked when sealed."""
        segment = self._segment_by_internal.get(internal)
        if segment is not None:
            field_terms = {
                name: self.analyzer.analyze(text) for name, text in field_texts.items()
            }
            if segment.tombstone(internal, field_terms):
                del self._segment_by_internal[internal]
                return True
            return False
        if not self.field_names:
            return False
        if internal not in self.buffers[self.field_names[0]]:
            return False
        for buffer in self.buffers.values():
            buffer.remove(internal)
        self._buffer_writes += 1
        return True

    def flush(self) -> SealedSegment | None:
        """Seal the write buffer into a new immutable segment."""
        segment = seal_buffer(self._next_segment_id, self.buffers)
        if segment is None:
            return None
        self._next_segment_id += 1
        self.segments.append(segment)
        for internal in segment.doc_ids:
            self._segment_by_internal[int(internal)] = segment
        self.buffers = {
            name: InvertedIndex(self.analyzer, use_kernels=self.config.use_kernels)
            for name in self.field_names
        }
        self._count_op("seal")
        return segment

    # -- maintenance -------------------------------------------------------

    def run_maintenance(self, now: float) -> dict[str, int]:
        """One maintenance sweep on the simulated clock; returns op counts.

        Compacts tombstone-heavy segments in place and folds the smallest
        segments together while the segment count exceeds ``max_segments``.
        Maintenance preserves live content exactly — queries before and
        after a sweep return byte-identical results.
        """
        ops: dict[str, int] = {}
        if (
            self._last_maintenance is not None
            and now - self._last_maintenance < self.config.merge_interval
        ):
            return ops
        self._last_maintenance = now
        for segment in list(self.segments):
            if segment.dead_ratio > self.config.segment_dead_ratio:
                self._replace_segments([segment])
                ops["compact"] = ops.get("compact", 0) + 1
                self._count_op("compact")
        while len(self.segments) > self.config.max_segments:
            victims = sorted(self.segments, key=lambda s: (s.live_count, s.segment_id))
            victims = victims[: self.config.merge_factor]
            self._replace_segments(victims)
            ops["merge"] = ops.get("merge", 0) + 1
            self._count_op("merge")
        return ops

    def compact_all(self) -> None:
        """Seal the buffer and fold everything into one all-live segment."""
        self.flush()
        if self.segments:
            self._replace_segments(list(self.segments))

    def _replace_segments(self, victims: list[SealedSegment]) -> None:
        """Atomically swap *victims* for their merged replacement.

        The merged segment is fully built before the segment list mutates,
        mirroring the atomic generation swap a concurrent deployment needs.
        """
        merged = merge_segments(self._next_segment_id, victims)
        victim_ids = {segment.segment_id for segment in victims}
        survivors = [s for s in self.segments if s.segment_id not in victim_ids]
        if merged is not None:
            self._next_segment_id += 1
            survivors.append(merged)
            for internal in merged.doc_ids:
                self._segment_by_internal[int(internal)] = merged
        self.segments = survivors

    def _count_op(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    # -- reads -------------------------------------------------------------

    def view(self, field_name: str) -> "SegmentedFieldView":
        """The reader view of one searchable field (cached)."""
        view = self._views.get(field_name)
        if view is None:
            if field_name not in self.buffers:
                raise KeyError(field_name)
            view = self._views[field_name] = SegmentedFieldView(self, field_name)
        return view

    def segment_of(self, internal: int) -> SealedSegment | None:
        """The sealed segment holding *internal* (None when buffered/dead)."""
        return self._segment_by_internal.get(internal)


class SegmentedFieldView:
    """One field's reader surface over segments + buffer.

    Implements the :class:`~repro.search.inverted.InvertedIndex` read
    protocol (postings / lengths / statistics / ``kernel_views``), so the
    BM25 scorer, the explain path and the cluster's global-statistics
    wrapper all work unchanged on a segmented index.  Statistics are exact
    integers aggregated across segments and buffer.
    """

    def __init__(self, store: SegmentedTextStore, field_name: str) -> None:
        self._store = store
        self._field_name = field_name

    @property
    def analyzer(self) -> ItalianAnalyzer:
        """The analyzer this field indexes and queries with."""
        return self._store.analyzer

    @property
    def kernels_enabled(self) -> bool:
        """Whether the vectorized scoring path is configured on."""
        return self._store.config.use_kernels

    def _buffer(self) -> InvertedIndex:
        return self._store.buffers[self._field_name]

    def _segment_fields(self) -> list[tuple[SealedSegment, SegmentField]]:
        return [
            (segment, segment.fields[self._field_name])
            for segment in self._store.segments
        ]

    def __len__(self) -> int:
        return self._store.doc_count()

    def __contains__(self, doc_id: int) -> bool:
        if doc_id in self._buffer():
            return True
        segment = self._store.segment_of(doc_id)
        return segment is not None

    @property
    def total_length(self) -> int:
        """Exact summed analyzed length of all live documents."""
        total = self._buffer().total_length
        for _, field in self._segment_fields():
            total += field.live_total_length
        return total

    @property
    def average_length(self) -> float:
        """Mean analyzed length of live documents (0 when empty).

        One float division over exact integer aggregates — bit-identical
        to the monolithic index's ``total / count``.
        """
        documents = len(self)
        if documents == 0:
            return 0.0
        return self.total_length / documents

    def document_frequency(self, term: str) -> int:
        """Number of live documents containing *term*."""
        df = self._buffer().document_frequency(term)
        for _, field in self._segment_fields():
            df += field.live_document_frequency(term)
        return df

    def document_length(self, doc_id: int) -> int:
        """Analyzed length of a live document (0 when absent or dead)."""
        buffer = self._buffer()
        if doc_id in buffer:
            return buffer.document_length(doc_id)
        segment = self._store.segment_of(doc_id)
        if segment is None:
            return 0
        slot = segment.slot_of(doc_id)
        if slot < 0 or not segment.live[slot]:
            return 0
        return int(segment.fields[self._field_name].kernel.lengths[slot])

    def postings(self, term: str) -> dict[int, int]:
        """The live ``doc_id -> tf`` map of *term* across segments + buffer."""
        merged: dict[int, int] = {}
        for segment, field in self._segment_fields():
            merged.update(field.kernel.postings_dict(term, segment.live))
        merged.update(self._buffer().postings(term))
        return merged

    def analyze_query(self, query: str) -> list[str]:
        """Analyze a query string with this field's analyzer."""
        return self._store.analyzer.analyze(query)

    def kernel_views(self) -> list[KernelView]:
        """Scorable kernel views: one per sealed segment, plus the buffer."""
        views = [
            KernelView(field.kernel, segment.live)
            for segment, field in self._segment_fields()
            if segment.live_count
        ]
        views.extend(self._buffer().kernel_views())
        return views
