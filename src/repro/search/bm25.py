"""Okapi BM25 ranking (Robertson & Spärck Jones).

The scoring function of the full-text half of Hybrid Search (Section 4).
Implements the standard Lucene-compatible formulation:

    idf(t)       = ln(1 + (N - df + 0.5) / (df + 0.5))
    score(d, q)  = Σ_t idf(t) · tf · (k1 + 1) / (tf + k1 · (1 - b + b · |d|/avgdl))

with the usual defaults k1 = 1.2, b = 0.75.  The scorer works against a
single :class:`~repro.search.inverted.InvertedIndex`; multi-field scoring
with per-field boosts (Azure "scoring profiles") is composed one level up in
:mod:`repro.search.fulltext`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.search.inverted import InvertedIndex


@dataclass(frozen=True)
class Bm25Parameters:
    """BM25 free parameters."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


class Bm25Scorer:
    """Scores an analyzed query against one inverted index."""

    def __init__(self, index: InvertedIndex, parameters: Bm25Parameters | None = None) -> None:
        self._index = index
        self._parameters = parameters or Bm25Parameters()

    def idf(self, term: str) -> float:
        """Lucene-style lower-bounded inverse document frequency of *term*."""
        n = len(self._index)
        if n == 0:
            return 0.0
        df = self._index.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score_all(self, query_terms: list[str]) -> dict[int, float]:
        """BM25 scores of every document matching at least one query term."""
        parameters = self._parameters
        average_length = self._index.average_length or 1.0
        scores: dict[int, float] = {}
        for term in query_terms:
            postings = self._index.postings(term)
            if not postings:
                continue
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                length_norm = 1.0 - parameters.b + parameters.b * (
                    self._index.document_length(doc_id) / average_length
                )
                contribution = idf * tf * (parameters.k1 + 1.0) / (tf + parameters.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + contribution
        return scores

    def score_all_explained(
        self, query_terms: list[str]
    ) -> tuple[dict[int, float], dict[int, dict[str, float]]]:
        """Like :meth:`score_all`, plus a per-term contribution breakdown.

        Returns ``(scores, per_term)`` where ``per_term[doc_id][term]`` is
        the summed BM25 contribution of *term* to that document (repeated
        query terms accumulate, exactly as in :meth:`score_all`).  The
        ``scores`` half is built with the same accumulation order as
        :meth:`score_all`, so it is bitwise-identical to the non-explained
        path; the per-term sums equal the total up to floating-point
        reassociation when a term repeats in the analyzed query.
        """
        parameters = self._parameters
        average_length = self._index.average_length or 1.0
        scores: dict[int, float] = {}
        per_term: dict[int, dict[str, float]] = {}
        for term in query_terms:
            postings = self._index.postings(term)
            if not postings:
                continue
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                length_norm = 1.0 - parameters.b + parameters.b * (
                    self._index.document_length(doc_id) / average_length
                )
                contribution = idf * tf * (parameters.k1 + 1.0) / (tf + parameters.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + contribution
                breakdown = per_term.setdefault(doc_id, {})
                breakdown[term] = breakdown.get(term, 0.0) + contribution
        return scores, per_term

    def top_n(self, query_terms: list[str], n: int) -> list[tuple[int, float]]:
        """The *n* best-scoring documents as ``(doc_id, score)`` pairs."""
        if n <= 0:
            return []
        scores = self.score_all(query_terms)
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:n]
