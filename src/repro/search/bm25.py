"""Okapi BM25 ranking (Robertson & Spärck Jones).

The scoring function of the full-text half of Hybrid Search (Section 4).
Implements the standard Lucene-compatible formulation:

    idf(t)       = ln(1 + (N - df + 0.5) / (df + 0.5))
    score(d, q)  = Σ_t idf(t) · tf · (k1 + 1) / (tf + k1 · (1 - b + b · |d|/avgdl))

with the usual defaults k1 = 1.2, b = 0.75.  The scorer works against a
single :class:`~repro.search.inverted.InvertedIndex`; multi-field scoring
with per-field boosts (Azure "scoring profiles") is composed one level up in
:mod:`repro.search.fulltext`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.work import (
    WORK_DOCS_SCORED,
    WORK_MAXSCORE_ADMITTED,
    WORK_MAXSCORE_PRUNED,
    WORK_POSTINGS_SCANNED,
    WORK_SEGMENTS_TOUCHED,
)
from repro.search.inverted import InvertedIndex
from repro.search.kernels import KernelView

#: Query length (analyzed entries, repeats included) below which pruned
#: top-k is not attempted.  The MaxScore admission check costs a partial
#: sort per processed term; with only a handful of terms the single exact
#: accumulation pass is already cheaper than anything pruning could save.
PRUNE_MIN_TERMS = 8


@dataclass(frozen=True)
class Bm25Parameters:
    """BM25 free parameters."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must lie in [0, 1]")


class Bm25Scorer:
    """Scores an analyzed query against one inverted index.

    Two scoring paths coexist:

    * the **loop** path (:meth:`score_all` / :meth:`score_all_explained`)
      walks postings doc-at-a-time in pure Python — the reference
      implementation, always available;
    * the **kernel** path (:meth:`score_arrays`, and :meth:`top_n` when
      kernels are enabled) scores contiguous postings arrays
      (:mod:`repro.search.kernels`) term-at-a-time with vectorized numpy,
      bit-identical to the loop path by construction and gated so by the
      differential tests.

    *index* may be a plain :class:`~repro.search.inverted.InvertedIndex`,
    a segmented field view, or a cluster view with global statistics —
    anything exposing the reader surface (``postings`` /
    ``document_length`` / ``document_frequency`` / ``average_length`` /
    ``__len__``, plus ``kernel_views`` for the kernel path).

    Args:
        index: the postings reader to score against.
        parameters: BM25 free parameters.
        use_kernels: force the kernel path on or off; ``None`` defers to
            the reader's ``kernels_enabled`` attribute (False when absent).
    """

    def __init__(
        self,
        index: InvertedIndex,
        parameters: Bm25Parameters | None = None,
        use_kernels: bool | None = None,
    ) -> None:
        self._index = index
        self._parameters = parameters or Bm25Parameters()
        if use_kernels is None:
            use_kernels = bool(getattr(index, "kernels_enabled", False))
        self._use_kernels = use_kernels and hasattr(index, "kernel_views")

    @property
    def kernels_active(self) -> bool:
        """True when :meth:`top_n` / :meth:`score_arrays` run vectorized."""
        return self._use_kernels

    def idf(self, term: str) -> float:
        """Lucene-style lower-bounded inverse document frequency of *term*."""
        n = len(self._index)
        if n == 0:
            return 0.0
        df = self._index.document_frequency(term)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score_all(self, query_terms: list[str], work=None) -> dict[int, float]:
        """BM25 scores of every document matching at least one query term.

        *work* is an optional :class:`~repro.obs.work.WorkCounters`; the
        loop scorer is the non-kernel source of truth for
        ``postings_scanned`` and ``docs_scored``.
        """
        parameters = self._parameters
        average_length = self._index.average_length or 1.0
        scores: dict[int, float] = {}
        scanned = 0
        for term in query_terms:
            postings = self._index.postings(term)
            if not postings:
                continue
            scanned += len(postings)
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                length_norm = 1.0 - parameters.b + parameters.b * (
                    self._index.document_length(doc_id) / average_length
                )
                contribution = idf * tf * (parameters.k1 + 1.0) / (tf + parameters.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + contribution
        if work is not None:
            if scanned:
                work.add(WORK_POSTINGS_SCANNED, scanned)
            if scores:
                work.add(WORK_DOCS_SCORED, len(scores))
        return scores

    def score_all_explained(
        self, query_terms: list[str], work=None
    ) -> tuple[dict[int, float], dict[int, dict[str, float]]]:
        """Like :meth:`score_all`, plus a per-term contribution breakdown.

        Returns ``(scores, per_term)`` where ``per_term[doc_id][term]`` is
        the summed BM25 contribution of *term* to that document (repeated
        query terms accumulate, exactly as in :meth:`score_all`).  The
        ``scores`` half is built with the same accumulation order as
        :meth:`score_all`, so it is bitwise-identical to the non-explained
        path; the per-term sums equal the total up to floating-point
        reassociation when a term repeats in the analyzed query.
        """
        parameters = self._parameters
        average_length = self._index.average_length or 1.0
        scores: dict[int, float] = {}
        per_term: dict[int, dict[str, float]] = {}
        scanned = 0
        for term in query_terms:
            postings = self._index.postings(term)
            if not postings:
                continue
            scanned += len(postings)
            idf = self.idf(term)
            for doc_id, tf in postings.items():
                length_norm = 1.0 - parameters.b + parameters.b * (
                    self._index.document_length(doc_id) / average_length
                )
                contribution = idf * tf * (parameters.k1 + 1.0) / (tf + parameters.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + contribution
                breakdown = per_term.setdefault(doc_id, {})
                breakdown[term] = breakdown.get(term, 0.0) + contribution
        if work is not None:
            if scanned:
                work.add(WORK_POSTINGS_SCANNED, scanned)
            if scores:
                work.add(WORK_DOCS_SCORED, len(scores))
        return scores, per_term

    def top_n(self, query_terms: list[str], n: int, work=None) -> list[tuple[int, float]]:
        """The *n* best-scoring documents as ``(doc_id, score)`` pairs."""
        if n <= 0:
            return []
        if self._use_kernels:
            return self._top_n_kernel(query_terms, n, work=work)
        scores = self.score_all(query_terms, work=work)
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:n]

    # -- kernel path -----------------------------------------------------------

    def _term_sequence(self, query_terms: list[str]) -> list[tuple[str, float]]:
        """The analyzed query as ``(term, idf)`` pairs, repeats preserved."""
        idf_cache: dict[str, float] = {}
        sequence: list[tuple[str, float]] = []
        for term in query_terms:
            idf = idf_cache.get(term)
            if idf is None:
                idf = idf_cache[term] = self.idf(term)
            sequence.append((term, idf))
        return sequence

    def score_arrays(
        self, query_terms: list[str], work=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Kernel-path equivalent of :meth:`score_all`, as parallel arrays.

        Returns ``(doc_ids, scores)`` covering every live document matching
        at least one query term.  The id→score mapping is bit-identical to
        the :meth:`score_all` dict: contributions are accumulated
        term-at-a-time in analyzed-query order with the loop scorer's exact
        operator sequence (see :mod:`repro.search.kernels`).
        """
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if not self._use_kernels:
            scores = self.score_all(query_terms, work=work)
            if not scores:
                return empty
            ids = np.fromiter(scores.keys(), dtype=np.int64, count=len(scores))
            values = np.fromiter(scores.values(), dtype=np.float64, count=len(scores))
            return ids, values
        views: list[KernelView] = self._index.kernel_views()
        if not views:
            return empty
        if work is not None:
            work.add(WORK_SEGMENTS_TOUCHED, len(views))
        sequence = self._term_sequence(query_terms)
        k1, b = self._parameters.k1, self._parameters.b
        average_length = self._index.average_length or 1.0
        id_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        scored = 0
        for view in views:
            acc, touched = view.kernel.accumulate_bm25(
                sequence, k1, b, average_length, work=work
            )
            slots = view.live_slots(np.nonzero(touched)[0])
            if slots.size:
                scored += int(slots.size)
                id_parts.append(view.kernel.doc_ids[slots])
                score_parts.append(acc[slots])
        if work is not None and scored:
            work.add(WORK_DOCS_SCORED, scored)
        if not id_parts:
            return empty
        return np.concatenate(id_parts), np.concatenate(score_parts)

    def _rank_exact(
        self,
        views: list[KernelView],
        sequence: list[tuple[str, float]],
        n: int,
        k1: float,
        b: float,
        average_length: float,
        work=None,
    ) -> list[tuple[int, float]]:
        """One exact accumulation pass in query order, then select top-*n*.

        Terms are accumulated in analyzed-query order, so the scores come
        out of the single pass already bit-identical to :meth:`score_all`
        — no rescore needed.  This is the fast path for the short queries
        that dominate real traffic.
        """
        id_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        scored = 0
        for view in views:
            acc, touched = view.kernel.accumulate_bm25(
                sequence, k1, b, average_length, work=work
            )
            slots = view.live_slots(np.nonzero(touched)[0])
            if slots.size:
                scored += int(slots.size)
                id_parts.append(view.kernel.doc_ids[slots])
                score_parts.append(acc[slots])
        if work is not None and scored:
            work.add(WORK_DOCS_SCORED, scored)
        if not id_parts:
            return []
        ids = np.concatenate(id_parts)
        scores = np.concatenate(score_parts)
        if ids.size > n:
            # Select before sorting: keep everything scoring at least the
            # n-th best value (ties included), then tie-break only those.
            # Exact float comparisons — the survivors and their order are
            # identical to lexsorting the full candidate set.
            kth = np.partition(scores, ids.size - n)[ids.size - n]
            keep = scores >= kth
            ids, scores = ids[keep], scores[keep]
        ranked = np.lexsort((ids, -scores))[:n]
        return [(int(ids[i]), float(scores[i])) for i in ranked]

    def _top_n_kernel(
        self, query_terms: list[str], n: int, work=None
    ) -> list[tuple[int, float]]:
        """Pruned top-*n* over kernel views, bit-identical to the loop path.

        Short queries (fewer than :data:`PRUNE_MIN_TERMS` analyzed entries)
        take the single-pass :meth:`_rank_exact` path.  Longer ones get
        MaxScore-style admission: terms are processed in descending
        upper-bound order; once *n* live documents are on the scoreboard
        and the unprocessed terms' summed bounds cannot lift an unseen
        document past the current n-th best partial score, admission stops
        — no document first matched by a later term can reach the top-n.
        The surviving candidate set is then *exactly rescored* in
        analyzed-query order, so every returned score carries the same
        bits as :meth:`score_all`, and ties break identically.
        """
        views: list[KernelView] = self._index.kernel_views()
        if not views:
            return []
        if work is not None:
            work.add(WORK_SEGMENTS_TOUCHED, len(views))
        sequence = self._term_sequence(query_terms)
        k1, b = self._parameters.k1, self._parameters.b
        average_length = self._index.average_length or 1.0
        if len(sequence) < PRUNE_MIN_TERMS:
            return self._rank_exact(views, sequence, n, k1, b, average_length, work=work)
        bounds = [
            max(view.kernel.term_bound(term, idf, k1, b, average_length) for view in views)
            for term, idf in sequence
        ]
        order = sorted(range(len(sequence)), key=lambda i: (-bounds[i], i))
        accs = [np.zeros(len(view.kernel), dtype=np.float64) for view in views]
        toucheds = [np.zeros(len(view.kernel), dtype=bool) for view in views]
        stopped_at = len(order)
        for position, entry_index in enumerate(order):
            entry = sequence[entry_index]
            for view, acc, touched in zip(views, accs, toucheds):
                view.kernel.accumulate_bm25(
                    [entry], k1, b, average_length, acc=acc, touched=touched, work=work
                )
            partials = [
                acc[touched if view.live is None else (touched & view.live)]
                for view, acc, touched in zip(views, accs, toucheds)
            ]
            live_count = sum(part.size for part in partials)
            if live_count < n:
                continue
            pooled = np.concatenate(partials)
            theta = float(np.partition(pooled, live_count - n)[live_count - n])
            remaining = sum(bounds[i] for i in order[position + 1 :])
            # Deflate theta a hair: partial sums reassociate relative to the
            # final accumulation order, so an ulp-high theta must not prune.
            if remaining < theta * (1.0 - 1e-9):
                stopped_at = position + 1
                break
        if work is not None:
            # Pruned work = the postings the admission stop let us skip:
            # every posting of every unprocessed term.  Zero when admission
            # ran the full term list — "pruning stopped firing" is visible
            # as this counter going to 0.
            pruned = sum(
                view.kernel.document_frequency(sequence[entry_index][0])
                for entry_index in order[stopped_at:]
                for view in views
            )
            if pruned:
                work.add(WORK_MAXSCORE_PRUNED, pruned)
        id_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        admitted = 0
        for view, touched in zip(views, toucheds):
            candidates = touched if view.live is None else (touched & view.live)
            slots = np.nonzero(candidates)[0]
            if not slots.size:
                continue
            admitted += int(slots.size)
            acc, _ = view.kernel.accumulate_bm25(
                sequence, k1, b, average_length, candidate_mask=candidates, work=work
            )
            id_parts.append(view.kernel.doc_ids[slots])
            score_parts.append(acc[slots])
        if work is not None and admitted:
            work.add(WORK_MAXSCORE_ADMITTED, admitted)
            work.add(WORK_DOCS_SCORED, admitted)
        if not id_parts:
            return []
        ids = np.concatenate(id_parts)
        scores = np.concatenate(score_parts)
        ranked = np.lexsort((ids, -scores))[:n]
        return [(int(ids[i]), float(scores[i])) for i in ranked]
