"""Single-field inverted index with incremental updates.

One :class:`InvertedIndex` instance holds the postings of one searchable
field.  Postings map ``term -> {internal_doc_id -> term frequency}``;
document lengths and the collection-wide average length are maintained
incrementally so the BM25 scorer (:mod:`repro.search.bm25`) can read them in
O(1).  Removal is supported because the ingestion service re-indexes
modified documents every polling cycle.
"""

from __future__ import annotations

from collections import Counter

from repro.search.kernels import KernelPostings, KernelView
from repro.text.analyzer import FULL_ANALYZER, ItalianAnalyzer


class InvertedIndex:
    """Postings for one field, keyed by internal integer doc ids.

    With ``use_kernels`` the index additionally exposes a frozen
    contiguous-array view of its postings (:meth:`kernel_views`) that the
    BM25 scorer consumes for vectorized scoring.  The kernel is built
    lazily and dropped on any write: freezing is O(postings), which is
    exactly the stop-the-world coupling the segmented index
    (:mod:`repro.search.segment`) exists to remove — there, only the small
    write buffer ever re-freezes.
    """

    def __init__(self, analyzer: ItalianAnalyzer = FULL_ANALYZER, use_kernels: bool = False) -> None:
        self._analyzer = analyzer
        self._postings: dict[str, dict[int, int]] = {}
        self._doc_lengths: dict[int, int] = {}
        self._total_length = 0
        self.kernels_enabled = use_kernels
        self._kernel: KernelPostings | None = None

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._doc_lengths

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct indexed terms."""
        return len(self._postings)

    @property
    def total_length(self) -> int:
        """Summed analyzed length of all indexed documents.

        Exposed (as an exact integer) so that distributed deployments can
        aggregate collection statistics across shards without the rounding
        error a mean-of-means would introduce.
        """
        return self._total_length

    @property
    def average_length(self) -> float:
        """Mean analyzed length of indexed documents (0 when empty)."""
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def add(self, doc_id: int, text: str) -> None:
        """Index *text* under *doc_id* (doc must not already be present)."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"doc {doc_id} already indexed; remove it first")
        self._kernel = None
        terms = self._analyzer.analyze(text)
        self._doc_lengths[doc_id] = len(terms)
        self._total_length += len(terms)
        for term, frequency in Counter(terms).items():
            self._postings.setdefault(term, {})[doc_id] = frequency

    def remove(self, doc_id: int) -> None:
        """Remove all postings of *doc_id*; no-op when absent."""
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            return
        self._kernel = None
        self._total_length -= length
        empty_terms = []
        for term, postings in self._postings.items():
            if postings.pop(doc_id, None) is not None and not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    def postings(self, term: str) -> dict[int, int]:
        """The ``doc_id -> tf`` map of *term* (empty dict when unseen)."""
        return self._postings.get(term, {})

    def document_frequency(self, term: str) -> int:
        """Number of documents containing *term*."""
        return len(self._postings.get(term, ()))

    def document_length(self, doc_id: int) -> int:
        """Analyzed length of *doc_id* (0 when absent)."""
        return self._doc_lengths.get(doc_id, 0)

    def doc_ids(self) -> list[int]:
        """The indexed document ids, in insertion order."""
        return list(self._doc_lengths)

    def analyze_query(self, query: str) -> list[str]:
        """Analyze a query string with this field's analyzer."""
        return self._analyzer.analyze(query)

    # -- kernel access --------------------------------------------------------

    @property
    def analyzer(self) -> ItalianAnalyzer:
        """The analyzer this field indexes and queries with."""
        return self._analyzer

    def to_kernel(self, doc_ids=None) -> KernelPostings:
        """Freeze the current postings into contiguous arrays.

        ``doc_ids`` optionally fixes the slot order (used when several
        fields of one segment must share slot alignment).
        """
        return KernelPostings.build(self._doc_lengths, self._postings, doc_ids=doc_ids)

    def kernel_views(self) -> list[KernelView]:
        """The scorable kernel views of this index (one, lazily frozen)."""
        if not self._doc_lengths:
            return []
        if self._kernel is None:
            self._kernel = self.to_kernel()
        return [KernelView(self._kernel)]
