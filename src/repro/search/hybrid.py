"""Hybrid Search with Semantic reranking (HSS) — the production retriever.

Orchestrates the full retrieval algorithm of Section 4:

1. full-text BM25 retrieves the top ``text_n`` (= 50) chunks;
2. vector search retrieves the top ``vector_k`` (= 15) chunks per vector
   field (title and content embeddings);
3. Reciprocal Rank Fusion merges the rankings (c = 60);
4. the semantic reranker adds its score to each fused result;
5. the final ranking of ``final_n`` (= 50) chunks is returned.

The class also exposes the two ablation modes of Table 2 (text-only and
vector-only) through ``mode`` so the benchmarks exercise the exact same code
path minus one component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import spans
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import RequestContext, null_context
from repro.search.fulltext import FullTextSearch, ScoringProfile
from repro.search.fusion import DEFAULT_RRF_CONSTANT, reciprocal_rank_fusion
from repro.search.index import SearchIndex
from repro.search.reranker import SemanticReranker
from repro.search.results import RetrievedChunk
from repro.search.vector import VectorSearch

#: Retrieval modes: production hybrid plus the Table 2 ablations.
MODES = ("hybrid", "text", "vector")


@dataclass(frozen=True)
class HybridSearchConfig:
    """Tunable parameters of the HSS retriever (paper defaults)."""

    text_n: int = 50
    vector_k: int = 15
    final_n: int = 50
    rrf_c: float = DEFAULT_RRF_CONSTANT
    mode: str = "hybrid"
    use_reranker: bool = True

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if min(self.text_n, self.vector_k, self.final_n) <= 0:
            raise ValueError("result sizes must be positive")


class HybridSemanticSearch:
    """The HSS retrieval algorithm over a :class:`SearchIndex`."""

    def __init__(
        self,
        index: SearchIndex,
        reranker: SemanticReranker | None = None,
        config: HybridSearchConfig | None = None,
        profile: ScoringProfile | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or HybridSearchConfig()
        if self.config.use_reranker and reranker is None:
            raise ValueError("a reranker is required unless use_reranker=False")
        self._index = index
        self._reranker = reranker
        self._fulltext = FullTextSearch(index, profile=profile)
        self._vector = VectorSearch(index)
        registry = registry or NULL_REGISTRY
        self._m_searches = registry.counter(
            "uniask_searches_total", "Hybrid retrievals served, by mode.", ("mode",)
        )
        self._m_fused = registry.histogram(
            "uniask_fusion_candidates",
            "Candidates entering RRF fusion per retrieval.",
            buckets=(10.0, 25.0, 50.0, 100.0, 200.0),
        )

    @property
    def index(self) -> SearchIndex:
        """The underlying search index."""
        return self._index

    def search(
        self,
        query: str,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """Retrieve the final ranking of chunks for *query*."""
        ctx = ctx or null_context()
        config = self.config
        self._m_searches.labels(config.mode).inc()
        rankings: dict[str, list[RetrievedChunk]] = {}

        if config.mode in ("hybrid", "text"):
            rankings["text"] = self._fulltext.search(
                query, n=config.text_n, filters=filters, ctx=ctx
            )
        if config.mode in ("hybrid", "vector"):
            for field_name, ranking in self._vector.search(
                query, k=config.vector_k, filters=filters, ctx=ctx
            ).items():
                rankings[f"vector_{field_name}"] = ranking

        return self._retrieve(query, rankings, ctx)

    def search_degraded(
        self,
        query: str,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """BM25-only retrieval for admission-degraded requests.

        The level-2 shedding path: no query embedding, no vector legs,
        no reranker — just the full-text ranking, truncated to
        ``final_n``.  Exists separately from the ``text`` ablation mode
        so a deployment configured for hybrid retrieval can serve
        degraded answers per request without touching its config.
        """
        ctx = ctx or null_context()
        self._m_searches.labels("degraded").inc()
        ranking = self._fulltext.search(
            query, n=self.config.text_n, filters=filters, ctx=ctx
        )
        return ranking[: self.config.final_n]

    def search_fused_vector(
        self,
        query_text: str,
        query_vector,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """Hybrid search with an externally supplied query embedding.

        The text ranking uses *query_text*; the vector rankings use
        *query_vector*.  This is the entry point for the MQ2 expansion
        variant, which concatenates generated query texts and averages their
        embeddings.
        """
        ctx = ctx or null_context()
        config = self.config
        rankings: dict[str, list[RetrievedChunk]] = {
            "text": self._fulltext.search(query_text, n=config.text_n, filters=filters, ctx=ctx)
        }
        for field_name, ranking in self._vector.search_by_vector(
            query_vector, k=config.vector_k, filters=filters, ctx=ctx
        ).items():
            rankings[f"vector_{field_name}"] = ranking
        return self._retrieve(query_text, rankings, ctx)

    def search_multi(
        self,
        queries: list[str],
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """Multi-query hybrid search (the MQ1 expansion variant).

        Runs a full hybrid search per query and fuses the per-query result
        lists with RRF.  Duplicate sub-queries (the LLM frequently
        regenerates the original question) reuse the ranking already
        computed for this request instead of re-running retrieval and the
        reranker; the trace records a ``subquery`` span per input with a
        ``cached`` attribute.
        """
        if not queries:
            return []
        ctx = ctx or null_context()
        trace = ctx.trace
        filter_key = tuple(sorted(filters.items())) if filters else None
        cached_rankings: dict[tuple, list[RetrievedChunk]] = {}
        per_query: dict[str, list[RetrievedChunk]] = {}
        for i, query in enumerate(queries):
            key = (query, filter_key)
            cached = key in cached_rankings
            with trace.span(spans.STAGE_SUBQUERY, index=i, cached=cached) as span:
                if not cached:
                    cached_rankings[key] = self.search(query, filters=filters, ctx=ctx)
                span.set("results", len(cached_rankings[key]))
            per_query[f"q{i}"] = cached_rankings[key]
        with trace.span(
            spans.STAGE_FUSION, sources=len(per_query), multi_query=True
        ) as span:
            fused = reciprocal_rank_fusion(
                per_query, c=self.config.rrf_c, top_n=self.config.final_n
            )
            span.set("results", len(fused))
        return fused

    def _retrieve(
        self,
        rerank_query: str,
        rankings: dict[str, list[RetrievedChunk]],
        ctx: RequestContext,
    ) -> list[RetrievedChunk]:
        """The shared fuse → rerank → truncate tail of every entry point."""
        config = self.config
        candidates = sum(len(ranking) for ranking in rankings.values())
        self._m_fused.observe(float(candidates))
        with ctx.trace.span(
            spans.STAGE_FUSION,
            sources=len(rankings),
            candidates=candidates,
        ) as span:
            fused = reciprocal_rank_fusion(rankings, c=config.rrf_c, top_n=config.final_n)
            span.set("results", len(fused))
        if config.use_reranker and self._reranker is not None:
            fused = self._reranker.rerank(rerank_query, fused, ctx=ctx)
        return fused[: config.final_n]
