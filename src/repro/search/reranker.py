"""Semantic reranker.

Stands in for the proprietary multi-lingual deep reranking model (Bing /
Microsoft Research, multi-task learning) integrated in Azure AI Search that
the paper adds on top of RRF (Section 4).  A cross-encoder of that family
judges *semantic agreement* between query and passage rather than term
overlap; we reproduce that with the concept lexicon: the reranker score
blends

* concept-fingerprint cosine between the query and the chunk content,
* concept overlap with the chunk title (titles are strong relevance cues in
  short enterprise documents),
* a small lexical-overlap term that rewards exact jargon/code matches.

Scores are scaled to ``[0, max_score]`` with Azure's 0–4 range as default;
the final hybrid relevance is ``RRF sum + reranker score``, as the paper
states.
"""

from __future__ import annotations

import hashlib

from repro.embeddings.concepts import ConceptLexicon, concept_overlap
from repro.obs import spans
from repro.obs.trace import RequestContext, null_context
from repro.search.results import RetrievedChunk
from repro.text.analyzer import FULL_ANALYZER, ItalianAnalyzer


def _hash_noise(query: str, chunk_id: str) -> float:
    """Deterministic pseudo-noise in [-1, 1) keyed on the (query, chunk) pair."""
    digest = hashlib.blake2b(f"{query}\x00{chunk_id}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**63 - 1.0


class SemanticReranker:
    """Concept-level query/passage scorer added on top of fused rank.

    Args:
        lexicon: concept lexicon defining shared meaning.
        max_score: upper bound of the reranker score (Azure uses 4.0).
        title_weight / content_weight / lexical_weight: blend weights;
            they are normalized internally so only ratios matter.
        noise: amplitude of the deterministic per-(query, chunk) score
            perturbation modelling cross-encoder judgement error; 0 makes
            the reranker an oracle, which no deployed model is.
    """

    def __init__(
        self,
        lexicon: ConceptLexicon,
        max_score: float = 4.0,
        title_weight: float = 0.35,
        content_weight: float = 0.45,
        lexical_weight: float = 0.30,
        noise: float = 0.35,
        analyzer: ItalianAnalyzer | None = None,
    ) -> None:
        if max_score <= 0:
            raise ValueError("max_score must be positive")
        total = title_weight + content_weight + lexical_weight
        if total <= 0:
            raise ValueError("at least one blend weight must be positive")
        self._lexicon = lexicon
        self._max_score = max_score
        self._title_weight = title_weight / total
        self._content_weight = content_weight / total
        self._lexical_weight = lexical_weight / total
        self._noise = noise
        self._analyzer = analyzer if analyzer is not None else FULL_ANALYZER

    def score(self, query: str, result: RetrievedChunk) -> float:
        """Semantic relevance of *result* to *query* in [0, max_score]."""
        title_agreement = concept_overlap(self._lexicon, query, result.record.title).score
        content_agreement = concept_overlap(self._lexicon, query, result.record.content).score
        lexical = self._lexical_overlap(query, result.record.content)
        blended = (
            self._title_weight * title_agreement
            + self._content_weight * content_agreement
            + self._lexical_weight * lexical
        )
        score = self._max_score * min(max(blended, 0.0), 1.0)
        return max(0.0, score + self._noise * _hash_noise(query, result.record.chunk_id))

    def rerank(
        self,
        query: str,
        results: list[RetrievedChunk],
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """Add the reranker score to each fused result and re-sort.

        The input scores are assumed to be RRF sums; the output score is
        ``rrf + reranker`` per the paper's hybrid ranking definition.  The
        pre-rerank component breakdown is preserved and the reranker's
        delta recorded as ``rerank_adjust``, so score provenance survives
        all the way to the answer layer.
        """
        ctx = ctx or null_context()
        with ctx.trace.span(spans.STAGE_RERANK, candidates=len(results)):
            return self._rerank(query, results)

    def _rerank(self, query: str, results: list[RetrievedChunk]) -> list[RetrievedChunk]:
        rescored = []
        for result in results:
            reranker_score = self.score(query, result)
            components = dict(result.components)
            components["rerank_adjust"] = reranker_score
            rescored.append(
                RetrievedChunk(
                    record=result.record,
                    score=result.score + reranker_score,
                    components=components,
                )
            )
        rescored.sort(key=lambda r: (-r.score, r.record.chunk_id))
        return rescored

    def _lexical_overlap(self, query: str, content: str) -> float:
        query_terms = self._analyzer.analyze_unique(query)
        if not query_terms:
            return 0.0
        content_terms = self._analyzer.analyze_unique(content)
        return len(query_terms & content_terms) / len(query_terms)
