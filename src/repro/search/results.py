"""Shared result types for the retrieval executors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.search.schema import ChunkRecord


@dataclass(frozen=True)
class RetrievedChunk:
    """One chunk returned by a retrieval algorithm.

    Attributes:
        record: the chunk payload (retrievable fields).
        score: the final relevance score used for ordering.
        components: named score breakdown — for hybrid search e.g.
            ``{"bm25_title": ..., "cosine_content": ..., "rrf_text": ...,
            "rrf_vector_content": ..., "rerank_adjust": ...}``; explain
            requests add per-term BM25 keys (``bm25_<field>:<term>``) and
            cluster shard attribution (``shard``).  The fused score is the
            sum of the ``rrf_*`` entries; the final score adds
            ``rerank_adjust``.
    """

    record: ChunkRecord
    score: float
    components: dict[str, float] = field(default_factory=dict)

    @property
    def doc_id(self) -> str:
        """Source document id of the chunk."""
        return self.record.doc_id


def dedupe_by_document(results: list[RetrievedChunk]) -> list[RetrievedChunk]:
    """Keep only the best-ranked chunk of each source document.

    Retrieval metrics in the paper are computed at document granularity;
    this helper collapses a chunk ranking into a document ranking while
    preserving order.
    """
    seen: set[str] = set()
    collapsed: list[RetrievedChunk] = []
    for result in results:
        if result.doc_id in seen:
            continue
        seen.add(result.doc_id)
        collapsed.append(result)
    return collapsed
