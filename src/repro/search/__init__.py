"""Search substrate: index, BM25, vector search, fusion, reranking, HSS."""

from repro.search.bm25 import Bm25Parameters, Bm25Scorer
from repro.search.expansion import Mq1Expansion, Mq2Expansion, QgaExpansion
from repro.search.fulltext import FullTextSearch, ScoringProfile
from repro.search.fusion import DEFAULT_RRF_CONSTANT, reciprocal_rank_fusion
from repro.search.hybrid import HybridSearchConfig, HybridSemanticSearch
from repro.search.index import SearchIndex
from repro.search.inverted import InvertedIndex
from repro.search.keywords import enrich_record, extract_llm_keywords
from repro.search.persistence import load_index, save_index
from repro.search.reranker import SemanticReranker
from repro.search.results import RetrievedChunk, dedupe_by_document
from repro.search.schema import ChunkRecord, FieldDefinition, IndexSchema, uniask_schema
from repro.search.vector import VectorSearch

__all__ = [
    "Bm25Parameters",
    "Bm25Scorer",
    "Mq1Expansion",
    "Mq2Expansion",
    "QgaExpansion",
    "FullTextSearch",
    "ScoringProfile",
    "DEFAULT_RRF_CONSTANT",
    "reciprocal_rank_fusion",
    "HybridSearchConfig",
    "HybridSemanticSearch",
    "SearchIndex",
    "InvertedIndex",
    "enrich_record",
    "extract_llm_keywords",
    "load_index",
    "save_index",
    "SemanticReranker",
    "RetrievedChunk",
    "dedupe_by_document",
    "ChunkRecord",
    "FieldDefinition",
    "IndexSchema",
    "uniask_schema",
    "VectorSearch",
]
