"""Index schema: field definitions and attributes.

Mirrors the Azure AI Search field model the paper builds on (Section 4):
every field carries attributes that decide how it participates in queries —

* ``searchable``  — analyzed into an inverted index for full-text search;
* ``filterable``  — usable for exact-match filtering only;
* ``retrievable`` — returned in search results;
* ``vector``      — embedded and indexed for vector search.

The module also ships :func:`uniask_schema`, the concrete schema of the
deployed system: title/content/summary retrievable and searchable, domain/
section/topic/keywords filterable, separate vector embeddings for title and
content.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FieldDefinition:
    """One index field and its behaviour flags.

    Attributes:
        name: field name; chunk records expose values under this key.
        searchable: include in full-text (BM25) matching.
        filterable: allow exact-match filters.
        retrievable: include in returned results.
        vector: build a vector index from this field's text.
        collection: True when the field holds a list of strings (keywords).
    """

    name: str
    searchable: bool = False
    filterable: bool = False
    retrievable: bool = False
    vector: bool = False
    collection: bool = False


@dataclass(frozen=True)
class IndexSchema:
    """An ordered collection of field definitions."""

    fields: tuple[FieldDefinition, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise ValueError("duplicate field names in schema")

    def field(self, name: str) -> FieldDefinition:
        """Return the definition of field *name*."""
        for definition in self.fields:
            if definition.name == name:
                return definition
        raise KeyError(name)

    @property
    def searchable_fields(self) -> tuple[str, ...]:
        """Names of full-text searchable fields."""
        return tuple(f.name for f in self.fields if f.searchable)

    @property
    def filterable_fields(self) -> tuple[str, ...]:
        """Names of exact-match filterable fields."""
        return tuple(f.name for f in self.fields if f.filterable)

    @property
    def retrievable_fields(self) -> tuple[str, ...]:
        """Names of fields returned in results."""
        return tuple(f.name for f in self.fields if f.retrievable)

    @property
    def vector_fields(self) -> tuple[str, ...]:
        """Names of fields with a vector index."""
        return tuple(f.name for f in self.fields if f.vector)


def uniask_schema(include_llm_keywords: bool = False) -> IndexSchema:
    """The production UniAsk index schema.

    Args:
        include_llm_keywords: add the ``llm_keywords`` *searchable* field used
            by the HSS-KT / HSS-KTC enrichment experiments (Table 4); the
            base deployment does not search LLM keywords.
    """
    fields = [
        FieldDefinition("title", searchable=True, retrievable=True, vector=True),
        FieldDefinition("content", searchable=True, retrievable=True, vector=True),
        FieldDefinition("summary", searchable=True, retrievable=True),
        FieldDefinition("domain", filterable=True),
        FieldDefinition("section", filterable=True),
        FieldDefinition("topic", filterable=True),
        FieldDefinition("keywords", filterable=True, collection=True),
    ]
    if include_llm_keywords:
        fields.append(FieldDefinition("llm_keywords", searchable=True, collection=True))
    return IndexSchema(fields=tuple(fields))


@dataclass(frozen=True)
class ChunkRecord:
    """One indexed chunk of a knowledge-base document.

    ``chunk_id`` is globally unique (``"{doc_id}#{chunk_index}"``); several
    chunks share a ``doc_id``.  Retrieval metrics are computed at document
    granularity, so results de-duplicate by ``doc_id``.
    """

    chunk_id: str
    doc_id: str
    title: str
    content: str
    summary: str = ""
    domain: str = ""
    section: str = ""
    topic: str = ""
    keywords: tuple[str, ...] = ()
    llm_keywords: tuple[str, ...] = ()

    def value(self, field_name: str) -> str:
        """The text value of *field_name* for indexing purposes."""
        raw = getattr(self, field_name)
        if isinstance(raw, tuple):
            return " ".join(raw)
        return raw
