"""Vectorized retrieval kernels: contiguous postings + batch BM25.

The pure-Python scorer in :mod:`repro.search.bm25` walks postings
doc-at-a-time — one dict lookup and a handful of float operations per
(term, document) pair, all interpreted.  This module stores the same
postings as contiguous numpy arrays and scores them term-at-a-time with
vectorized arithmetic, which is where the order-of-magnitude retrieval
win comes from (see ``benchmarks/bench_kernels.py``).

**Bit-exactness contract.**  The kernel is not "approximately equal" to
the loop scorer — it is gated *byte-identical* (scores and tie-breaks) by
the differential tests.  That works because every float operation of the
loop formulation

    length_norm = 1 - b + b * (|d| / avgdl)
    contribution = idf * tf * (k1 + 1) / (tf + k1 * length_norm)
    score[d] += contribution            # terms in analyzed-query order

is reproduced elementwise with the same operator order and the same
IEEE-754 double rounding (numpy elementwise arithmetic is correctly
rounded exactly like CPython floats), and the per-document accumulation
order — query-term order, one addition per matched term — is preserved by
accumulating one term at a time into a dense slot-indexed array.  ``idf``
stays a scalar computed with :func:`math.log` (``np.log`` is *not*
guaranteed to round identically to libm).

A :class:`KernelPostings` is immutable once built: that is the data-layout
contract that makes sealed index segments (:mod:`repro.search.segment`)
safe to share between queries without locking, and it is why live updates
go through a mutable write buffer instead of patching arrays in place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.obs.work import WORK_POSTINGS_SCANNED

#: Multiplicative safety margin applied to floating-point score upper
#: bounds before they are used to prune documents.  The bound arithmetic
#: itself rounds, so a raw bound could undershoot the true maximum
#: contribution by a few ulps; inflating it keeps pruning *safe* (a pruned
#: document provably cannot reach the top-k) at a negligible recall cost.
BOUND_SAFETY = 1.0 + 1e-9


class KernelPostings:
    """Contiguous postings of one field over one immutable document set.

    Layout:

    * ``doc_ids`` — the member document ids, ascending (``int64``);
    * ``lengths`` — analyzed field length per slot (``float64``, aligned
      with ``doc_ids``);
    * per term: a ``slots`` array (positions into ``doc_ids``) and a
      parallel ``tfs`` array (``float64`` term frequencies).

    Documents are addressed by *slot* during scoring so the length
    normalization is one gather; ids are materialized only on output.
    """

    __slots__ = (
        "doc_ids",
        "lengths",
        "total_length",
        "_slots",
        "_tfs",
        "_max_tf",
        "_min_len",
    )

    def __init__(
        self,
        doc_ids: np.ndarray,
        lengths: np.ndarray,
        slots_by_term: dict[str, np.ndarray],
        tfs_by_term: dict[str, np.ndarray],
    ) -> None:
        self.doc_ids = doc_ids
        self.lengths = lengths
        self.total_length = int(lengths.sum()) if lengths.size else 0
        self._slots = slots_by_term
        self._tfs = tfs_by_term
        self._max_tf: dict[str, float] = {}
        self._min_len: dict[str, float] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        doc_lengths: dict[int, int],
        postings: dict[str, dict[int, int]],
        doc_ids: Sequence[int] | None = None,
    ) -> "KernelPostings":
        """Freeze dict-shaped postings into contiguous arrays.

        ``doc_ids`` optionally fixes the slot order (ascending ids when
        omitted); it must cover exactly the keys of *doc_lengths*.
        """
        if doc_ids is None:
            ids = np.array(sorted(doc_lengths), dtype=np.int64)
        else:
            ids = np.asarray(doc_ids, dtype=np.int64)
        lengths = np.array([float(doc_lengths[int(i)]) for i in ids], dtype=np.float64)
        slot_of = {int(doc): slot for slot, doc in enumerate(ids)}
        slots_by_term: dict[str, np.ndarray] = {}
        tfs_by_term: dict[str, np.ndarray] = {}
        for term, term_postings in postings.items():
            if not term_postings:
                continue
            pairs = sorted((slot_of[doc], tf) for doc, tf in term_postings.items())
            slots_by_term[term] = np.array([slot for slot, _ in pairs], dtype=np.int64)
            tfs_by_term[term] = np.array([float(tf) for _, tf in pairs], dtype=np.float64)
        return cls(ids, lengths, slots_by_term, tfs_by_term)

    # -- sizing / lookup ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.doc_ids.size)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct terms with at least one posting."""
        return len(self._slots)

    def terms(self) -> Iterable[str]:
        """The indexed terms (arbitrary order)."""
        return self._slots.keys()

    def document_frequency(self, term: str) -> int:
        """Number of member documents containing *term*."""
        slots = self._slots.get(term)
        return int(slots.size) if slots is not None else 0

    def term_arrays(self, term: str) -> tuple[np.ndarray, np.ndarray] | None:
        """The ``(slots, tfs)`` arrays of *term* (None when unseen)."""
        slots = self._slots.get(term)
        if slots is None:
            return None
        return slots, self._tfs[term]

    def slot_of(self, doc_id: int) -> int:
        """The slot of *doc_id*; -1 when the document is not a member."""
        position = int(np.searchsorted(self.doc_ids, doc_id))
        if position < self.doc_ids.size and int(self.doc_ids[position]) == doc_id:
            return position
        return -1

    def postings_dict(self, term: str, live: np.ndarray | None = None) -> dict[int, int]:
        """The ``doc_id -> tf`` dict of *term*, masked by *live* slots."""
        arrays = self.term_arrays(term)
        if arrays is None:
            return {}
        slots, tfs = arrays
        if live is not None:
            keep = live[slots]
            slots, tfs = slots[keep], tfs[keep]
        ids = self.doc_ids[slots]
        return {int(doc): int(tf) for doc, tf in zip(ids, tfs)}

    def to_dicts(
        self, live: np.ndarray | None = None
    ) -> tuple[dict[int, int], dict[str, dict[int, int]]]:
        """Thaw back into ``(doc_lengths, postings)`` dicts (merge path)."""
        if live is None:
            keep_slots = np.arange(self.doc_ids.size)
        else:
            keep_slots = np.nonzero(live)[0]
        doc_lengths = {
            int(self.doc_ids[slot]): int(self.lengths[slot]) for slot in keep_slots
        }
        postings: dict[str, dict[int, int]] = {}
        for term in self._slots:
            term_postings = self.postings_dict(term, live)
            if term_postings:
                postings[term] = term_postings
        return doc_lengths, postings

    # -- scoring -----------------------------------------------------------

    def accumulate_bm25(
        self,
        term_idfs: Sequence[tuple[str, float]],
        k1: float,
        b: float,
        average_length: float,
        acc: np.ndarray | None = None,
        touched: np.ndarray | None = None,
        candidate_mask: np.ndarray | None = None,
        work=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate BM25 contributions term-at-a-time into slot arrays.

        *term_idfs* carries the analyzed query terms **in query order**
        (repeats included) with their precomputed idf, so each document's
        additions happen in exactly the order the loop scorer performs
        them.  With *candidate_mask*, contributions are computed only for
        member slots of the mask (the exact-rescore pass of the pruned
        top-k) — restricting an elementwise computation to a subset does
        not change any retained element's bits.

        *work* is an optional :class:`~repro.obs.work.WorkCounters`; this
        kernel is the source of truth for ``postings_scanned`` (one unit
        per (term, posting) pair actually computed, post-mask).  Counters
        are booked from array sizes outside the float pipeline, so the
        scores' bits are untouched.

        Returns ``(acc, touched)``.
        """
        n = self.doc_ids.size
        if acc is None:
            acc = np.zeros(n, dtype=np.float64)
        if touched is None:
            touched = np.zeros(n, dtype=bool)
        scanned = 0
        for term, idf in term_idfs:
            arrays = self.term_arrays(term)
            if arrays is None:
                continue
            slots, tfs = arrays
            if candidate_mask is not None:
                keep = candidate_mask[slots]
                if not keep.any():
                    continue
                slots, tfs = slots[keep], tfs[keep]
            scanned += int(slots.size)
            ratio = self.lengths[slots] / average_length
            length_norm = 1.0 - b + b * ratio
            contribution = idf * tfs * (k1 + 1.0) / (tfs + k1 * length_norm)
            acc[slots] += contribution
            touched[slots] = True
        if work is not None and scanned:
            work.add(WORK_POSTINGS_SCANNED, scanned)
        return acc, touched

    def term_bound(self, term: str, idf: float, k1: float, b: float, average_length: float) -> float:
        """A safe upper bound on one document's contribution from *term*.

        The contribution is increasing in tf and decreasing in document
        length, so evaluating it at the term's maximum tf and minimum
        member length bounds every posting; :data:`BOUND_SAFETY` absorbs
        the bound arithmetic's own rounding.
        """
        arrays = self.term_arrays(term)
        if arrays is None:
            return 0.0
        max_tf = self._max_tf.get(term)
        if max_tf is None:
            slots, tfs = arrays
            max_tf = float(tfs.max())
            self._max_tf[term] = max_tf
            self._min_len[term] = float(self.lengths[slots].min())
        min_len = self._min_len[term]
        length_norm = 1.0 - b + b * (min_len / average_length)
        bound = idf * max_tf * (k1 + 1.0) / (max_tf + k1 * length_norm)
        return bound * BOUND_SAFETY


class KernelView:
    """One scorable unit: a frozen postings kernel plus its live mask.

    ``live`` is a boolean array aligned with the kernel's slots; ``None``
    means every member document is live.  Sealed segments share one
    mutable live mask between their fields (a tombstone flips a bit,
    nothing else moves); a plain :class:`~repro.search.inverted
    .InvertedIndex` has no tombstones, so its view carries ``None``.
    """

    __slots__ = ("kernel", "live")

    def __init__(self, kernel: KernelPostings, live: np.ndarray | None = None) -> None:
        self.kernel = kernel
        self.live = live

    def live_slots(self, slots: np.ndarray) -> np.ndarray:
        """Filter a slot array down to live members."""
        if self.live is None:
            return slots
        return slots[self.live[slots]]
