"""Vector search executor.

The vector half of Hybrid Search (Section 4): the query is embedded once and
the K approximate nearest chunks are fetched *per vector field* (UniAsk
indexes separate title and content embeddings), producing one ranking per
field.  Each ranking is fused separately by RRF downstream, matching Azure
AI Search's multi-vector hybrid behaviour.
"""

from __future__ import annotations

from repro.obs import spans
from repro.obs.trace import RequestContext, null_context
from repro.search.index import SearchIndex
from repro.search.results import RetrievedChunk


class VectorSearch:
    """ANN search over the vector fields of a :class:`SearchIndex`."""

    def __init__(self, index: SearchIndex, vector_fields: tuple[str, ...] | None = None) -> None:
        self._index = index
        self._fields = vector_fields or index.schema.vector_fields

    @property
    def vector_fields(self) -> tuple[str, ...]:
        """The vector fields this executor queries."""
        return tuple(self._fields)

    def search(
        self,
        query: str,
        k: int = 15,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> dict[str, list[RetrievedChunk]]:
        """Per-field rankings of the *k* nearest chunks to *query*.

        Returns a mapping ``vector_field -> ranking``; similarity is
        ``1 - cosine distance`` so that larger scores are better, consistent
        with the BM25 ranking direction.
        """
        ctx = ctx or null_context()
        with ctx.trace.span(spans.STAGE_EMBED_QUERY, query_chars=len(query)):
            query_vector = self._index.embedder.embed(query)
        return self.search_by_vector(query_vector, k, filters, ctx=ctx)

    def search_by_vector(
        self,
        query_vector,
        k: int = 15,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> dict[str, list[RetrievedChunk]]:
        """Same as :meth:`search` but with a pre-computed query embedding.

        Used by the MQ2 query-expansion variant (Table 3), which averages
        the embeddings of several generated queries.
        """
        ctx = ctx or null_context()
        work = ctx.work
        rankings: dict[str, list[RetrievedChunk]] = {}
        for field_name in self._fields:
            with ctx.trace.span(spans.vector_stage(field_name), k=k) as span:
                mark = work.snapshot() if work is not None else None
                ranking = self._search_field(field_name, query_vector, k, filters, work=work)
                span.set("results", len(ranking))
                if work is not None:
                    for kind, units in work.delta(mark).items():
                        span.set(f"work_{kind}", units)
            rankings[field_name] = ranking
        return rankings

    def search_by_vectors_batch(
        self,
        query_vectors,
        k: int = 15,
        filters: dict[str, str] | None = None,
    ) -> list[dict[str, list[RetrievedChunk]]]:
        """Per-field rankings for a whole batch of query embeddings.

        Delegates to the index's batched brute-force scan
        (:meth:`~repro.ann.exact.ExactKnnIndex.search_batch`) when the ANN
        backend supports it — one matrix-matrix product for the entire
        batch instead of one matrix-vector product per query — and falls
        back to per-query search otherwise.  Rankings are exact brute
        force either way; this is the offline/bench entry point (canary
        probes, evaluation sweeps), not the ask path.
        """
        batched: dict[str, list[list[tuple[int, float]]] | None] = {
            field_name: self._index.vector_search_batch(
                field_name, query_vectors, k if not filters else 4 * k
            )
            for field_name in self._fields
        }
        results: list[dict[str, list[RetrievedChunk]]] = []
        for position, query_vector in enumerate(query_vectors):
            rankings: dict[str, list[RetrievedChunk]] = {}
            for field_name in self._fields:
                field_hits = batched[field_name]
                if field_hits is None:
                    rankings[field_name] = self._search_field(
                        field_name, query_vector, k, filters
                    )
                else:
                    rankings[field_name] = self._rank_hits(
                        field_name, field_hits[position], k, filters
                    )
            results.append(rankings)
        return results

    def _search_field(
        self,
        field_name: str,
        query_vector,
        k: int,
        filters: dict[str, str] | None,
        work=None,
    ) -> list[RetrievedChunk]:
        # Oversample so that post-hoc filtering can still fill k results.
        fetch = k if not filters else 4 * k
        hits = self._index.vector_search(field_name, query_vector, fetch, work=work)
        return self._rank_hits(field_name, hits, k, filters)

    def _rank_hits(
        self,
        field_name: str,
        hits: list[tuple[int, float]],
        k: int,
        filters: dict[str, str] | None,
    ) -> list[RetrievedChunk]:
        ranking: list[RetrievedChunk] = []
        for internal, distance in hits:
            if not self._index.matches_filters(internal, filters):
                continue
            similarity = 1.0 - distance
            ranking.append(
                RetrievedChunk(
                    record=self._index.record(internal),
                    score=similarity,
                    components={f"cosine_{field_name}": similarity},
                )
            )
            if len(ranking) >= k:
                break
        return ranking
