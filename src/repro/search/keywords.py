"""LLM keyword enrichment of the index (Table 4).

The paper tried enriching the index with keywords extracted by the LLM from
the document *title* (HSS-KT) or from *title and content* (HSS-KTC), adding
them as an extra searchable field.  Neither variant moved the metrics
meaningfully; both are reproduced here so the experiment can be re-run.
"""

from __future__ import annotations

from repro.llm.base import ChatCompletionClient
from repro.llm.prompts import build_keywords_prompt
from repro.search.schema import ChunkRecord

#: Enrichment variants of Table 4.
VARIANTS = ("none", "kt", "ktc")


def extract_llm_keywords(
    llm: ChatCompletionClient, title: str, content: str | None = None
) -> tuple[str, ...]:
    """Ask the LLM for comma-separated keywords of a document.

    ``content=None`` extracts from the title only (KT); otherwise from title
    and content (KTC).
    """
    response = llm.complete(build_keywords_prompt(title, content), max_tokens=64)
    keywords = tuple(part.strip() for part in response.content.split(",") if part.strip())
    return keywords


def enrich_record(
    record: ChunkRecord, llm: ChatCompletionClient, variant: str = "none"
) -> ChunkRecord:
    """Return *record* with the ``llm_keywords`` field filled per *variant*."""
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}")
    if variant == "none":
        return record
    content = record.content if variant == "ktc" else None
    keywords = extract_llm_keywords(llm, record.title, content)
    return ChunkRecord(
        chunk_id=record.chunk_id,
        doc_id=record.doc_id,
        title=record.title,
        content=record.content,
        summary=record.summary,
        domain=record.domain,
        section=record.section,
        topic=record.topic,
        keywords=record.keywords,
        llm_keywords=keywords,
    )
