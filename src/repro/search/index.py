"""The search index: documents, inverted postings and vector graphs.

:class:`SearchIndex` is the in-process equivalent of the Azure AI Search
index the paper builds (Section 4).  It owns:

* one :class:`~repro.search.inverted.InvertedIndex` per *searchable* field;
* one ANN index (HNSW by default, exact k-NN optionally) per *vector*
  field, fed by the configured embedding model;
* the chunk records themselves, for retrieval of *retrievable* fields;
* exact-match filtering on *filterable* fields.

Updates: the ingestion flow re-indexes modified documents every polling
cycle, so the index supports document-level delete.  HNSW has no efficient
hard delete, so deletions tombstone the internal ids; vector queries
oversample and drop tombstones, and :meth:`vacuum` rebuilds the graphs when
the tombstone ratio crosses a threshold.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.ann.exact import ExactKnnIndex
from repro.ann.hnsw import HnswIndex
from repro.embeddings.model import EmbeddingModel
from repro.search.inverted import InvertedIndex
from repro.search.schema import ChunkRecord, IndexSchema, uniask_schema
from repro.text.analyzer import FULL_ANALYZER, ItalianAnalyzer


class SearchIndex:
    """An updatable hybrid (text + vector) chunk index.

    Args:
        schema: field definitions; defaults to the UniAsk production schema.
        embedder: model used to embed vector fields and queries.
        ann_backend: ``"hnsw"`` (production) or ``"exact"`` (ground truth).
        hnsw_m / hnsw_ef_construction / hnsw_ef_search: HNSW parameters.
        seed: seed forwarded to HNSW level draws.
    """

    def __init__(
        self,
        embedder: EmbeddingModel,
        schema: IndexSchema | None = None,
        ann_backend: str = "hnsw",
        hnsw_m: int = 16,
        hnsw_ef_construction: int = 100,
        hnsw_ef_search: int = 80,
        seed: int = 42,
        analyzer: ItalianAnalyzer | None = None,
    ) -> None:
        if ann_backend not in ("hnsw", "exact"):
            raise ValueError("ann_backend must be 'hnsw' or 'exact'")
        self.schema = schema or uniask_schema()
        self.embedder = embedder
        self._ann_backend = ann_backend
        self._hnsw_m = hnsw_m
        self._hnsw_ef_construction = hnsw_ef_construction
        self._hnsw_ef_search = hnsw_ef_search
        self._seed = seed

        self._records: dict[int, ChunkRecord] = {}
        self._internal_by_chunk: dict[str, int] = {}
        self._internals_by_doc: dict[str, list[int]] = {}
        self._next_internal = 0
        self._deleted: set[int] = set()
        self._generation = 0

        self.analyzer = analyzer if analyzer is not None else FULL_ANALYZER
        self._inverted: dict[str, InvertedIndex] = {
            name: InvertedIndex(self.analyzer) for name in self.schema.searchable_fields
        }
        self._vectors: dict[str, HnswIndex | ExactKnnIndex] = {
            name: self._new_ann_index() for name in self.schema.vector_fields
        }

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records) - len(self._deleted)

    @property
    def document_count(self) -> int:
        """Number of live source documents."""
        return sum(
            1
            for internals in self._internals_by_doc.values()
            if any(i not in self._deleted for i in internals)
        )

    @property
    def generation(self) -> int:
        """Monotonic write counter; bumps on every content-changing write.

        Caches stamp entries with the generation they were computed against
        and treat a mismatch as an invalidation signal (see
        :mod:`repro.cache.retrieval_cache`).
        """
        return self._generation

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of stored chunks that are deleted but not vacuumed."""
        if not self._records:
            return 0.0
        return len(self._deleted) / len(self._records)

    # -- writes --------------------------------------------------------------

    def add_chunk(self, record: ChunkRecord, vectors: dict[str, np.ndarray] | None = None) -> int:
        """Index one chunk; returns its internal id.

        Re-adding an existing ``chunk_id`` replaces the previous version.
        ``vectors`` optionally supplies pre-computed embeddings per vector
        field (used when loading a persisted index), bypassing the embedder.
        """
        if record.chunk_id in self._internal_by_chunk:
            self._tombstone(self._internal_by_chunk[record.chunk_id])

        self._generation += 1
        internal = self._next_internal
        self._next_internal += 1
        self._records[internal] = record
        self._internal_by_chunk[record.chunk_id] = internal
        self._internals_by_doc.setdefault(record.doc_id, []).append(internal)

        for name, inverted in self._inverted.items():
            inverted.add(internal, record.value(name))
        for name, ann in self._vectors.items():
            if vectors is not None and name in vectors:
                vector = np.asarray(vectors[name], dtype=np.float64)
            else:
                vector = self.embedder.embed(record.value(name))
            ann.add(internal, vector)
        return internal

    def chunk_vector(self, internal: int, field_name: str) -> np.ndarray:
        """The stored embedding of a live chunk's vector field."""
        if not self.is_live(internal):
            raise KeyError(f"chunk {internal} is not live")
        return self.embedder.embed(self._records[internal].value(field_name))

    def add_chunks(self, records: Iterable[ChunkRecord]) -> list[int]:
        """Index many chunks; returns their internal ids."""
        return [self.add_chunk(record) for record in records]

    def delete_document(self, doc_id: str) -> int:
        """Tombstone every chunk of *doc_id*; returns how many were removed."""
        internals = self._internals_by_doc.get(doc_id, [])
        removed = 0
        for internal in internals:
            if internal not in self._deleted:
                self._tombstone(internal)
                removed += 1
        if removed:
            self._generation += 1
        return removed

    def vacuum(self, max_tombstone_ratio: float = 0.0) -> bool:
        """Rebuild vector graphs dropping tombstones.

        Returns True when a rebuild happened (ratio above the threshold).
        """
        if self.tombstone_ratio <= max_tombstone_ratio:
            return False
        self._generation += 1
        live = {i: r for i, r in self._records.items() if i not in self._deleted}
        self._vectors = {name: self._new_ann_index() for name in self.schema.vector_fields}
        for internal, record in live.items():
            for name, ann in self._vectors.items():
                ann.add(internal, self.embedder.embed(record.value(name)))
        for internal in list(self._deleted):
            self._records.pop(internal, None)
        for doc_id in list(self._internals_by_doc):
            kept = [i for i in self._internals_by_doc[doc_id] if i in live]
            if kept:
                self._internals_by_doc[doc_id] = kept
            else:
                del self._internals_by_doc[doc_id]
        self._deleted.clear()
        return True

    # -- reads ---------------------------------------------------------------

    def record(self, internal: int) -> ChunkRecord:
        """The chunk record stored under internal id *internal*."""
        return self._records[internal]

    def is_live(self, internal: int) -> bool:
        """False when the chunk has been tombstoned."""
        return internal in self._records and internal not in self._deleted

    def live_internals(self) -> list[int]:
        """All live internal ids."""
        return [i for i in self._records if i not in self._deleted]

    def inverted_index(self, field_name: str) -> InvertedIndex:
        """The postings of searchable field *field_name*."""
        return self._inverted[field_name]

    def vector_search(
        self, field_name: str, query_vector: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """The *k* nearest live chunks to *query_vector* on a vector field."""
        ann = self._vectors[field_name]
        if k <= 0 or len(ann) == 0:
            return []
        # Oversample to survive tombstone filtering.
        fetch = k + len(self._deleted)
        hits = ann.search(query_vector, fetch)
        live = [(internal, distance) for internal, distance in hits if internal not in self._deleted]
        return live[:k]

    def matches_filters(self, internal: int, filters: dict[str, str] | None) -> bool:
        """Exact-match filter evaluation on filterable fields."""
        if not filters:
            return True
        record = self._records[internal]
        for name, expected in filters.items():
            if name not in self.schema.filterable_fields:
                raise KeyError(f"field {name!r} is not filterable")
            value = getattr(record, name)
            if isinstance(value, tuple):
                if expected not in value:
                    return False
            elif value != expected:
                return False
        return True

    # -- internals -------------------------------------------------------------

    def _tombstone(self, internal: int) -> None:
        self._deleted.add(internal)
        record = self._records[internal]
        self._internal_by_chunk.pop(record.chunk_id, None)
        for inverted in self._inverted.values():
            inverted.remove(internal)

    def _new_ann_index(self) -> HnswIndex | ExactKnnIndex:
        if self._ann_backend == "exact":
            return ExactKnnIndex(self.embedder.dim)
        return HnswIndex(
            self.embedder.dim,
            m=self._hnsw_m,
            ef_construction=self._hnsw_ef_construction,
            ef_search=self._hnsw_ef_search,
            seed=self._seed,
        )
