"""The search index: documents, inverted postings and vector graphs.

:class:`SearchIndex` is the in-process equivalent of the Azure AI Search
index the paper builds (Section 4).  It owns:

* the full-text postings of every *searchable* field — segmented by
  default (sealed immutable segments + write buffer, see
  :mod:`repro.search.segment`) so live ingestion never rebuilds what
  queries are reading, or one monolithic
  :class:`~repro.search.inverted.InvertedIndex` per field when configured
  ``segmented=False`` (the differential-gate reference layout);
* one ANN index (HNSW by default, exact k-NN optionally) per *vector*
  field, fed by the configured embedding model.  Vector structures stay
  index-level and incremental — HNSW supports live inserts natively, and
  per-segment graphs could not reproduce the single-graph results
  byte-for-byte (the graph depends on the full insertion sequence);
* the chunk records themselves, for retrieval of *retrievable* fields;
* exact-match filtering on *filterable* fields.

Updates: the ingestion flow re-indexes modified documents every polling
cycle, so the index supports document-level delete.  HNSW has no efficient
hard delete, so deletions tombstone the internal ids; vector queries
oversample and drop tombstones, and :meth:`vacuum` rebuilds the graphs when
the tombstone ratio crosses a threshold.  Sealed-segment postings are
likewise tombstoned in place (a bit flip plus exact statistics ledgers) and
reclaimed by background merges on the simulated clock
(:meth:`run_maintenance`) — `vacuum()` is just the most aggressive merge
policy plus the ANN rebuild.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.ann.exact import ExactKnnIndex
from repro.ann.hnsw import HnswIndex
from repro.embeddings.model import EmbeddingModel
from repro.obs import spans
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.trace import RequestContext
from repro.search.inverted import InvertedIndex
from repro.search.schema import ChunkRecord, IndexSchema, uniask_schema
from repro.search.segment import IndexConfig, SegmentedTextStore
from repro.text.analyzer import FULL_ANALYZER, ItalianAnalyzer


class SearchIndex:
    """An updatable hybrid (text + vector) chunk index.

    Args:
        schema: field definitions; defaults to the UniAsk production schema.
        embedder: model used to embed vector fields and queries.
        ann_backend: ``"hnsw"`` (production) or ``"exact"`` (ground truth).
        hnsw_m / hnsw_ef_construction / hnsw_ef_search: HNSW parameters.
        seed: seed forwarded to HNSW level draws.
        index_config: kernel/segment layout knobs (defaults on for both).
        registry: metrics registry for the maintenance counters (optional).
    """

    #: Optional incident flight recorder; set by the factory on the
    #: deployment's top-level index only, so per-shard members of a
    #: cluster never double-record.
    recorder = None

    def __init__(
        self,
        embedder: EmbeddingModel,
        schema: IndexSchema | None = None,
        ann_backend: str = "hnsw",
        hnsw_m: int = 16,
        hnsw_ef_construction: int = 100,
        hnsw_ef_search: int = 80,
        seed: int = 42,
        analyzer: ItalianAnalyzer | None = None,
        index_config: IndexConfig | None = None,
        registry=None,
    ) -> None:
        if ann_backend not in ("hnsw", "exact"):
            raise ValueError("ann_backend must be 'hnsw' or 'exact'")
        self.schema = schema or uniask_schema()
        self.embedder = embedder
        self.config = index_config or IndexConfig()
        self._ann_backend = ann_backend
        self._hnsw_m = hnsw_m
        self._hnsw_ef_construction = hnsw_ef_construction
        self._hnsw_ef_search = hnsw_ef_search
        self._seed = seed

        self._records: dict[int, ChunkRecord] = {}
        self._internal_by_chunk: dict[str, int] = {}
        self._internals_by_doc: dict[str, list[int]] = {}
        self._next_internal = 0
        self._deleted: set[int] = set()
        self._generation = 0

        self.analyzer = analyzer if analyzer is not None else FULL_ANALYZER
        self._store: SegmentedTextStore | None = None
        self._inverted: dict[str, InvertedIndex] = {}
        if self.config.segmented:
            self._store = SegmentedTextStore(
                self.schema.searchable_fields, self.analyzer, self.config
            )
        else:
            self._inverted = {
                name: InvertedIndex(self.analyzer, use_kernels=self.config.use_kernels)
                for name in self.schema.searchable_fields
            }
        self._vectors: dict[str, HnswIndex | ExactKnnIndex] = {
            name: self._new_ann_index() for name in self.schema.vector_fields
        }
        self._maintenance_counter = (registry or NULL_REGISTRY).counter(
            "uniask_index_maintenance_total",
            "Index maintenance operations by kind (seal/merge/compact/vacuum).",
            ("op",),
        )

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records) - len(self._deleted)

    @property
    def document_count(self) -> int:
        """Number of live source documents."""
        return sum(
            1
            for internals in self._internals_by_doc.values()
            if any(i not in self._deleted for i in internals)
        )

    @property
    def kernels_enabled(self) -> bool:
        """Whether the vectorized BM25 scoring path is configured on."""
        return self.config.use_kernels

    @property
    def generation(self) -> int:
        """Monotonic write counter; bumps on every content-changing write.

        Caches stamp entries with the generation they were computed against
        and treat a mismatch as an invalidation signal (see
        :mod:`repro.cache.retrieval_cache`).  Maintenance (seals and
        merges) preserves content exactly and deliberately does *not* bump
        this counter, so cached answers survive background compaction.
        """
        return self._generation

    @property
    def segment_count(self) -> int:
        """Number of sealed segments (0 for the monolithic layout)."""
        return len(self._store.segments) if self._store is not None else 0

    @property
    def buffered_count(self) -> int:
        """Documents in the unsealed write buffer (0 when monolithic)."""
        return self._store.buffered_count() if self._store is not None else 0

    def segment_stamp(self) -> tuple | int:
        """Per-segment cache-invalidation stamp.

        Segmented: a tuple of ``(segment_id, epoch)`` pairs plus the buffer
        write counter — a write invalidates only the component it touched.
        Monolithic: falls back to the index-wide :attr:`generation`.
        """
        if self._store is not None:
            return self._store.segment_stamp()
        return self._generation

    @property
    def tombstone_ratio(self) -> float:
        """Fraction of stored chunks that are deleted but not vacuumed."""
        if not self._records:
            return 0.0
        return len(self._deleted) / len(self._records)

    # -- writes --------------------------------------------------------------

    def add_chunk(self, record: ChunkRecord, vectors: dict[str, np.ndarray] | None = None) -> int:
        """Index one chunk; returns its internal id.

        Re-adding an existing ``chunk_id`` replaces the previous version.
        ``vectors`` optionally supplies pre-computed embeddings per vector
        field (used when loading a persisted index), bypassing the embedder.
        The chunk is queryable the moment this method returns: segmented
        postings land in the write buffer (no rebuild of sealed segments)
        and ANN inserts are incremental.
        """
        if record.chunk_id in self._internal_by_chunk:
            self._tombstone(self._internal_by_chunk[record.chunk_id])

        self._generation += 1
        internal = self._next_internal
        self._next_internal += 1
        self._records[internal] = record
        self._internal_by_chunk[record.chunk_id] = internal
        self._internals_by_doc.setdefault(record.doc_id, []).append(internal)

        if self._store is not None:
            self._store.add(
                internal, {name: record.value(name) for name in self.schema.searchable_fields}
            )
            self._drain_maintenance_ops()
        else:
            for name, inverted in self._inverted.items():
                inverted.add(internal, record.value(name))
        for name, ann in self._vectors.items():
            if vectors is not None and name in vectors:
                vector = np.asarray(vectors[name], dtype=np.float64)
            else:
                vector = self.embedder.embed(record.value(name))
            ann.add(internal, vector)
        return internal

    def chunk_vector(self, internal: int, field_name: str) -> np.ndarray:
        """The stored embedding of a live chunk's vector field."""
        if not self.is_live(internal):
            raise KeyError(f"chunk {internal} is not live")
        return self.embedder.embed(self._records[internal].value(field_name))

    def add_chunks(self, records: Iterable[ChunkRecord]) -> list[int]:
        """Index many chunks; returns their internal ids."""
        return [self.add_chunk(record) for record in records]

    def delete_document(self, doc_id: str) -> int:
        """Tombstone every chunk of *doc_id*; returns how many were removed."""
        internals = self._internals_by_doc.get(doc_id, [])
        removed = 0
        for internal in internals:
            if internal not in self._deleted:
                self._tombstone(internal)
                removed += 1
        if removed:
            self._generation += 1
        return removed

    def flush(self) -> None:
        """Seal the current write buffer (no-op when monolithic or empty)."""
        if self._store is not None:
            self._store.flush()
            self._drain_maintenance_ops()

    def run_maintenance(self, now: float, ctx: RequestContext | None = None) -> dict[str, int]:
        """Background segment maintenance on the simulated clock.

        Folds tombstone-heavy and surplus segments together (see
        :meth:`~repro.search.segment.SegmentedTextStore.run_maintenance`);
        returns the op counts performed.  Content-preserving, so neither
        the :attr:`generation` nor cached answers are invalidated.
        """
        if self._store is None:
            return {}
        if ctx is not None:
            with ctx.trace.span(spans.STAGE_INDEX_MAINTENANCE) as span:
                ops = self._store.run_maintenance(now)
                for op, count in ops.items():
                    span.set(op, count)
        else:
            ops = self._store.run_maintenance(now)
        self._drain_maintenance_ops()
        if self.recorder is not None and any(ops.values()):
            self.recorder.record("segment_merge", "index", ops=dict(ops))
        return ops

    def vacuum(
        self, max_tombstone_ratio: float | None = None, ctx: RequestContext | None = None
    ) -> bool:
        """Reclaim tombstones: rebuild vector graphs, compact segments.

        ``max_tombstone_ratio`` is the trigger threshold: the rebuild runs
        only when :attr:`tombstone_ratio` exceeds it.  ``None`` (the
        default) uses ``IndexConfig.vacuum_tombstone_ratio``, so a no-arg
        vacuum on a clean or lightly-tombstoned index is a cheap no-op;
        pass ``0.0`` explicitly to force reclamation of any tombstone.

        Returns True when a rebuild happened.
        """
        if max_tombstone_ratio is None:
            max_tombstone_ratio = self.config.vacuum_tombstone_ratio
        if self.tombstone_ratio <= max_tombstone_ratio:
            return False
        if ctx is not None:
            with ctx.trace.span(spans.STAGE_VACUUM) as span:
                span.set("tombstones", len(self._deleted))
                self._vacuum_rebuild()
        else:
            self._vacuum_rebuild()
        self._maintenance_counter.labels("vacuum").inc()
        return True

    def _vacuum_rebuild(self) -> None:
        self._generation += 1
        live = {i: r for i, r in self._records.items() if i not in self._deleted}
        self._vectors = {name: self._new_ann_index() for name in self.schema.vector_fields}
        for internal, record in live.items():
            for name, ann in self._vectors.items():
                ann.add(internal, self.embedder.embed(record.value(name)))
        if self._store is not None:
            self._store.compact_all()
            self._drain_maintenance_ops()
        for internal in list(self._deleted):
            self._records.pop(internal, None)
        for doc_id in list(self._internals_by_doc):
            kept = [i for i in self._internals_by_doc[doc_id] if i in live]
            if kept:
                self._internals_by_doc[doc_id] = kept
            else:
                del self._internals_by_doc[doc_id]
        self._deleted.clear()

    # -- reads ---------------------------------------------------------------

    def record(self, internal: int) -> ChunkRecord:
        """The chunk record stored under internal id *internal*."""
        return self._records[internal]

    def is_live(self, internal: int) -> bool:
        """False when the chunk has been tombstoned."""
        return internal in self._records and internal not in self._deleted

    def live_internals(self) -> list[int]:
        """All live internal ids."""
        return [i for i in self._records if i not in self._deleted]

    def inverted_index(self, field_name: str):
        """The postings reader of searchable field *field_name*."""
        if self._store is not None:
            return self._store.view(field_name)
        return self._inverted[field_name]

    def vector_search(
        self, field_name: str, query_vector: np.ndarray, k: int, work=None
    ) -> list[tuple[int, float]]:
        """The *k* nearest live chunks to *query_vector* on a vector field."""
        ann = self._vectors[field_name]
        if k <= 0 or len(ann) == 0:
            return []
        # Oversample to survive tombstone filtering.
        fetch = k + len(self._deleted)
        hits = ann.search(query_vector, fetch, work=work)
        live = [(internal, distance) for internal, distance in hits if internal not in self._deleted]
        return live[:k]

    def vector_search_batch(
        self, field_name: str, query_vectors: np.ndarray, k: int
    ) -> list[list[tuple[int, float]]] | None:
        """Batched :meth:`vector_search` (None when the backend can't batch).

        Only the exact (brute-force) backend supports batching — the whole
        similarity step collapses into one matrix-matrix product.
        """
        ann = self._vectors[field_name]
        if not hasattr(ann, "search_batch"):
            return None
        queries = np.asarray(query_vectors, dtype=np.float64)
        if k <= 0 or len(ann) == 0:
            return [[] for _ in range(queries.shape[0])]
        fetch = k + len(self._deleted)
        batches = ann.search_batch(queries, fetch)
        return [
            [(internal, distance) for internal, distance in hits if internal not in self._deleted][:k]
            for hits in batches
        ]

    def matches_filters(self, internal: int, filters: dict[str, str] | None) -> bool:
        """Exact-match filter evaluation on filterable fields."""
        if not filters:
            return True
        record = self._records[internal]
        for name, expected in filters.items():
            if name not in self.schema.filterable_fields:
                raise KeyError(f"field {name!r} is not filterable")
            value = getattr(record, name)
            if isinstance(value, tuple):
                if expected not in value:
                    return False
            elif value != expected:
                return False
        return True

    # -- internals -------------------------------------------------------------

    def _tombstone(self, internal: int) -> None:
        self._deleted.add(internal)
        record = self._records[internal]
        self._internal_by_chunk.pop(record.chunk_id, None)
        if self._store is not None:
            self._store.remove(
                internal, {name: record.value(name) for name in self.schema.searchable_fields}
            )
        else:
            for inverted in self._inverted.values():
                inverted.remove(internal)

    def _drain_maintenance_ops(self) -> None:
        if self._store is None or not self._store.op_counts:
            return
        for op, count in self._store.op_counts.items():
            self._maintenance_counter.labels(op).inc(count)
        self._store.op_counts.clear()

    def _new_ann_index(self) -> HnswIndex | ExactKnnIndex:
        if self._ann_backend == "exact":
            return ExactKnnIndex(self.embedder.dim)
        return HnswIndex(
            self.embedder.dim,
            m=self._hnsw_m,
            ef_construction=self._hnsw_ef_construction,
            ef_search=self._hnsw_ef_search,
            seed=self._seed,
        )
