"""Index persistence.

A production deployment does not rebuild its index on restart: records and
embeddings are persisted and reloaded.  This module saves a
:class:`~repro.search.index.SearchIndex` to a directory —

* ``records.json`` — every live chunk record plus schema/backend settings;
* ``vectors.npz``  — one embedding matrix per vector field, row-aligned
  with the records;

— and loads it back without re-embedding anything (the ANN graphs are
rebuilt deterministically from the stored vectors, which is both simpler
and more compact than serializing the HNSW adjacency).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from repro.embeddings.model import EmbeddingModel
from repro.search.index import SearchIndex
from repro.search.schema import ChunkRecord, FieldDefinition, IndexSchema
from repro.search.segment import IndexConfig

_FORMAT_VERSION = 1


def save_index(index: SearchIndex, directory: str | Path) -> Path:
    """Persist all live chunks of *index* into *directory*.

    Returns the directory path.  Tombstoned chunks are not persisted, so a
    save acts as an implicit vacuum.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    internals = sorted(index.live_internals())
    records = [dataclasses.asdict(index.record(internal)) for internal in internals]

    vector_fields = index.schema.vector_fields
    matrices: dict[str, np.ndarray] = {}
    for field_name in vector_fields:
        rows = [index.chunk_vector(internal, field_name) for internal in internals]
        matrices[field_name] = np.stack(rows) if rows else np.zeros((0, index.embedder.dim))

    manifest = {
        "version": _FORMAT_VERSION,
        "embedding_dim": index.embedder.dim,
        "schema": [dataclasses.asdict(field) for field in index.schema.fields],
        "records": records,
    }
    (directory / "records.json").write_text(json.dumps(manifest, ensure_ascii=False))
    np.savez_compressed(directory / "vectors.npz", **matrices)
    return directory


def load_index(
    directory: str | Path,
    embedder: EmbeddingModel,
    ann_backend: str = "hnsw",
    seed: int = 42,
    index_config: IndexConfig | None = None,
) -> SearchIndex:
    """Load a persisted index from *directory*.

    The *embedder* is used for future writes and queries; the persisted
    chunk vectors are inserted as-is, so loading never re-embeds.  Its
    dimensionality must match the saved one.  The bulk load ends with a
    buffer seal (:meth:`~repro.search.index.SearchIndex.flush`), so a
    loaded segmented index starts serving from sealed kernels instead of
    one giant write buffer.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "records.json").read_text())
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported index format version: {manifest.get('version')}")
    if manifest["embedding_dim"] != embedder.dim:
        raise ValueError(
            f"embedder dim {embedder.dim} does not match saved dim {manifest['embedding_dim']}"
        )

    schema = IndexSchema(
        fields=tuple(FieldDefinition(**field) for field in manifest["schema"])
    )
    index = SearchIndex(
        embedder=embedder,
        schema=schema,
        ann_backend=ann_backend,
        seed=seed,
        index_config=index_config,
    )

    with np.load(directory / "vectors.npz") as archive:
        matrices = {name: archive[name] for name in archive.files}

    for row, payload in enumerate(manifest["records"]):
        payload = dict(payload)
        for key in ("keywords", "llm_keywords"):
            if key in payload:
                payload[key] = tuple(payload[key])
        record = ChunkRecord(**payload)
        vectors = {name: matrices[name][row] for name in matrices}
        index.add_chunk(record, vectors=vectors)
    index.flush()
    return index
