"""Full-text search executor with scoring profiles.

The text half of Hybrid Search (Section 4): the query is analyzed with the
Italian analyzer and scored with Okapi BM25 against every searchable field;
per-field scores combine through a *scoring profile* — multiplicative field
weights, the mechanism the paper uses for the title-boost experiments of
Table 3 (T ∈ {5, 50, 500}).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import spans
from repro.obs.trace import RequestContext, null_context
from repro.search.bm25 import Bm25Parameters, Bm25Scorer
from repro.search.index import SearchIndex
from repro.search.results import RetrievedChunk


@dataclass(frozen=True)
class ScoringProfile:
    """Multiplicative per-field weights applied to BM25 scores.

    Fields missing from ``weights`` default to 1.0.  ``title_boost(T)``
    builds the Table 3 profiles.
    """

    weights: dict[str, float] = field(default_factory=dict)

    def weight(self, field_name: str) -> float:
        """The boost applied to *field_name* (1.0 when unspecified)."""
        return self.weights.get(field_name, 1.0)

    @staticmethod
    def title_boost(factor: float) -> "ScoringProfile":
        """Profile boosting term matches on the document title by *factor*."""
        return ScoringProfile(weights={"title": factor})


class FullTextSearch:
    """BM25 search across the searchable fields of a :class:`SearchIndex`."""

    def __init__(
        self,
        index: SearchIndex,
        profile: ScoringProfile | None = None,
        parameters: Bm25Parameters | None = None,
        search_fields: tuple[str, ...] | None = None,
    ) -> None:
        self._index = index
        self._profile = profile or ScoringProfile()
        self._parameters = parameters or Bm25Parameters()
        self._fields = search_fields or index.schema.searchable_fields

    def search(
        self,
        query: str,
        n: int = 50,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """Top-*n* chunks for *query* by profile-weighted BM25."""
        ctx = ctx or null_context()
        work = ctx.work
        with ctx.trace.span(spans.STAGE_FULLTEXT, n=n) as span:
            mark = work.snapshot() if work is not None else None
            results = self._search(query, n, filters, explain=ctx.explain, work=work)
            span.set("results", len(results))
            if work is not None:
                for kind, units in work.delta(mark).items():
                    span.set(f"work_{kind}", units)
        return results

    def _search(
        self,
        query: str,
        n: int,
        filters: dict[str, str] | None,
        explain: bool = False,
        work=None,
    ) -> list[RetrievedChunk]:
        if n <= 0:
            return []
        if not explain and getattr(self._index, "kernels_enabled", False):
            return self._search_kernel(query, n, filters, work=work)
        combined: dict[int, float] = {}
        per_field: dict[int, dict[str, float]] = {}
        for field_name in self._fields:
            inverted = self._index.inverted_index(field_name)
            terms = inverted.analyze_query(query)
            if not terms:
                continue
            scorer = Bm25Scorer(inverted, self._parameters)
            weight = self._profile.weight(field_name)
            if explain:
                scores, per_term = scorer.score_all_explained(terms, work=work)
            else:
                scores, per_term = scorer.score_all(terms, work=work), {}
            for internal, score in scores.items():
                if not self._index.is_live(internal):
                    continue
                if not self._index.matches_filters(internal, filters):
                    continue
                combined[internal] = combined.get(internal, 0.0) + weight * score
                breakdown = per_field.setdefault(internal, {})
                breakdown[f"bm25_{field_name}"] = score
                if explain:
                    # Per-term contributions of this field's BM25 score, raw
                    # (unweighted), keyed `bm25_<field>:<term>` for explain.
                    for term, contribution in per_term.get(internal, {}).items():
                        breakdown[f"bm25_{field_name}:{term}"] = contribution

        ranked = sorted(combined.items(), key=lambda pair: (-pair[1], pair[0]))[:n]
        return [
            RetrievedChunk(
                record=self._index.record(internal),
                score=score,
                components=per_field.get(internal, {}),
            )
            for internal, score in ranked
        ]

    def _search_kernel(
        self, query: str, n: int, filters: dict[str, str] | None, work=None
    ) -> list[RetrievedChunk]:
        """Vectorized multi-field scoring, bit-identical to the loop path.

        Per-field kernel scores land in a dense accumulator indexed by
        internal id, added field-by-field in the same order as the loop
        path — each document's combined score is therefore the same
        sequence of ``+= weight * score`` additions, hence the same bits.
        Liveness/filter checks move *after* combination (scores of distinct
        documents are independent, so late masking changes nothing), which
        keeps the hot loop free of per-document Python calls.
        """
        field_results: list[tuple[str, float, np.ndarray, np.ndarray]] = []
        max_internal = -1
        for field_name in self._fields:
            inverted = self._index.inverted_index(field_name)
            terms = inverted.analyze_query(query)
            if not terms:
                continue
            scorer = Bm25Scorer(inverted, self._parameters)
            ids, scores = scorer.score_arrays(terms, work=work)
            if ids.size:
                weight = self._profile.weight(field_name)
                field_results.append((field_name, weight, ids, scores))
                max_internal = max(max_internal, int(ids.max()))
        if max_internal < 0:
            return []
        combined = np.zeros(max_internal + 1, dtype=np.float64)
        touched = np.zeros(max_internal + 1, dtype=bool)
        for _, weight, ids, scores in field_results:
            combined[ids] += weight * scores
            touched[ids] = True
        candidates = np.nonzero(touched)[0]
        ranked = np.lexsort((candidates, -combined[candidates]))
        selected: list[tuple[int, float]] = []
        for position in ranked:
            internal = int(candidates[position])
            if not self._index.is_live(internal):
                continue
            if not self._index.matches_filters(internal, filters):
                continue
            selected.append((internal, float(combined[internal])))
            if len(selected) == n:
                break
        if not selected:
            return []
        selected_ids = np.array([internal for internal, _ in selected], dtype=np.int64)
        per_field: dict[int, dict[str, float]] = {}
        for field_name, _, ids, scores in field_results:
            mask = np.isin(ids, selected_ids)
            for internal, score in zip(ids[mask], scores[mask]):
                per_field.setdefault(int(internal), {})[f"bm25_{field_name}"] = float(score)
        return [
            RetrievedChunk(
                record=self._index.record(internal),
                score=score,
                components=per_field.get(internal, {}),
            )
            for internal, score in selected
        ]
