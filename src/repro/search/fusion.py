"""Reciprocal Rank Fusion (RRF).

Merges the rankings produced by text search (one ranking) and vector search
(one ranking per vector field) exactly as described in Section 4: each
document/ranking pair contributes a reciprocal-rank score ``1 / (rank + c)``
— rank starting at 1, ``c = 60`` (the Azure AI Search default) — and a
document's fused score is the sum of its contributions across rankings.
"""

from __future__ import annotations

from repro.search.results import RetrievedChunk

DEFAULT_RRF_CONSTANT = 60.0


def reciprocal_rank_fusion(
    rankings: dict[str, list[RetrievedChunk]],
    c: float = DEFAULT_RRF_CONSTANT,
    top_n: int | None = None,
) -> list[RetrievedChunk]:
    """Fuse named *rankings* into a single ranking by RRF.

    Args:
        rankings: mapping from a ranking name (e.g. ``"text"``,
            ``"vector_content"``) to an ordered result list.
        c: the RRF smoothing constant (≥ 0; Azure default 60).
        top_n: truncate the fused ranking (None keeps everything).

    The fused :class:`RetrievedChunk` keeps a per-ranking component
    breakdown (``rrf_<name>``) so downstream stages (the semantic reranker,
    debugging UIs) can see where a result came from.  Source-leg components
    (``bm25_*`` per-field/per-term scores, ``cosine_*`` similarities, shard
    attribution) are merged into the fused breakdown too, first-seen wins —
    so explain reports retain full provenance.  Components belonging to a
    *previous* fusion/rerank tier (``rrf_*`` keys of an inner fusion, its
    ``rerank_adjust``) are deliberately dropped: keeping them would make
    "sum of ``rrf_*`` == fused score" ambiguous for nested fusions such as
    multi-query expansion.
    """
    if c < 0:
        raise ValueError("c must be non-negative")

    fused_scores: dict[str, float] = {}
    components: dict[str, dict[str, float]] = {}
    payload: dict[str, RetrievedChunk] = {}

    for name, ranking in rankings.items():
        for position, result in enumerate(ranking, start=1):
            chunk_id = result.record.chunk_id
            contribution = 1.0 / (position + c)
            fused_scores[chunk_id] = fused_scores.get(chunk_id, 0.0) + contribution
            merged = components.setdefault(chunk_id, {})
            for key, value in result.components.items():
                if key.startswith("rrf_") or key == "rerank_adjust":
                    continue
                merged.setdefault(key, value)
            merged[f"rrf_{name}"] = contribution
            # Keep the first payload seen; records are identical across rankings.
            payload.setdefault(chunk_id, result)

    ordered = sorted(fused_scores.items(), key=lambda pair: (-pair[1], pair[0]))
    if top_n is not None:
        ordered = ordered[:top_n]
    return [
        RetrievedChunk(
            record=payload[chunk_id].record,
            score=score,
            components=components[chunk_id],
        )
        for chunk_id, score in ordered
    ]
