"""Chaos-capable diurnal load generator for the autoscaling control loop.

Where the Figure 2 load test ramps linearly against a rate-limited LLM,
this generator models a **day of banking traffic** against the full
backend: a sinusoidal arrival rate (quiet night, busy mid-morning),
Zipf-skewed question popularity (a handful of questions dominate, so the
answer cache and the hot-shard logic both matter), priority-class mix,
and a chaos schedule that kills and revives replicas and flips the
answer-cache epoch mid-run (the thundering herd of a bulk corpus
refresh).

Service capacity is an **M/G/k queue whose k is read live from the
cluster**: every alive replica is one serving slot, so an autoscaler
adding replicas visibly drains the queue while a fixed deployment
saturates at the diurnal peak.  The generator drives the shared
simulated clock itself and therefore requires a backend built with
request coalescing active (the concurrent-server semantics of
``BackendService.serve``).

Everything is deterministic: arrivals come from inverting the integrated
rate function, sampling from seeded ``random.Random`` streams, and time
from the injected clock.
"""

from __future__ import annotations

import heapq
import math
import random
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.api.types import (
    PRIORITIES,
    PRIORITY_BATCH,
    PRIORITY_CANARY,
    PRIORITY_INTERACTIVE,
    AskOptions,
    AskRequest,
)
from repro.core.errors import AdmissionError

#: Chaos event kinds understood by :func:`run_diurnal_load`.
CHAOS_KILL = "kill"
CHAOS_REVIVE = "revive"
CHAOS_EPOCH_FLIP = "epoch_flip"
CHAOS_KINDS = (CHAOS_KILL, CHAOS_REVIVE, CHAOS_EPOCH_FLIP)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: kill/revive a replica, or flip the cache epoch."""

    at: float
    kind: str
    shard_id: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("chaos events must be scheduled at t >= 0")
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"kind must be one of {CHAOS_KINDS}")
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")


@dataclass(frozen=True)
class DiurnalLoadConfig:
    """One simulated traffic day (compressed by default to 30 minutes)."""

    duration_seconds: float = 1800.0
    base_rate: float = 1.0  # mean arrivals per second over the day
    amplitude: float = 0.8  # peak swing as a fraction of base_rate
    period_seconds: float = 1800.0  # one full diurnal cycle
    zipf_exponent: float = 1.1  # question-popularity skew
    batch_fraction: float = 0.20
    canary_fraction: float = 0.05
    seed: int = 17
    chaos: tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if self.batch_fraction < 0 or self.canary_fraction < 0:
            raise ValueError("priority fractions must be non-negative")
        if self.batch_fraction + self.canary_fraction >= 1.0:
            raise ValueError("interactive traffic must keep a positive share")


@dataclass(frozen=True)
class DiurnalLoadReport:
    """What one diurnal run produced, per priority class and overall."""

    total_requests: int
    served: int
    rejected: int
    degraded_cached: int  # ladder level 1
    degraded_bm25: int  # ladder level 2
    latency_p50: float
    latency_p95: float
    latency_p99: float
    min_pool: int
    max_pool: int
    replica_kills: int
    epoch_flips: int
    rejected_by_priority: dict[str, int] = field(default_factory=dict)
    unhandled_errors: tuple[str, ...] = ()

    @property
    def shed_rate(self) -> float:
        """Requests that got anything less than full service, over total."""
        if self.total_requests == 0:
            return 0.0
        shed = self.rejected + self.degraded_cached + self.degraded_bm25
        return shed / self.total_requests


def diurnal_rate(config: DiurnalLoadConfig, t: float) -> float:
    """Instantaneous arrival rate at simulated second *t* (trough at t=0)."""
    phase = 2.0 * math.pi * t / config.period_seconds
    return config.base_rate * (1.0 - config.amplitude * math.cos(phase))


def _cumulative_arrivals(config: DiurnalLoadConfig, t: float) -> float:
    """Closed-form integral of :func:`diurnal_rate` from 0 to *t*."""
    omega = 2.0 * math.pi / config.period_seconds
    return config.base_rate * (t - config.amplitude * math.sin(omega * t) / omega)


def diurnal_arrivals(config: DiurnalLoadConfig) -> list[float]:
    """Deterministic arrival instants: the n-th arrival is Λ⁻¹(n).

    Λ is monotonic (amplitude < 1 keeps the rate positive), so each
    inverse is a simple bisection over [previous arrival, duration].
    """
    total = int(_cumulative_arrivals(config, config.duration_seconds))
    times: list[float] = []
    lo = 0.0
    for n in range(1, total + 1):
        hi = config.duration_seconds
        target = float(n)
        low = lo
        for _ in range(60):
            mid = 0.5 * (low + hi)
            if _cumulative_arrivals(config, mid) < target:
                low = mid
            else:
                hi = mid
        t = 0.5 * (low + hi)
        if t > config.duration_seconds:
            break
        times.append(t)
        lo = t
    return times


class ZipfSampler:
    """Seeded Zipf-skewed choice over a fixed item list (rank 1 hottest)."""

    def __init__(self, items: list[str], exponent: float, rng: random.Random) -> None:
        if not items:
            raise ValueError("at least one item is required")
        self._items = list(items)
        self._rng = rng
        cumulative: list[float] = []
        acc = 0.0
        for rank in range(1, len(items) + 1):
            acc += 1.0 / rank**exponent
            cumulative.append(acc)
        self._cumulative = cumulative
        self._total = acc

    def sample(self) -> str:
        draw = self._rng.random() * self._total
        return self._items[bisect_left(self._cumulative, draw)]


def _sample_priority(config: DiurnalLoadConfig, rng: random.Random) -> str:
    draw = rng.random()
    if draw < config.canary_fraction:
        return PRIORITY_CANARY
    if draw < config.canary_fraction + config.batch_fraction:
        return PRIORITY_BATCH
    return PRIORITY_INTERACTIVE


def _alive_pool(cluster) -> int:
    """Serving slots right now: one per alive replica across all shards."""
    return sum(
        1
        for shard_id in cluster.index.shard_ids
        for replica in cluster.replicas(shard_id)
        if replica.alive
    )


def _apply_chaos(event: ChaosEvent, cluster) -> str:
    """Execute one chaos event; returns what actually happened."""
    if event.kind == CHAOS_EPOCH_FLIP:
        cluster.index.bump_generation()
        return CHAOS_EPOCH_FLIP
    replicas = cluster.replicas(event.shard_id)
    if event.kind == CHAOS_KILL:
        alive = [replica for replica in replicas if replica.alive]
        if not alive:
            return ""
        alive[-1].kill()
        return CHAOS_KILL
    dead = [replica for replica in replicas if not replica.alive]
    for replica in dead:
        replica.revive()
    return CHAOS_REVIVE if dead else ""


def run_diurnal_load(
    backend,
    cluster,
    clock,
    token: str,
    questions: list[str],
    config: DiurnalLoadConfig | None = None,
) -> DiurnalLoadReport:
    """Play one simulated traffic day through *backend* and report QoS.

    *cluster* is the :class:`~repro.cluster.router.ClusterSearcher` the
    backend's engine serves from (the replica pool and the chaos hooks);
    *clock* the shared simulated clock; *token* an employee session.
    Observed latency of each request is queue wait plus service time in
    an M/G/k queue whose k tracks the alive replica count — so replica
    churn and autoscaler decisions move the reported percentiles, not
    just the counters.

    Admission rejections (:class:`~repro.core.errors.AdmissionError`) are
    expected output, counted per priority.  **Any other exception is a
    bug**: it is recorded in ``unhandled_errors`` (the run keeps going so
    one bad request doesn't hide the rest of the day) and callers should
    assert the tuple is empty.
    """
    from repro.service.monitoring import percentile

    config = config or DiurnalLoadConfig()
    if backend.single_flight is None:
        raise ValueError(
            "the diurnal load generator drives the clock itself; build the "
            "backend with coalescing active (concurrent-server semantics)"
        )
    if not questions:
        raise ValueError("at least one question is required")

    rng = random.Random(config.seed)
    sampler = ZipfSampler(questions, config.zipf_exponent, rng)
    chaos = sorted(config.chaos, key=lambda event: event.at)
    chaos_cursor = 0

    busy: list[float] = []  # completion times of occupied serving slots
    latencies: list[float] = []
    total = served = rejected = 0
    degraded_cached = degraded_bm25 = 0
    replica_kills = epoch_flips = 0
    rejected_by_priority = {priority: 0 for priority in PRIORITIES}
    unhandled: list[str] = []
    pool = _alive_pool(cluster)
    min_pool = max_pool = pool

    for t in diurnal_arrivals(config):
        clock.advance_to(t)
        while chaos_cursor < len(chaos) and chaos[chaos_cursor].at <= t:
            applied = _apply_chaos(chaos[chaos_cursor], cluster)
            if applied == CHAOS_KILL:
                replica_kills += 1
            elif applied == CHAOS_EPOCH_FLIP:
                epoch_flips += 1
            chaos_cursor += 1

        pool = _alive_pool(cluster)
        min_pool = min(min_pool, pool)
        max_pool = max(max_pool, pool)

        question = sampler.sample()
        priority = _sample_priority(config, rng)
        request = AskRequest(question=question, options=AskOptions(priority=priority))

        total += 1
        try:
            record = backend.serve(token, request)
        except AdmissionError:
            rejected += 1
            rejected_by_priority[priority] += 1
            continue
        except Exception as error:  # noqa: BLE001 — the report *is* the assertion
            unhandled.append(f"{type(error).__name__}: {error}")
            continue

        served += 1
        level = record.answer.degrade_level
        if level == 1:
            degraded_cached += 1
        elif level >= 2:
            degraded_bm25 += 1

        # M/G/k: wait for a slot when every alive replica is busy.
        while busy and busy[0] <= t:
            heapq.heappop(busy)
        service = record.answer.response_time
        if len(busy) < max(pool, 1):
            start = t
        else:
            start = max(t, heapq.heappop(busy))
        completion = start + service
        heapq.heappush(busy, completion)
        latencies.append(completion - t)

    return DiurnalLoadReport(
        total_requests=total,
        served=served,
        rejected=rejected,
        degraded_cached=degraded_cached,
        degraded_bm25=degraded_bm25,
        latency_p50=percentile(latencies, 50.0) if latencies else 0.0,
        latency_p95=percentile(latencies, 95.0) if latencies else 0.0,
        latency_p99=percentile(latencies, 99.0) if latencies else 0.0,
        min_pool=min_pool,
        max_pool=max_pool,
        replica_kills=replica_kills,
        epoch_flips=epoch_flips,
        rejected_by_priority=rejected_by_priority,
        unhandled_errors=tuple(unhandled),
    )
