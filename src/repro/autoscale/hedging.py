"""Adaptive hedging budgets for the cluster router.

Hedged retries are a latency tool that turns into a load amplifier
exactly when the cluster can least afford it: at high utilization every
hedge is one more probe on an already-saturated replica pool.  The
budget caps the fraction of probes allowed to hedge and shrinks that cap
linearly with utilization, reaching zero at ``hedge_disable_above`` —
the "hedging budgets" of the tail-at-scale playbook, driven here by the
autoscaler's utilization estimate.

Deterministic: the decision depends only on the configured fractions and
the exact sequence of probe opportunities, so cluster scenarios replay
bit-for-bit.
"""

from __future__ import annotations

__all__ = ["AdaptiveHedgeBudget"]


class AdaptiveHedgeBudget:
    """Caps the hedged fraction of shard probes as utilization rises."""

    def __init__(
        self,
        base_fraction: float = 0.3,
        disable_above: float = 0.85,
    ) -> None:
        if not 0.0 <= base_fraction <= 1.0:
            raise ValueError("base_fraction must be in [0, 1]")
        if not 0.0 < disable_above <= 1.0:
            raise ValueError("disable_above must be in (0, 1]")
        self.base_fraction = base_fraction
        self.disable_above = disable_above
        self._utilization = 0.0
        self._opportunities = 0
        self._granted = 0
        self._denied = 0

    # -- control feed ------------------------------------------------------

    def update_utilization(self, utilization: float) -> None:
        """Feed the current cluster utilization (the autoscaler does)."""
        self._utilization = max(0.0, utilization)

    def allowed_fraction(self) -> float:
        """The hedged fraction currently permitted (0..base_fraction)."""
        remaining = 1.0 - min(1.0, self._utilization / self.disable_above)
        return self.base_fraction * remaining

    # -- router hook -------------------------------------------------------

    def allow(self) -> bool:
        """Decide one hedge opportunity; records the grant either way.

        Grants while the running hedged fraction stays under the current
        cap — a deterministic token bucket over probe opportunities.
        """
        self._opportunities += 1
        cap = self.allowed_fraction()
        if cap <= 0.0:
            self._denied += 1
            return False
        if self._granted + 1 <= cap * self._opportunities:
            self._granted += 1
            return True
        self._denied += 1
        return False

    # -- observability -----------------------------------------------------

    def status(self) -> dict:
        return {
            "utilization": round(self._utilization, 4),
            "allowed_fraction": round(self.allowed_fraction(), 4),
            "base_fraction": self.base_fraction,
            "disable_above": self.disable_above,
            "opportunities": self._opportunities,
            "granted": self._granted,
            "denied": self._denied,
        }
