"""Configuration of the closed-loop autoscaling and admission layer.

Both knobs default to **off**: a deployment that never sets
``AutoscaleConfig.enabled`` or ``AdmissionConfig.enabled`` constructs no
autoscaler, no admission controller and no hedge budget, and every serve
surface stays byte-identical to the pre-autoscale code (the differential
suite asserts this).

The thresholds speak the language of the existing saturation telemetry
(:mod:`repro.obs.capacity`, :mod:`repro.obs.slo`): *pressure* is
offered load (Little's L) over the load the deployment absorbs at full
quality, *utilization* is L per serving replica, and scale-ups fire off
multi-window SLO burn rate the way the alerting rules do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError

__all__ = ["AdmissionConfig", "AutoscaleConfig"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission control / staged load shedding of one deployment.

    The shedding ladder maps *pressure* (offered load over
    ``target_load``, 0 = idle, 1 = the deployment's full-quality
    capacity) to a degrade level per priority class:

    ======  =========================  ==============================
    level   served by                  entered when pressure reaches
    ======  =========================  ==============================
    0       full pipeline              (below ``cached_only_at``)
    1       answer cache only          ``cached_only_at``
    2       BM25-only degraded answer  ``bm25_only_at``
    3       typed rejection            ``reject_at``
    ======  =========================  ==============================

    Lower priorities see the thresholds shifted down by their headroom,
    so canary traffic sheds first and interactive last.

    Attributes:
        enabled: construct the controller at all.  Off by default.
        target_load: offered load (Little's L) the deployment absorbs at
            full quality; pressure = L / target_load.
        cached_only_at: pressure at which interactive traffic degrades
            to answer-cache-only serving (level 1).
        bm25_only_at: pressure at which it degrades to BM25-only
            answers (level 2).
        reject_at: pressure at which it is rejected outright (level 3).
        batch_headroom: subtracted from the thresholds for batch traffic.
        canary_headroom: subtracted for canary traffic.
        retry_after_seconds: base retry-after of a rejection; scales
            linearly with the overload past ``reject_at``.
        window_seconds: rolling window of the controller's internal
            load tracking.
        full_latency_estimate: initial estimate of a full-pipeline
            response (simulated seconds) for deadline feasibility;
            refined by an EWMA of observed full responses.
        degraded_latency_estimate: estimated latency of a BM25-only
            degraded answer.
        latency_ewma_alpha: EWMA weight of each new full-pipeline
            observation.
    """

    enabled: bool = False
    target_load: float = 6.0
    cached_only_at: float = 0.70
    bm25_only_at: float = 0.85
    reject_at: float = 1.0
    batch_headroom: float = 0.15
    canary_headroom: float = 0.30
    retry_after_seconds: float = 15.0
    window_seconds: float = 60.0
    full_latency_estimate: float = 4.0
    degraded_latency_estimate: float = 0.5
    latency_ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.target_load <= 0:
            raise ConfigurationError("target_load must be positive")
        if not 0.0 < self.cached_only_at <= self.bm25_only_at <= self.reject_at:
            raise ConfigurationError(
                "shedding ladder must be ordered: 0 < cached_only_at <= "
                "bm25_only_at <= reject_at"
            )
        if self.batch_headroom < 0 or self.canary_headroom < self.batch_headroom:
            raise ConfigurationError(
                "headrooms must satisfy 0 <= batch_headroom <= canary_headroom"
            )
        if self.retry_after_seconds < 0:
            raise ConfigurationError("retry_after_seconds must be non-negative")
        if self.window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if self.full_latency_estimate <= 0 or self.degraded_latency_estimate <= 0:
            raise ConfigurationError("latency estimates must be positive")
        if not 0.0 < self.latency_ewma_alpha <= 1.0:
            raise ConfigurationError("latency_ewma_alpha must be in (0, 1]")


@dataclass(frozen=True)
class AutoscaleConfig:
    """The closed autoscaling loop of a clustered deployment.

    Attributes:
        enabled: construct the autoscaler at all.  Off by default.
        min_replicas: per-shard floor the scaler never goes below.
        max_replicas: per-shard ceiling it never exceeds.
        evaluate_interval: simulated seconds between control decisions.
        scale_up_cooldown: minimum gap between scale-up actions.
        scale_down_cooldown: minimum gap between scale-down actions
            (longer, so the scaler is eager up and lazy down).
        target_utilization: offered load per alive replica above which
            capacity is added.
        scale_down_below: load per replica below which capacity is
            removed.
        latency_slo_seconds: the latency SLO the loop defends — a
            response within this many simulated seconds counts as good.
        latency_objective: the SLO objective (fraction of good
            responses, e.g. 0.95).
        burn_short_seconds / burn_long_seconds: the multi-window pair a
            burn-rate scale-up requires (both windows must burn, the
            standard guard against reacting to a blip).
        burn_threshold: error-budget burn rate that forces a scale-up
            regardless of utilization.
        sample_horizon: how much SLO history the scaler retains.
        hot_shard_ratio: a shard whose load-per-replica exceeds the
            cluster mean by this factor gets the next replica (targeted
            scaling under skew).
        rebalance_skew: chunk-count skew (hottest shard over cluster
            mean) past which the scaler moves documents to the coldest
            shard with the ring planner's minimal-movement pins.
        rebalance_fraction: fraction of the hot shard's documents moved
            per rebalance action.
        adaptive_hedging: install an :class:`AdaptiveHedgeBudget` on the
            cluster router, shrinking hedged retries as utilization
            rises.
        hedge_base_fraction: fraction of probes allowed to hedge when
            the cluster is idle.
        hedge_disable_above: utilization at which the hedge budget
            reaches zero.
        admission: the admission-control sub-config (see
            :class:`AdmissionConfig`).
    """

    enabled: bool = False
    min_replicas: int = 1
    max_replicas: int = 6
    evaluate_interval: float = 15.0
    scale_up_cooldown: float = 30.0
    scale_down_cooldown: float = 120.0
    target_utilization: float = 0.70
    scale_down_below: float = 0.30
    latency_slo_seconds: float = 8.0
    latency_objective: float = 0.95
    burn_short_seconds: float = 60.0
    burn_long_seconds: float = 300.0
    burn_threshold: float = 4.0
    sample_horizon: float = 900.0
    hot_shard_ratio: float = 1.5
    rebalance_skew: float = 1.5
    rebalance_fraction: float = 0.25
    adaptive_hedging: bool = True
    hedge_base_fraction: float = 0.3
    hedge_disable_above: float = 0.85
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigurationError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigurationError("max_replicas must be >= min_replicas")
        if self.evaluate_interval <= 0:
            raise ConfigurationError("evaluate_interval must be positive")
        if self.scale_up_cooldown < 0 or self.scale_down_cooldown < 0:
            raise ConfigurationError("cooldowns must be non-negative")
        if not 0.0 < self.scale_down_below < self.target_utilization:
            raise ConfigurationError(
                "must satisfy 0 < scale_down_below < target_utilization"
            )
        if self.latency_slo_seconds <= 0:
            raise ConfigurationError("latency_slo_seconds must be positive")
        if not 0.0 < self.latency_objective < 1.0:
            raise ConfigurationError("latency_objective must be in (0, 1)")
        if not 0.0 < self.burn_short_seconds < self.burn_long_seconds:
            raise ConfigurationError(
                "burn windows must satisfy 0 < short < long"
            )
        if self.burn_threshold <= 0:
            raise ConfigurationError("burn_threshold must be positive")
        if self.sample_horizon < self.burn_long_seconds:
            raise ConfigurationError("sample_horizon must cover the long burn window")
        if self.hot_shard_ratio < 1.0:
            raise ConfigurationError("hot_shard_ratio must be >= 1.0")
        if self.rebalance_skew < 1.0:
            raise ConfigurationError("rebalance_skew must be >= 1.0")
        if not 0.0 < self.rebalance_fraction <= 0.5:
            raise ConfigurationError("rebalance_fraction must be in (0, 0.5]")
        if not 0.0 <= self.hedge_base_fraction <= 1.0:
            raise ConfigurationError("hedge_base_fraction must be in [0, 1]")
        if not 0.0 < self.hedge_disable_above <= 1.0:
            raise ConfigurationError("hedge_disable_above must be in (0, 1]")
