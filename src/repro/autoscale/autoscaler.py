"""The closed autoscaling loop: saturation telemetry in, topology out.

The observation side already exists — flight-window capacity tracking
(:mod:`repro.obs.capacity`) and multi-window SLO burn rates
(:mod:`repro.obs.slo`).  The :class:`Autoscaler` closes the loop: every
``evaluate_interval`` simulated seconds it reads offered load per alive
replica and the latency-SLO burn, then

* **heals** any shard whose every replica is dead before anything else
  (a dark shard serves nothing and the heat proxy cannot see it), with
  no cooldown — only the evaluation interval rate-limits repairs;
* **scales up** the hottest shard (replica added) when utilization
  crosses the target or both burn windows trip — eager, short cooldown;
* **scales down** the coldest shard when load per replica stays under
  the floor — lazy, long cooldown, never below ``min_replicas``;
* **rebalances** document placement with the consistent-hash planner's
  minimal-movement pins when chunk skew makes one shard structurally
  hot (Zipfian corpora do this), moving a bounded fraction of the hot
  shard's documents to the coldest shard;
* feeds the current utilization to the router's
  :class:`~repro.autoscale.hedging.AdaptiveHedgeBudget`, so hedged
  retries dry up as the pool saturates.

Everything runs on the deployment's :class:`SimulatedClock` and is
deterministic: the same workload produces the same decision log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.autoscale.config import AutoscaleConfig
from repro.autoscale.hedging import AdaptiveHedgeBudget
from repro.obs.capacity import CapacityMonitor
from repro.obs.slo import SLO, BurnWindow, SloSample, evaluate_burn_rates

__all__ = ["Autoscaler", "ScaleDecision"]

#: Internal resource key of the scaler's capacity tracking.
_RESOURCE = "cluster"


@dataclass(frozen=True)
class ScaleDecision:
    """One control action taken by the autoscaler.

    Attributes:
        at: simulated timestamp of the action.
        action: ``"add_replica"``, ``"remove_replica"`` or
            ``"rebalance"``.
        shard_id: the shard acted on.
        detail: replica id added/removed, or ``"moved=N->shard"`` for a
            rebalance.
        reason: the signal that triggered the action.
        total_replicas: alive replicas across the cluster afterwards.
    """

    at: float
    action: str
    shard_id: int
    detail: str
    reason: str
    total_replicas: int

    def to_dict(self) -> dict:
        return {
            "at": self.at,
            "action": self.action,
            "shard_id": self.shard_id,
            "detail": self.detail,
            "reason": self.reason,
            "total_replicas": self.total_replicas,
        }


class Autoscaler:
    """Drives replica counts and shard placement off saturation telemetry.

    Args:
        cluster: the :class:`~repro.cluster.router.ClusterSearcher` to
            act on (must expose ``add_replica`` / ``remove_replica`` /
            ``status`` and the sharded index).
        clock: the deployment's simulated clock.
        config: loop parameters; see :class:`AutoscaleConfig`.
        registry: optional metrics registry — instruments are registered
            at construction, so only autoscaling deployments gain the
            new exposition.
        hedge_budget: the router's adaptive hedge budget, when installed.
        recorder: optional incident flight recorder; every
            :class:`ScaleDecision` and every hedge-budget on/off
            transition lands on it as a control-plane event.
    """

    def __init__(
        self,
        cluster,
        clock,
        config: AutoscaleConfig | None = None,
        registry=None,
        hedge_budget: AdaptiveHedgeBudget | None = None,
        recorder=None,
    ) -> None:
        self.config = config or AutoscaleConfig()
        self._cluster = cluster
        self._clock = clock
        self._capacity = CapacityMonitor(window_seconds=self.config.burn_short_seconds)
        self._slo = SLO(
            name="latency",
            objective=self.config.latency_objective,
            description=(
                f"responses within {self.config.latency_slo_seconds:g}s simulated"
            ),
        )
        self._burn_windows = (
            BurnWindow(
                short_seconds=self.config.burn_short_seconds,
                long_seconds=self.config.burn_long_seconds,
                max_burn_rate=self.config.burn_threshold,
                severity="scale-up",
            ),
        )
        self._samples: deque[SloSample] = deque()
        self._decisions: list[ScaleDecision] = []
        self._last_evaluate = float("-inf")
        self._last_scale_up = float("-inf")
        self._last_scale_down = float("-inf")
        self._last_rebalance = float("-inf")
        self._utilization = 0.0
        self.hedge_budget = hedge_budget
        self.recorder = recorder
        self._hedges_disabled = False
        if registry is not None:
            self._g_replicas = registry.gauge(
                "uniask_autoscale_replicas",
                "Alive replicas per shard, as managed by the autoscaler.",
                ("shard",),
            )
            self._m_actions = registry.counter(
                "uniask_autoscale_actions_total",
                "Autoscaler control actions, by kind.",
                ("action",),
            )
        else:
            self._g_replicas = None
            self._m_actions = None

    # -- telemetry feed ----------------------------------------------------

    def note_request(self, arrival: float, response_time: float, failed: bool = False) -> None:
        """Record one served request (in arrival order)."""
        self._capacity.observe(_RESOURCE, arrival, response_time, failed=failed)
        good = not failed and response_time <= self.config.latency_slo_seconds
        self._samples.append(SloSample(timestamp=arrival, good=good))
        horizon = arrival - self.config.sample_horizon
        while self._samples and self._samples[0].timestamp < horizon:
            self._samples.popleft()

    # -- the control loop --------------------------------------------------

    def maybe_evaluate(self, now: float | None = None) -> list[ScaleDecision]:
        """Run :meth:`evaluate` if an interval has elapsed; else no-op."""
        at = self._clock.now() if now is None else now
        if at - self._last_evaluate < self.config.evaluate_interval:
            return []
        return self.evaluate(at)

    def evaluate(self, now: float | None = None) -> list[ScaleDecision]:
        """One control decision: read the signals, maybe act."""
        at = self._clock.now() if now is None else now
        self._last_evaluate = at
        config = self.config

        load = 0.0
        for sample in self._capacity.snapshot():
            if sample.resource == _RESOURCE:
                load = sample.littles_load
        status = self._cluster.status()
        shard_alive = {
            shard.shard_id: sum(1 for r in shard.replicas if r.alive)
            for shard in status.shards
        }
        shard_chunks = {shard.shard_id: shard.chunks for shard in status.shards}
        total_alive = max(1, sum(shard_alive.values()))
        self._utilization = load / total_alive
        if self.hedge_budget is not None:
            self.hedge_budget.update_utilization(self._utilization)
            if self.recorder is not None:
                disabled = self._utilization >= self.hedge_budget.disable_above
                if disabled != self._hedges_disabled:
                    self.recorder.record(
                        "hedges_disabled" if disabled else "hedges_restored",
                        "autoscaler",
                        utilization=round(self._utilization, 4),
                    )
                    self._hedges_disabled = disabled
        if self._g_replicas is not None:
            for shard_id, alive in shard_alive.items():
                self._g_replicas.labels(str(shard_id)).set(float(alive))

        burning = bool(
            evaluate_burn_rates(self._slo, list(self._samples), at, self._burn_windows)
        )
        taken: list[ScaleDecision] = []

        # Per-shard heat: chunks per alive replica, the structural load
        # proxy (scatter-gather sends every query to every shard, so a
        # shard is hot when it holds more documents per server).
        heat = {
            shard_id: shard_chunks[shard_id] / max(1, shard_alive[shard_id])
            for shard_id in shard_alive
        }
        mean_heat = sum(heat.values()) / max(1, len(heat))

        # Self-healing comes first and bypasses the scale-up cooldown: a
        # shard with zero alive replicas serves nothing at all, and the
        # heat proxy below cannot see it (no denominator), so without
        # this path a killed shard would stay dark until an operator
        # noticed.  evaluate_interval still rate-limits the repair.
        for shard_id in sorted(
            (sid for sid, alive in shard_alive.items() if alive == 0),
            key=lambda sid: (-shard_chunks[sid], sid),
        ):
            replica_id = self._cluster.add_replica(shard_id)
            shard_alive[shard_id] = 1
            taken.append(
                self._record(
                    at, "add_replica", shard_id, replica_id, "dead_shard",
                    sum(shard_alive.values()),
                )
            )
        if taken:
            return taken

        want_up = burning or self._utilization > config.target_utilization
        hot_shards = [
            shard_id
            for shard_id, value in heat.items()
            if mean_heat > 0.0
            and value > config.hot_shard_ratio * mean_heat
            and shard_alive[shard_id] < config.max_replicas
        ]
        if (want_up or hot_shards) and at - self._last_scale_up >= config.scale_up_cooldown:
            candidates = hot_shards or [
                shard_id
                for shard_id in shard_alive
                if shard_alive[shard_id] < config.max_replicas
            ]
            if candidates:
                target = max(candidates, key=lambda sid: (heat[sid], -sid))
                replica_id = self._cluster.add_replica(target)
                self._last_scale_up = at
                reason = (
                    "burn_rate"
                    if burning
                    else ("hot_shard" if not want_up else "utilization")
                )
                taken.append(
                    self._record(
                        at, "add_replica", target, replica_id, reason,
                        sum(shard_alive.values()) + 1,
                    )
                )
        elif (
            not want_up
            and self._utilization < config.scale_down_below
            and at - self._last_scale_down >= config.scale_down_cooldown
        ):
            candidates = [
                shard_id
                for shard_id in shard_alive
                if shard_alive[shard_id] > config.min_replicas
            ]
            if candidates:
                target = min(candidates, key=lambda sid: (heat[sid], sid))
                replica_id = self._cluster.remove_replica(target)
                self._last_scale_down = at
                taken.append(
                    self._record(
                        at, "remove_replica", target, replica_id, "idle",
                        sum(shard_alive.values()) - 1,
                    )
                )

        # Structural skew: move documents off the hottest shard with the
        # ring planner's minimal-movement pins (only the pinned documents
        # migrate; everything else stays put).
        if len(shard_chunks) > 1:
            mean_chunks = sum(shard_chunks.values()) / len(shard_chunks)
            hottest = max(shard_chunks, key=lambda sid: (shard_chunks[sid], -sid))
            coldest = min(shard_chunks, key=lambda sid: (shard_chunks[sid], sid))
            if (
                mean_chunks > 0.0
                and hottest != coldest
                and shard_chunks[hottest] > config.rebalance_skew * mean_chunks
                and at - self._last_rebalance >= config.scale_up_cooldown
            ):
                moved = self._cluster.index.rebalance_shard(
                    hottest, coldest, fraction=config.rebalance_fraction
                )
                if moved:
                    self._last_rebalance = at
                    taken.append(
                        self._record(
                            at, "rebalance", hottest,
                            f"moved={moved}->s{coldest}", "doc_skew",
                            sum(shard_alive.values()),
                        )
                    )
        return taken

    def _record(
        self, at: float, action: str, shard_id: int, detail: str, reason: str, total: int
    ) -> ScaleDecision:
        decision = ScaleDecision(
            at=at,
            action=action,
            shard_id=shard_id,
            detail=detail,
            reason=reason,
            total_replicas=total,
        )
        self._decisions.append(decision)
        if self._m_actions is not None:
            self._m_actions.labels(action).inc()
        if self.recorder is not None:
            self.recorder.record(
                "scale_decision",
                "autoscaler",
                action=action,
                shard_id=shard_id,
                detail=detail,
                reason=reason,
                total_replicas=total,
            )
        return decision

    # -- observability -----------------------------------------------------

    @property
    def decisions(self) -> tuple[ScaleDecision, ...]:
        """Every control action taken so far, in order."""
        return tuple(self._decisions)

    @property
    def utilization(self) -> float:
        """Offered load per alive replica at the last evaluation."""
        return self._utilization

    def status(self) -> dict:
        """The ``autoscale`` ops-route payload."""
        cluster_status = self._cluster.status()
        replicas = {
            str(shard.shard_id): sum(1 for r in shard.replicas if r.alive)
            for shard in cluster_status.shards
        }
        payload = {
            "enabled": True,
            "utilization": round(self._utilization, 4),
            "target_utilization": self.config.target_utilization,
            "replicas": replicas,
            "total_replicas": sum(replicas.values()),
            "decisions": [d.to_dict() for d in self._decisions[-20:]],
            "decision_count": len(self._decisions),
        }
        if self.hedge_budget is not None:
            payload["hedging"] = self.hedge_budget.status()
        return payload
