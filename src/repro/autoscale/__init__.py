"""Closed-loop autoscaling and admission control.

The capacity answer to Section 9's operability story: the saturation
telemetry (:mod:`repro.obs.capacity`) and the multi-window SLO burn
rates (:mod:`repro.obs.slo`) stop being dashboards and start being
**actuators** —

- :class:`~repro.autoscale.autoscaler.Autoscaler` adds and removes shard
  replicas off burn rate and utilization, rebalances hot shards through
  the placement ring's minimal-movement moves, and shrinks the cluster
  router's hedging budget as utilization rises;
- :class:`~repro.autoscale.admission.AdmissionController` runs every
  request through a staged shedding ladder — full pipeline, cached-only,
  BM25-only degraded answer, typed rejection with retry-after — with
  priority classes so canary and batch traffic sheds before interactive;
- :mod:`~repro.autoscale.loadgen` drives the whole loop through a
  chaos-capable diurnal traffic day to prove the tail latency holds.

Everything is off by default: a deployment that never enables the
subsystem serves byte-identical output (asserted in
``tests/test_autoscale_differential.py``).
"""

from __future__ import annotations

from repro.autoscale.admission import (
    DECISION_NAMES,
    LEVEL_CACHED_ONLY,
    LEVEL_DEGRADED,
    LEVEL_FULL,
    LEVEL_REJECT,
    AdmissionController,
    AdmissionDecision,
)
from repro.autoscale.autoscaler import Autoscaler, ScaleDecision
from repro.autoscale.config import AdmissionConfig, AutoscaleConfig
from repro.autoscale.hedging import AdaptiveHedgeBudget

__all__ = [
    "AdaptiveHedgeBudget",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "Autoscaler",
    "AutoscaleConfig",
    "ChaosEvent",
    "DECISION_NAMES",
    "DiurnalLoadConfig",
    "DiurnalLoadReport",
    "LEVEL_CACHED_ONLY",
    "LEVEL_DEGRADED",
    "LEVEL_FULL",
    "LEVEL_REJECT",
    "ScaleDecision",
    "run_diurnal_load",
]


def __getattr__(name: str):
    # The load generator pulls in the API request types; loading it lazily
    # keeps `import repro.autoscale` cheap for deployments that only need
    # the controller classes.
    if name in (
        "ChaosEvent",
        "DiurnalLoadConfig",
        "DiurnalLoadReport",
        "run_diurnal_load",
    ):
        from repro.autoscale import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
