"""Admission control: priority classes and the staged shedding ladder.

The controller turns the capacity telemetry of :mod:`repro.obs.capacity`
into a per-request *admission decision*: serve at full quality, serve
degraded (answer-cache-only, then BM25-only), or reject with a typed
retry-after.  Pressure is offered load (Little's L over the controller's
rolling window) normalized by the load the deployment absorbs at full
quality; priority classes shift the ladder so canary traffic sheds first
and interactive traffic last — the paper's deployment guarantee that a
banking operator's interactive question survives a batch re-index storm.

Deadlines compose with pressure: a request whose ``deadline_ms`` cannot
be met by the full pipeline is served degraded even when pressure is low,
and rejected when even a degraded answer would be late.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.types import (
    PRIORITIES,
    PRIORITY_BATCH,
    PRIORITY_CANARY,
    PRIORITY_INTERACTIVE,
)
from repro.autoscale.config import AdmissionConfig
from repro.core.errors import AdmissionError
from repro.obs.capacity import CapacityMonitor

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "DECISION_NAMES",
    "LEVEL_FULL",
    "LEVEL_CACHED_ONLY",
    "LEVEL_DEGRADED",
    "LEVEL_REJECT",
]

#: The shedding-ladder levels.
LEVEL_FULL = 0
LEVEL_CACHED_ONLY = 1
LEVEL_DEGRADED = 2
LEVEL_REJECT = 3

#: Human/metric-facing names of the ladder levels.
DECISION_NAMES = {
    LEVEL_FULL: "full",
    LEVEL_CACHED_ONLY: "cached_only",
    LEVEL_DEGRADED: "bm25_only",
    LEVEL_REJECT: "rejected",
}

#: Internal resource key of the controller's capacity tracking.
_RESOURCE = "admission"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one request.

    Attributes:
        level: the granted ladder level (``LEVEL_FULL`` ..
            ``LEVEL_REJECT``).
        pressure: the normalized pressure at decision time.
        priority: the request's priority class.
        retry_after_seconds: back-off hint, non-zero only on rejection.
        reason: why the level was granted — ``"pressure"``,
            ``"deadline"``, or ``"admitted"`` for an unshed request.
    """

    level: int
    pressure: float
    priority: str
    retry_after_seconds: float = 0.0
    reason: str = "admitted"

    @property
    def rejected(self) -> bool:
        return self.level >= LEVEL_REJECT

    def raise_if_rejected(self) -> None:
        """Raise the typed :class:`AdmissionError` for a rejection."""
        if not self.rejected:
            return
        raise AdmissionError(
            f"request rejected at admission ({self.reason}): "
            f"priority={self.priority} pressure={self.pressure:.2f}; "
            f"retry after {self.retry_after_seconds:.1f}s",
            priority=self.priority,
            retry_after_seconds=self.retry_after_seconds,
            pressure=self.pressure,
            reason=self.reason,
        )


class AdmissionController:
    """Staged load shedding off rolling offered load.

    Feed every served request through :meth:`observe` (the backend does);
    :meth:`admit` maps the current pressure and the request's priority /
    deadline to an :class:`AdmissionDecision`.  Deterministic: pressure
    is a pure function of the observed flight windows, so identical
    workloads shed identically.

    *registry* is optional; when set, a per-priority decision counter is
    registered at construction — enabling admission opts the deployment
    into the new exposition.  *recorder* is the optional incident flight
    recorder; per-priority ladder-level *transitions* (not every
    decision) land on it as ``admission_transition`` events.
    """

    def __init__(
        self, config: AdmissionConfig | None = None, registry=None, recorder=None
    ) -> None:
        self.config = config or AdmissionConfig()
        self._capacity = CapacityMonitor(window_seconds=self.config.window_seconds)
        self._full_latency = self.config.full_latency_estimate
        self._headroom = {
            PRIORITY_INTERACTIVE: 0.0,
            PRIORITY_BATCH: self.config.batch_headroom,
            PRIORITY_CANARY: self.config.canary_headroom,
        }
        self._decisions = {name: 0 for name in DECISION_NAMES.values()}
        self._shed_total = 0
        self._rejected_total = 0
        self.recorder = recorder
        self._last_levels: dict[str, int] = {name: LEVEL_FULL for name in PRIORITIES}
        if registry is not None:
            self._m_decisions = registry.counter(
                "uniask_admission_decisions_total",
                "Admission decisions, by priority class and granted level.",
                ("priority", "decision"),
            )
        else:
            self._m_decisions = None

    # -- telemetry feed ----------------------------------------------------

    def observe(self, arrival: float, response_time: float, level: int = LEVEL_FULL) -> None:
        """Record one served flight window (in arrival order).

        Full-pipeline responses also refine the latency estimate used for
        deadline feasibility.
        """
        self._capacity.observe(_RESOURCE, arrival, response_time)
        if level == LEVEL_FULL and response_time > 0.0:
            alpha = self.config.latency_ewma_alpha
            self._full_latency = (1.0 - alpha) * self._full_latency + alpha * response_time

    def pressure(self) -> float:
        """Offered load over ``target_load`` (0 = idle, 1 = at capacity)."""
        for sample in self._capacity.snapshot():
            if sample.resource == _RESOURCE:
                return sample.littles_load / self.config.target_load
        return 0.0

    @property
    def full_latency_estimate(self) -> float:
        """The current EWMA estimate of a full-pipeline response."""
        return self._full_latency

    # -- decisions ---------------------------------------------------------

    def _pressure_level(self, pressure: float, priority: str) -> int:
        shifted = pressure + self._headroom.get(priority, 0.0)
        config = self.config
        if shifted >= config.reject_at:
            return LEVEL_REJECT
        if shifted >= config.bm25_only_at:
            return LEVEL_DEGRADED
        if shifted >= config.cached_only_at:
            return LEVEL_CACHED_ONLY
        return LEVEL_FULL

    def _deadline_level(self, deadline_ms: int | None) -> int:
        """The cheapest level whose estimated latency meets the deadline.

        A level-1 (cache-only) grant can miss and fall through to the
        BM25 path, so for feasibility the ladder only distinguishes the
        full estimate from the degraded one.
        """
        if deadline_ms is None:
            return LEVEL_FULL
        deadline_s = deadline_ms / 1000.0
        if deadline_s >= self._full_latency:
            return LEVEL_FULL
        if deadline_s >= self.config.degraded_latency_estimate:
            return LEVEL_DEGRADED
        return LEVEL_REJECT

    def admit(self, priority: str, deadline_ms: int | None = None) -> AdmissionDecision:
        """Decide the ladder level for one request."""
        if priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")
        pressure = self.pressure()
        from_pressure = self._pressure_level(pressure, priority)
        from_deadline = self._deadline_level(deadline_ms)
        level = max(from_pressure, from_deadline)
        if level == LEVEL_FULL:
            reason = "admitted"
        elif from_deadline > from_pressure:
            reason = "deadline"
        else:
            reason = "pressure"
        retry_after = 0.0
        if level >= LEVEL_REJECT:
            overload = max(0.0, pressure - self.config.reject_at)
            retry_after = self.config.retry_after_seconds * (1.0 + overload)
        decision = AdmissionDecision(
            level=level,
            pressure=pressure,
            priority=priority,
            retry_after_seconds=retry_after,
            reason=reason,
        )
        name = DECISION_NAMES[level]
        if self.recorder is not None and level != self._last_levels[priority]:
            self.recorder.record(
                "admission_transition",
                "admission",
                priority=priority,
                from_level=DECISION_NAMES[self._last_levels[priority]],
                to_level=name,
                pressure=round(pressure, 4),
                reason=reason,
            )
            self._last_levels[priority] = level
        self._decisions[name] += 1
        if level > LEVEL_FULL:
            self._shed_total += 1
        if level >= LEVEL_REJECT:
            self._rejected_total += 1
        if self._m_decisions is not None:
            self._m_decisions.labels(priority, name).inc()
        return decision

    # -- observability -----------------------------------------------------

    def status(self) -> dict:
        """The ``admission`` ops-route payload."""
        return {
            "enabled": True,
            "pressure": round(self.pressure(), 4),
            "target_load": self.config.target_load,
            "full_latency_estimate": round(self._full_latency, 4),
            "decisions": dict(self._decisions),
            "shed_total": self._shed_total,
            "rejected_total": self._rejected_total,
            "ladder": {
                "cached_only_at": self.config.cached_only_at,
                "bm25_only_at": self.config.bm25_only_at,
                "reject_at": self.config.reject_at,
            },
            "headroom": dict(self._headroom),
        }
