"""repro — a from-scratch reproduction of UniAsk (EDBT 2025).

UniAsk is a Retrieval-Augmented Generation search system deployed for the
employees of a European bank.  This library re-implements the complete
system and every substrate it depends on — Italian text analysis, BM25
full-text search, HNSW vector search, Reciprocal Rank Fusion, semantic
reranking, an offline simulated chat LLM, guardrails, the ingestion
pipeline, the serving/monitoring layer — plus a synthetic Italian banking
knowledge base standing in for the proprietary corpus, and the evaluation
harness regenerating every table and figure of the paper.

Quick start (the stable surface lives in :mod:`repro.api`)::

    from repro import KbGenerator, build_banking_lexicon
    from repro.api import create_engine

    kb = KbGenerator().generate()
    system = create_engine(kb.store(), build_banking_lexicon())
    response = system.engine.answer("Come posso bloccare la carta di credito?")
    print(response.text)
"""

from repro.core import (
    OUTCOME_ANSWERED,
    Citation,
    GenerationConfig,
    UniAskAnswer,
    UniAskConfig,
    UniAskEngine,
    UniAskSystem,
    build_uniask_system,
)
from repro.corpus import (
    HumanDatasetConfig,
    KbGenerator,
    KbGeneratorConfig,
    KeywordDatasetConfig,
    LabeledQuery,
    SyntheticKb,
    build_banking_lexicon,
    build_banking_vocabulary,
    build_uat_dataset,
    generate_human_dataset,
    generate_keyword_dataset,
)
from repro.eval import (
    EvaluationResult,
    RetrievalEvaluator,
    RetrievalMetrics,
    hss_retriever,
    prev_retriever,
    split_dataset,
)
from repro.search import (
    HybridSearchConfig,
    HybridSemanticSearch,
    SearchIndex,
    SemanticReranker,
)

# The stable facade re-exports.  ``repro.core`` must be imported first:
# ``repro.api.types`` reaches into ``repro.core.answer``, and the engine
# (imported by ``repro.core``'s __init__) reaches back into
# ``repro.api.types`` — initializing core first keeps both legs acyclic.
from repro.api.builders import create_backend, create_engine
from repro.api.types import AskOptions, AskRequest, AskResponse
from repro.cache.config import CacheConfig

__version__ = "1.0.0"

__all__ = [
    "AskOptions",
    "AskRequest",
    "AskResponse",
    "CacheConfig",
    "create_backend",
    "create_engine",
    "OUTCOME_ANSWERED",
    "Citation",
    "GenerationConfig",
    "UniAskAnswer",
    "UniAskConfig",
    "UniAskEngine",
    "UniAskSystem",
    "build_uniask_system",
    "HumanDatasetConfig",
    "KbGenerator",
    "KbGeneratorConfig",
    "KeywordDatasetConfig",
    "LabeledQuery",
    "SyntheticKb",
    "build_banking_lexicon",
    "build_banking_vocabulary",
    "build_uat_dataset",
    "generate_human_dataset",
    "generate_keyword_dataset",
    "EvaluationResult",
    "RetrievalEvaluator",
    "RetrievalMetrics",
    "hss_retriever",
    "prev_retriever",
    "split_dataset",
    "HybridSearchConfig",
    "HybridSemanticSearch",
    "SearchIndex",
    "SemanticReranker",
    "__version__",
]
