"""repro — a from-scratch reproduction of UniAsk (EDBT 2025).

UniAsk is a Retrieval-Augmented Generation search system deployed for the
employees of a European bank.  This library re-implements the complete
system and every substrate it depends on — Italian text analysis, BM25
full-text search, HNSW vector search, Reciprocal Rank Fusion, semantic
reranking, an offline simulated chat LLM, guardrails, the ingestion
pipeline, the serving/monitoring layer — plus a synthetic Italian banking
knowledge base standing in for the proprietary corpus, and the evaluation
harness regenerating every table and figure of the paper.

Quick start::

    from repro import KbGenerator, build_banking_lexicon, build_uniask_system

    kb = KbGenerator().generate()
    system = build_uniask_system(kb.store(), build_banking_lexicon())
    answer = system.engine.ask("Come posso bloccare la carta di credito?")
    print(answer.answer_text)
"""

from repro.core import (
    OUTCOME_ANSWERED,
    Citation,
    GenerationConfig,
    UniAskAnswer,
    UniAskConfig,
    UniAskEngine,
    UniAskSystem,
    build_uniask_system,
)
from repro.corpus import (
    HumanDatasetConfig,
    KbGenerator,
    KbGeneratorConfig,
    KeywordDatasetConfig,
    LabeledQuery,
    SyntheticKb,
    build_banking_lexicon,
    build_banking_vocabulary,
    build_uat_dataset,
    generate_human_dataset,
    generate_keyword_dataset,
)
from repro.eval import (
    EvaluationResult,
    RetrievalEvaluator,
    RetrievalMetrics,
    hss_retriever,
    prev_retriever,
    split_dataset,
)
from repro.search import (
    HybridSearchConfig,
    HybridSemanticSearch,
    SearchIndex,
    SemanticReranker,
)

__version__ = "1.0.0"

__all__ = [
    "OUTCOME_ANSWERED",
    "Citation",
    "GenerationConfig",
    "UniAskAnswer",
    "UniAskConfig",
    "UniAskEngine",
    "UniAskSystem",
    "build_uniask_system",
    "HumanDatasetConfig",
    "KbGenerator",
    "KbGeneratorConfig",
    "KeywordDatasetConfig",
    "LabeledQuery",
    "SyntheticKb",
    "build_banking_lexicon",
    "build_banking_vocabulary",
    "build_uat_dataset",
    "generate_human_dataset",
    "generate_keyword_dataset",
    "EvaluationResult",
    "RetrievalEvaluator",
    "RetrievalMetrics",
    "hss_retriever",
    "prev_retriever",
    "split_dataset",
    "HybridSearchConfig",
    "HybridSemanticSearch",
    "SearchIndex",
    "SemanticReranker",
    "__version__",
]
