"""A corpus partitioned over several :class:`SearchIndex` shards.

:class:`ShardedSearchIndex` presents the same write surface as a single
:class:`~repro.search.index.SearchIndex` (``add_chunk`` / ``add_chunks`` /
``delete_document`` / ``__len__`` / ``vacuum``), so the ingestion and
indexing services drive it unchanged, while routing every document to the
shard chosen by the :class:`~repro.cluster.planner.ShardPlanner`.

Two pieces make scatter-gather retrieval rank *exactly* like one big index:

* **Global collection statistics.**  BM25 scores depend on the document
  count, per-term document frequencies and the average document length of
  the collection.  Scored per shard with local statistics those numbers
  diverge from the single-index scores, and rankings merged across shards
  stop being comparable.  :class:`_GlobalStatsInverted` is a view over one
  shard's postings that answers the statistics queries with cluster-wide
  aggregates (summed as exact integers — a mean of per-shard means would
  already differ in the last float bit), so every shard scores against the
  same global numbers the single index would use.

* **Global insertion ordinals.**  A single index breaks score ties by
  insertion order of its internal ids.  The facade assigns every chunk a
  monotonically increasing *ordinal* at ``add_chunk`` time; the router
  merges per-shard rankings with ``(-score, ordinal)``, reproducing the
  single-index tie order.  (After live resharding the per-shard local
  order may no longer embed into the ordinal order, so exact tie
  equivalence is guaranteed for clusters built by insertion, not for
  arbitrarily migrated ones.)
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.cluster.planner import ShardPlanner
from repro.embeddings.model import EmbeddingModel
from repro.obs.trace import RequestContext
from repro.search.index import SearchIndex
from repro.search.inverted import InvertedIndex
from repro.search.schema import ChunkRecord, IndexSchema, uniask_schema
from repro.search.segment import IndexConfig
from repro.text.analyzer import ItalianAnalyzer

#: Ordinal reported for chunks the facade has never seen (sorts last).
UNKNOWN_ORDINAL = 2**62


class _GlobalStatsInverted:
    """One shard's postings scored against cluster-wide BM25 statistics.

    Postings, document lengths and query analysis are local to the shard;
    ``len()``, ``document_frequency`` and ``average_length`` aggregate over
    every shard, which is exactly the split a distributed BM25 needs: term
    walks stay shard-local, collection statistics are global.
    """

    def __init__(self, cluster: "ShardedSearchIndex", field_name: str, local: InvertedIndex) -> None:
        self._cluster = cluster
        self._field_name = field_name
        self._local = local

    def _field_indexes(self) -> list[InvertedIndex]:
        return [
            self._cluster.shard_index(shard_id).inverted_index(self._field_name)
            for shard_id in self._cluster.shard_ids
        ]

    # -- global collection statistics --------------------------------------

    def __len__(self) -> int:
        return sum(len(index) for index in self._field_indexes())

    def document_frequency(self, term: str) -> int:
        return sum(index.document_frequency(term) for index in self._field_indexes())

    @property
    def average_length(self) -> float:
        indexes = self._field_indexes()
        documents = sum(len(index) for index in indexes)
        if documents == 0:
            return 0.0
        return sum(index.total_length for index in indexes) / documents

    # -- shard-local postings ----------------------------------------------

    def postings(self, term: str) -> dict[int, int]:
        return self._local.postings(term)

    def document_length(self, doc_id: int) -> int:
        return self._local.document_length(doc_id)

    def analyze_query(self, query: str) -> list[str]:
        return self._local.analyze_query(query)

    # -- kernel forwarding -------------------------------------------------

    @property
    def kernels_enabled(self) -> bool:
        """Vectorized scoring availability, decided by the local shard."""
        return bool(getattr(self._local, "kernels_enabled", False))

    def kernel_views(self):
        """The shard-local kernel views.

        The split mirrors the loop path exactly: postings arrays stay
        shard-local while the scorer reads ``len()`` / ``document_frequency``
        / ``average_length`` from this wrapper, i.e. globally — so kernel
        scores are bit-identical to single-index scores here too.
        """
        return self._local.kernel_views()


class _ShardSearchView:
    """A :class:`SearchIndex` facade over one shard for the query executors.

    Identical to the shard's own index except that ``inverted_index``
    returns the global-statistics view, so a ``FullTextSearch`` built on
    this view produces BM25 scores bit-identical to a single global index.
    """

    def __init__(self, cluster: "ShardedSearchIndex", shard_id: int) -> None:
        self._cluster = cluster
        self._shard_id = shard_id
        self._shard = cluster.shard_index(shard_id)
        self.schema = self._shard.schema
        self.embedder = self._shard.embedder

    @property
    def shard_id(self) -> int:
        """The shard this view reads from."""
        return self._shard_id

    @property
    def kernels_enabled(self) -> bool:
        """Whether the shard scores with the vectorized kernels."""
        return bool(getattr(self._shard, "kernels_enabled", False))

    def inverted_index(self, field_name: str) -> _GlobalStatsInverted:
        return _GlobalStatsInverted(
            self._cluster, field_name, self._shard.inverted_index(field_name)
        )

    def is_live(self, internal: int) -> bool:
        return self._shard.is_live(internal)

    def matches_filters(self, internal: int, filters: dict[str, str] | None) -> bool:
        return self._shard.matches_filters(internal, filters)

    def record(self, internal: int) -> ChunkRecord:
        return self._shard.record(internal)

    def vector_search(
        self, field_name: str, query_vector: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        return self._shard.vector_search(field_name, query_vector, k)

    def vector_search_batch(
        self, field_name: str, query_vectors: np.ndarray, k: int
    ) -> list[list[tuple[int, float]]] | None:
        return self._shard.vector_search_batch(field_name, query_vectors, k)


class ShardedSearchIndex:
    """N per-shard :class:`SearchIndex` instances behind one write surface.

    Args:
        embedder: embedding model shared by every shard.
        schema: field definitions; defaults to the UniAsk production schema.
        num_shards: shards to create (ignored when *planner* or
            *shard_indexes* is given).
        planner: reuse an existing placement ring (restores a persisted
            cluster); defaults to a fresh ``num_shards``-shard ring.
        shard_indexes: pre-built ``shard_id -> SearchIndex`` map (the load
            path); must cover exactly the planner's shard ids.
        Remaining arguments mirror :class:`SearchIndex` and are applied to
        every shard (existing and future).
    """

    #: Optional incident flight recorder; set by the factory (per-shard
    #: members keep None — merges are recorded once, at the cluster).
    recorder = None

    def __init__(
        self,
        embedder: EmbeddingModel,
        schema: IndexSchema | None = None,
        num_shards: int = 2,
        ann_backend: str = "hnsw",
        hnsw_m: int = 16,
        hnsw_ef_construction: int = 100,
        hnsw_ef_search: int = 80,
        seed: int = 42,
        analyzer: ItalianAnalyzer | None = None,
        planner: ShardPlanner | None = None,
        vnodes: int = 64,
        shard_indexes: dict[int, SearchIndex] | None = None,
        index_config: IndexConfig | None = None,
        registry=None,
    ) -> None:
        self.schema = schema or uniask_schema()
        self.embedder = embedder
        self._index_kwargs = dict(
            ann_backend=ann_backend,
            hnsw_m=hnsw_m,
            hnsw_ef_construction=hnsw_ef_construction,
            hnsw_ef_search=hnsw_ef_search,
            seed=seed,
            analyzer=analyzer,
            index_config=index_config,
            registry=registry,
        )
        if planner is not None:
            self._planner = planner
        elif shard_indexes is not None:
            self._planner = ShardPlanner(shard_ids=sorted(shard_indexes), vnodes=vnodes)
        else:
            self._planner = ShardPlanner(num_shards=num_shards, vnodes=vnodes)

        if shard_indexes is not None:
            if set(shard_indexes) != set(self._planner.shard_ids):
                raise ValueError("shard_indexes must cover exactly the planner's shards")
            self._shards = dict(shard_indexes)
        else:
            self._shards = {
                shard_id: self._new_shard_index() for shard_id in self._planner.shard_ids
            }

        self._ordinals: dict[str, int] = {}
        self._next_ordinal = 0
        self._generation = 0

    def _new_shard_index(self) -> SearchIndex:
        return SearchIndex(self.embedder, schema=self.schema, **self._index_kwargs)

    # -- topology ----------------------------------------------------------

    @property
    def planner(self) -> ShardPlanner:
        """The document-placement ring."""
        return self._planner

    @property
    def generation(self) -> int:
        """Monotonic cluster-wide write counter (the answer-cache epoch).

        Kept as the facade's own counter rather than a sum of the per-shard
        generations: ``remove_shard`` drops a shard's counter from such a
        sum, which would make the aggregate non-monotonic and could collide
        with an epoch a cache already stamped.
        """
        return self._generation

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """All shard ids, in creation order."""
        return self._planner.shard_ids

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return self._planner.num_shards

    def shard_index(self, shard_id: int) -> SearchIndex:
        """The :class:`SearchIndex` of shard *shard_id*."""
        return self._shards[shard_id]

    def search_view(self, shard_id: int) -> _ShardSearchView:
        """A query-executor facade of *shard_id* with global BM25 stats."""
        return _ShardSearchView(self, shard_id)

    def add_shard(self) -> int:
        """Grow the ring by one shard and migrate the documents it now owns."""
        shard_id = self._planner.add_shard()
        self._shards[shard_id] = self._new_shard_index()
        self._migrate()
        self._generation += 1
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        """Drain *shard_id*'s documents to the survivors and drop the shard."""
        if shard_id not in self._shards:
            raise KeyError(f"unknown shard {shard_id}")
        self._planner.remove_shard(shard_id)
        doomed = self._shards.pop(shard_id)
        self._migrate(extra_sources={shard_id: doomed})
        self._generation += 1

    def rebalance_shard(self, from_shard: int, to_shard: int, fraction: float = 0.25) -> int:
        """Move a bounded slice of *from_shard*'s documents to *to_shard*.

        The autoscaler's hot-shard relief valve: pins the lowest
        ``fraction`` of *from_shard*'s documents (by doc id, so repeated
        calls are deterministic) onto *to_shard* in the placement ring
        and migrates exactly those — the planner's minimal-movement
        property keeps every other document where it is.  Returns the
        number of chunks moved; bumps the generation (a placement change
        is a write, so caches re-epoch) only when something moved.
        """
        if from_shard not in self._shards:
            raise KeyError(f"unknown shard {from_shard}")
        if to_shard not in self._shards:
            raise KeyError(f"unknown shard {to_shard}")
        if from_shard == to_shard:
            raise ValueError("from_shard and to_shard must differ")
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        source = self._shards[from_shard]
        doc_ids = sorted({source.record(i).doc_id for i in source.live_internals()})
        if not doc_ids:
            return 0
        for doc_id in doc_ids[: max(1, int(len(doc_ids) * fraction))]:
            self._planner.pin(doc_id, to_shard)
        moved = self._migrate()
        if moved:
            self._generation += 1
        return moved

    def bump_generation(self) -> int:
        """Force a cache-epoch flip without touching any content.

        Chaos hook for thundering-herd drills: every answer-cache entry
        stamped with the previous epoch becomes stale at once, so the
        next wave of repeat questions re-runs the full pipeline — exactly
        what a bulk corpus refresh does in production, without the cost
        of actually rewriting documents in a load scenario.
        """
        self._generation += 1
        return self._generation

    def _migrate(self, extra_sources: dict[int, SearchIndex] | None = None) -> int:
        """Re-place documents whose ring owner changed; returns chunks moved.

        Moved chunks keep their global ordinal, so merged rankings remain
        stable for the unmoved majority of the corpus.
        """
        sources = dict(self._shards)
        sources.update(extra_sources or {})
        moved_chunks = 0
        for source_id, source in sources.items():
            stale: dict[str, list[ChunkRecord]] = {}
            for internal in source.live_internals():
                record = source.record(internal)
                if self._planner.assign(record.doc_id) != source_id:
                    stale.setdefault(record.doc_id, []).append(record)
            for doc_id, records in stale.items():
                target = self._shards[self._planner.assign(doc_id)]
                source.delete_document(doc_id)
                # Keep a shard's local insertion order aligned with the
                # global ordinals as far as possible.
                for record in sorted(records, key=lambda r: self.ordinal(r.chunk_id)):
                    target.add_chunk(record)
                    moved_chunks += 1
        return moved_chunks

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    @property
    def document_count(self) -> int:
        """Number of live source documents across all shards."""
        return sum(shard.document_count for shard in self._shards.values())

    # -- writes ------------------------------------------------------------

    def add_chunk(self, record: ChunkRecord, vectors: dict[str, np.ndarray] | None = None) -> int:
        """Index one chunk on its planner-assigned shard.

        Returns the chunk's shard-local internal id.  Also stamps the
        chunk's global insertion ordinal (re-adding an existing chunk id
        stamps a fresh one, mirroring the fresh internal id a single index
        would assign).
        """
        shard_id = self._planner.assign(record.doc_id)
        internal = self._shards[shard_id].add_chunk(record, vectors=vectors)
        self._ordinals[record.chunk_id] = self._next_ordinal
        self._next_ordinal += 1
        self._generation += 1
        return internal

    def add_chunks(self, records: Iterable[ChunkRecord]) -> list[int]:
        """Index many chunks; returns their shard-local internal ids."""
        return [self.add_chunk(record) for record in records]

    def delete_document(self, doc_id: str) -> int:
        """Tombstone every chunk of *doc_id* on its shard."""
        removed = self._shards[self._planner.assign(doc_id)].delete_document(doc_id)
        if removed:
            self._generation += 1
        return removed

    def vacuum(self, max_tombstone_ratio: float | None = None) -> bool:
        """Vacuum every shard; True when any shard rebuilt its graphs.

        ``None`` defers to each shard's configured
        ``vacuum_tombstone_ratio`` threshold, exactly like a single index.
        """
        rebuilt = False
        for shard in self._shards.values():
            rebuilt = shard.vacuum(max_tombstone_ratio) or rebuilt
        if rebuilt:
            self._generation += 1
        return rebuilt

    def flush(self) -> None:
        """Seal every shard's write buffer (no-op for monolithic shards)."""
        for shard in self._shards.values():
            shard.flush()

    def run_maintenance(
        self, now: float, ctx: RequestContext | None = None
    ) -> dict[str, int]:
        """Run segment maintenance on every shard; merged op counts.

        Content-preserving: the cluster :attr:`generation` is deliberately
        not bumped, so cached answers and legs survive background merges.
        """
        totals: dict[str, int] = {}
        for shard in self._shards.values():
            for op, count in shard.run_maintenance(now, ctx=ctx).items():
                totals[op] = totals.get(op, 0) + count
        if self.recorder is not None and any(totals.values()):
            self.recorder.record("segment_merge", "index", ops=dict(totals))
        return totals

    # -- global ordering ---------------------------------------------------

    def ordinal(self, chunk_id: str) -> int:
        """Global insertion ordinal of *chunk_id* (unknown chunks sort last)."""
        return self._ordinals.get(chunk_id, UNKNOWN_ORDINAL)

    def live_ordinals(self) -> dict[str, int]:
        """``chunk_id -> ordinal`` for every live chunk (persistence)."""
        live: dict[str, int] = {}
        for shard in self._shards.values():
            for internal in shard.live_internals():
                chunk_id = shard.record(internal).chunk_id
                live[chunk_id] = self._ordinals.get(chunk_id, UNKNOWN_ORDINAL)
        return live

    @property
    def next_ordinal(self) -> int:
        """The ordinal the next added chunk will receive."""
        return self._next_ordinal

    def restore_ordinals(self, ordinals: dict[str, int], next_ordinal: int) -> None:
        """Overwrite the ordinal table (the persistence load path)."""
        if ordinals and next_ordinal <= max(ordinals.values()):
            raise ValueError("next_ordinal must exceed every restored ordinal")
        self._ordinals = dict(ordinals)
        self._next_ordinal = next_ordinal
