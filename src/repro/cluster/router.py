"""Scatter-gather query router over a :class:`ShardedSearchIndex`.

:class:`ClusterSearcher` is the clustered counterpart of
:class:`~repro.search.hybrid.HybridSemanticSearch`: one call fans the
full-text and vector legs of a hybrid query out to every shard, merges the
per-shard rankings, fuses them with the same RRF, and applies the semantic
reranker **once** on the merged candidate set — so with exact ANN and a
cluster built by insertion, the final ranking is identical to what one
big index would return (see :mod:`repro.cluster.sharded_index` for why).

Each shard is served by a replica group with simulated, deterministic
latency.  The router enforces a per-shard deadline, skips dead and
marked-down replicas (fail-fast), sends a hedged retry to a sibling when
the primary is slow, and — when a whole shard still misses the deadline —
degrades to *partial results* instead of failing the query: the surviving
shards' candidates are fused and returned, and the outcome is surfaced on
the answer and in monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.cache.key import retrieval_cache_key
from repro.cache.retrieval_cache import ShardRetrievalCache
from repro.cluster.config import ClusterConfig
from repro.cluster.replica import Replica, ReplicaGroup
from repro.cluster.sharded_index import ShardedSearchIndex
from repro.obs import spans
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import RequestContext, null_context
from repro.obs.work import (
    WORK_RETRIEVAL_CACHE_HITS,
    WORK_RETRIEVAL_CACHE_MISSES,
    WORK_SCATTER_LEGS,
)
from repro.pipeline.clock import SimulatedClock
from repro.search.fulltext import FullTextSearch, ScoringProfile
from repro.search.fusion import reciprocal_rank_fusion
from repro.search.hybrid import HybridSearchConfig
from repro.search.reranker import SemanticReranker
from repro.search.results import RetrievedChunk
from repro.search.vector import VectorSearch


#: Traceless context handed to shard leg executors of explain requests:
#: enables per-term breakdowns without charging local stage costs.
_EXPLAIN_LEG_CONTEXT = RequestContext(explain=True)


def _attribute_shard(results: list[RetrievedChunk], shard_id: int) -> list[RetrievedChunk]:
    """Tag each leg result with its shard of origin (explain provenance)."""
    tagged = []
    for result in results:
        components = dict(result.components)
        components["shard"] = float(shard_id)
        tagged.append(
            RetrievedChunk(record=result.record, score=result.score, components=components)
        )
    return tagged


@dataclass(frozen=True)
class ShardProbe:
    """The outcome of querying one shard for one request.

    Attributes:
        shard_id: the shard probed.
        replica_id: the replica that served the request ("" on failure).
        latency: simulated seconds until the shard answered (the deadline
            when it did not).
        ok: True when the shard answered within its deadline.
        hedged: True when a hedged retry fired.
        attempts: replicas contacted (0 when none were available).
        timed_out: True when the deadline was missed.
    """

    shard_id: int
    replica_id: str
    latency: float
    ok: bool
    hedged: bool = False
    attempts: int = 1
    timed_out: bool = False


@dataclass(frozen=True)
class ScatterReport:
    """Per-shard probe outcomes of one scatter-gather query."""

    probes: tuple[ShardProbe, ...]

    @property
    def partial(self) -> bool:
        """True when at least one shard missed its deadline."""
        return any(not probe.ok for probe in self.probes)

    @property
    def failed_shards(self) -> tuple[int, ...]:
        """Ids of the shards that contributed no results."""
        return tuple(probe.shard_id for probe in self.probes if not probe.ok)

    @property
    def hedged(self) -> bool:
        """True when any shard needed a hedged retry."""
        return any(probe.hedged for probe in self.probes)

    @property
    def max_latency(self) -> float:
        """The gather barrier: the slowest successful shard (0.0 if none)."""
        latencies = [probe.latency for probe in self.probes if probe.ok]
        return max(latencies) if latencies else 0.0


@dataclass(frozen=True)
class ReplicaStatus:
    """Point-in-time health of one replica."""

    replica_id: str
    alive: bool
    slow_factor: float
    marked_down: bool
    served: int
    timeouts: int
    hedges: int


@dataclass(frozen=True)
class ShardStatus:
    """Point-in-time view of one shard and its replica group."""

    shard_id: int
    documents: int
    chunks: int
    replicas: tuple[ReplicaStatus, ...]

    @property
    def available(self) -> bool:
        """True when at least one replica can serve."""
        return any(replica.alive and not replica.marked_down for replica in self.replicas)


@dataclass(frozen=True)
class ClusterStatus:
    """Point-in-time view of the whole serving cluster."""

    shards: tuple[ShardStatus, ...]

    @property
    def degraded(self) -> bool:
        """True when some shard has no serving replica."""
        return any(not shard.available for shard in self.shards)


def format_cluster_status(status: ClusterStatus) -> str:
    """Render a cluster status as the ``--cluster-status`` CLI table."""
    lines = [f"{'shard':<8} {'docs':>6} {'chunks':>7}  replicas"]
    lines.append("-" * len(lines[0]))
    for shard in status.shards:
        states = []
        for replica in shard.replicas:
            if not replica.alive:
                state = "dead"
            elif replica.marked_down:
                state = "down"
            elif replica.slow_factor > 1.0:
                state = f"slow(x{replica.slow_factor:g})"
            else:
                state = "up"
            states.append(
                f"{replica.replica_id}={state}"
                f" served={replica.served} timeouts={replica.timeouts} hedges={replica.hedges}"
            )
        lines.append(f"{shard.shard_id:<8} {shard.documents:>6} {shard.chunks:>7}  {'; '.join(states)}")
    health = "DEGRADED" if status.degraded else "healthy"
    lines.append(f"cluster: {len(status.shards)} shards, {health}")
    return "\n".join(lines)


class ClusterSearcher:
    """Hybrid search scattered over every shard of a cluster.

    Drop-in for :class:`HybridSemanticSearch` at the engine boundary: the
    same ``search(query, filters, ctx)`` signature and the same
    :class:`HybridSearchConfig` semantics, plus :meth:`take_scatter_report`
    for callers that surface degradation.

    Args:
        index: the sharded corpus.
        reranker: applied once to the merged candidate set (required
            unless ``config.use_reranker`` is False).
        config: retrieval parameters (paper defaults).
        cluster_config: serving parameters (deadlines, replicas, hedging).
        clock: the deployment's simulated clock; replica health windows
            (mark-down cooldowns) are evaluated against it.
        hedge_budget: optional
            :class:`~repro.autoscale.hedging.AdaptiveHedgeBudget`; when
            set, each hedge opportunity first asks the budget, and a
            denied probe behaves exactly as if no sibling were
            available.  The default None keeps the pre-autoscale hedge
            behaviour byte-identical.
        profile: scoring profile forwarded to each shard's text leg.
        cache_config: enables the per-shard retrieval-result cache when
            its retrieval tier is active (None or inactive tiers leave the
            scatter path untouched).
        recorder: optional incident flight recorder; replica-liveness and
            cache-generation *changes* the router observes (kills, heals,
            epoch flips — including faults injected behind its back) land
            on it as control-plane events.
    """

    def __init__(
        self,
        index: ShardedSearchIndex,
        reranker: SemanticReranker | None = None,
        config: HybridSearchConfig | None = None,
        cluster_config: ClusterConfig | None = None,
        clock: SimulatedClock | None = None,
        profile: ScoringProfile | None = None,
        registry: MetricsRegistry | None = None,
        cache_config: CacheConfig | None = None,
        hedge_budget=None,
        recorder=None,
    ) -> None:
        self.config = config or HybridSearchConfig()
        if self.config.use_reranker and reranker is None:
            raise ValueError("a reranker is required unless use_reranker=False")
        self.cluster_config = cluster_config or ClusterConfig()
        self._index = index
        self._reranker = reranker
        self._clock = clock if clock is not None else SimulatedClock()
        self._profile = profile
        registry = registry or NULL_REGISTRY
        self._m_probes = registry.counter(
            "uniask_shard_probes_total",
            "Shard probes of scatter-gather queries, by shard and outcome.",
            ("shard", "outcome"),
        )
        self._m_hedges = registry.counter(
            "uniask_hedged_probes_total", "Shard probes that fired a hedged retry."
        )
        self._m_partial = registry.counter(
            "uniask_partial_scatters_total",
            "Queries degraded to partial results (some shard missed its deadline).",
        )
        self.hedge_budget = hedge_budget
        self._groups: dict[int, ReplicaGroup] = {}
        self._fulltext: dict[int, FullTextSearch] = {}
        self._vector: dict[int, VectorSearch] = {}
        self._query_counter = 0
        self._last_report: ScatterReport | None = None
        self.retrieval_cache: ShardRetrievalCache | None = None
        if cache_config is not None and cache_config.retrieval_tier_active:
            self.retrieval_cache = ShardRetrievalCache(cache_config, registry=registry)
        self.recorder = recorder
        # Liveness/generation baselines seed lazily at the first
        # observation, not here: initial ingestion (which legitimately
        # bumps the generation) runs after construction, and recording it
        # as an epoch flip would charge every deployment a phantom
        # control-plane event at startup.
        self._last_alive: dict[str, bool] = {}
        self._last_generation: int | None = None
        self._sync_topology()

    # -- topology ----------------------------------------------------------

    @property
    def index(self) -> ShardedSearchIndex:
        """The underlying sharded index."""
        return self._index

    def _sync_topology(self) -> None:
        """Align replica groups and executors with the current shard set."""
        current = set(self._index.shard_ids)
        for shard_id in list(self._groups):
            if shard_id not in current:
                del self._groups[shard_id]
                self._fulltext.pop(shard_id, None)
                self._vector.pop(shard_id, None)
                if self.retrieval_cache is not None:
                    self.retrieval_cache.drop_shard(shard_id)
        for shard_id in self._index.shard_ids:
            if shard_id not in self._groups:
                self._groups[shard_id] = ReplicaGroup.build(shard_id, self.cluster_config)
                view = self._index.search_view(shard_id)
                self._fulltext[shard_id] = FullTextSearch(view, profile=self._profile)
                self._vector[shard_id] = VectorSearch(self._index.shard_index(shard_id))

    def _observe_control_state(self) -> None:
        """Diff replica liveness and cache generation onto the recorder.

        The chaos tooling kills replicas and flips epochs *behind* the
        router (direct ``Replica.kill()`` / ``bump_generation()`` calls),
        so the only reliable observation point is a state diff at the
        router's own touch points.  First sight of a key seeds the
        baseline silently; disappeared keys (topology shrink) are
        dropped.  No-op without a recorder.
        """
        if self.recorder is None:
            return
        current: dict[str, bool] = {}
        for shard_id in self._index.shard_ids:
            for replica in self._groups[shard_id].replicas:
                key = f"s{shard_id}/{replica.replica_id}"
                current[key] = replica.alive
                previous = self._last_alive.get(key)
                if previous is not None and previous != replica.alive:
                    self.recorder.record(
                        "replica_kill" if previous else "replica_heal",
                        "router",
                        shard_id=shard_id,
                        replica_id=replica.replica_id,
                    )
        self._last_alive = current
        generation = self._index.generation
        if self._last_generation is not None and generation != self._last_generation:
            self.recorder.record("cache_epoch_flip", "router", generation=generation)
        self._last_generation = generation

    def replicas(self, shard_id: int) -> list[Replica]:
        """The replica group of *shard_id* (fault injection entry point)."""
        self._sync_topology()
        return list(self._groups[shard_id].replicas)

    def add_replica(self, shard_id: int) -> str:
        """Scale *shard_id* up by one healthy replica; returns its id."""
        self._sync_topology()
        replica_id = self._groups[shard_id].add_replica(self.cluster_config).replica_id
        if self.recorder is not None:
            self.recorder.record(
                "topology_change",
                "router",
                action="add_replica",
                shard_id=shard_id,
                replica_id=replica_id,
            )
            self._last_alive[f"s{shard_id}/{replica_id}"] = True
        return replica_id

    def remove_replica(self, shard_id: int) -> str:
        """Scale *shard_id* down by one replica; returns the removed id.

        Drains a dead replica when one exists, otherwise retires the
        newest alive one; the group always keeps at least one alive
        replica (the caller enforces any higher floor).
        """
        self._sync_topology()
        replica_id = self._groups[shard_id].remove_replica().replica_id
        if self.recorder is not None:
            self.recorder.record(
                "topology_change",
                "router",
                action="remove_replica",
                shard_id=shard_id,
                replica_id=replica_id,
            )
            self._last_alive.pop(f"s{shard_id}/{replica_id}", None)
        return replica_id

    # -- serving -----------------------------------------------------------

    def search(
        self,
        query: str,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """Scatter *query* to every shard, gather, fuse and rerank.

        Shards that miss their deadline are dropped from the merge; call
        :meth:`take_scatter_report` afterwards to learn whether (and
        where) the result is partial.
        """
        ctx = ctx or null_context()
        self._sync_topology()
        self._observe_control_state()
        config = self.config
        self._query_counter += 1
        turn = self._query_counter - 1

        query_vector = None
        if config.mode in ("hybrid", "vector"):
            with ctx.trace.span(spans.STAGE_EMBED_QUERY, query_chars=len(query)):
                query_vector = self._index.embedder.embed(query)

        text_candidates: list[RetrievedChunk] = []
        vector_candidates: dict[str, list[RetrievedChunk]] = {
            name: [] for name in self._index.schema.vector_fields
        }
        cache_key = None
        if self.retrieval_cache is not None and not ctx.explain:
            # Explain requests bypass the retrieval cache: cached legs were
            # gathered without per-term/per-shard breakdowns, and provenance
            # must describe *this* scatter, not a stale one.
            cache_key = retrieval_cache_key(
                query, filters, config.mode, config.text_n, config.vector_k
            )
        probes: list[ShardProbe] = []
        work = ctx.work
        now = self._clock.now()
        with ctx.trace.span(spans.STAGE_SCATTER, shards=self._index.num_shards) as scatter:
            for shard_id in self._index.shard_ids:
                probe = self._probe_shard(shard_id, query, turn, now)
                probes.append(probe)
                with ctx.trace.span(spans.shard_stage(shard_id)) as span:
                    gathered = 0
                    served_from_cache = False
                    mark = work.snapshot() if work is not None else None
                    if probe.ok:
                        if work is not None:
                            work.add(WORK_SCATTER_LEGS)
                        leg_text, leg_vector, served_from_cache = self._shard_legs(
                            shard_id, cache_key, query, query_vector, filters,
                            explain=ctx.explain, work=work,
                        )
                        text_candidates.extend(leg_text)
                        gathered += len(leg_text)
                        for field_name, leg in leg_vector:
                            vector_candidates[field_name].extend(leg)
                            gathered += len(leg)
                    span.annotate(
                        replica=probe.replica_id,
                        ok=probe.ok,
                        hedged=probe.hedged,
                        attempts=probe.attempts,
                        latency_ms=round(probe.latency * 1000.0, 3),
                        results=gathered,
                    )
                    if served_from_cache:
                        span.set("cached", True)
                    if work is not None:
                        for kind, units in work.delta(mark).items():
                            span.set(f"work_{kind}", units)
            scatter.set("failed", sum(1 for probe in probes if not probe.ok))
        report = ScatterReport(probes=tuple(probes))
        self._last_report = report
        for probe in probes:
            self._m_probes.labels(str(probe.shard_id), "ok" if probe.ok else "timeout").inc()
            if probe.hedged:
                self._m_hedges.inc()
        if report.partial:
            self._m_partial.inc()
        with ctx.trace.span(spans.STAGE_SCATTER_WAIT, wait=report.max_latency):
            pass

        rankings = self._merge(text_candidates, vector_candidates)
        return self._fuse_and_rerank(query, rankings, ctx)

    def search_degraded(
        self,
        query: str,
        filters: dict[str, str] | None = None,
        ctx: RequestContext | None = None,
    ) -> list[RetrievedChunk]:
        """BM25-only scatter for admission-degraded requests.

        The level-2 shedding path of a clustered deployment: probes every
        shard exactly like :meth:`search` (replica health, hedging and
        partial degradation all apply) but gathers only the full-text
        legs — no query embedding, no vector legs, no reranker, no
        retrieval-cache consult.
        """
        ctx = ctx or null_context()
        self._sync_topology()
        self._observe_control_state()
        config = self.config
        self._query_counter += 1
        turn = self._query_counter - 1

        text_candidates: list[RetrievedChunk] = []
        probes: list[ShardProbe] = []
        now = self._clock.now()
        with ctx.trace.span(
            spans.STAGE_SCATTER, shards=self._index.num_shards, degraded=True
        ) as scatter:
            for shard_id in self._index.shard_ids:
                probe = self._probe_shard(shard_id, query, turn, now)
                probes.append(probe)
                with ctx.trace.span(spans.shard_stage(shard_id)) as span:
                    gathered = 0
                    if probe.ok:
                        leg = self._fulltext[shard_id].search(
                            query, n=config.text_n, filters=filters, ctx=None
                        )
                        text_candidates.extend(leg)
                        gathered = len(leg)
                    span.annotate(
                        replica=probe.replica_id,
                        ok=probe.ok,
                        hedged=probe.hedged,
                        attempts=probe.attempts,
                        latency_ms=round(probe.latency * 1000.0, 3),
                        results=gathered,
                    )
            scatter.set("failed", sum(1 for probe in probes if not probe.ok))
        report = ScatterReport(probes=tuple(probes))
        self._last_report = report
        for probe in probes:
            self._m_probes.labels(str(probe.shard_id), "ok" if probe.ok else "timeout").inc()
            if probe.hedged:
                self._m_hedges.inc()
        if report.partial:
            self._m_partial.inc()
        with ctx.trace.span(spans.STAGE_SCATTER_WAIT, wait=report.max_latency):
            pass

        ordinal = self._index.ordinal
        text_candidates.sort(key=lambda r: (-r.score, ordinal(r.record.chunk_id)))
        return text_candidates[: config.final_n]

    def _shard_legs(
        self,
        shard_id: int,
        cache_key: tuple | None,
        query: str,
        query_vector,
        filters: dict[str, str] | None,
        explain: bool = False,
        work=None,
    ):
        """The text and vector leg results of one shard, cached when possible.

        The shard legs run with a null context: in a real deployment they
        execute remotely and in parallel, so their latency is the replica's
        simulated service time (charged at the gather barrier), not a
        serial sum of local stage costs.  With *explain* the legs run under
        a traceless explain context (per-term BM25 breakdowns) and every
        gathered chunk is tagged with its shard of origin.  With *work* the
        legs run under a traceless work-carrying context so kernel-level
        counters attribute to the request; the retrieval-cache consult
        books one ``retrieval_cache_hits``/``retrieval_cache_misses`` unit.

        Returns ``(text_leg, [(field, vector_leg), ...], served_from_cache)``.
        """
        config = self.config
        if cache_key is not None:
            generation = self._leg_generation(shard_id)
            cached = self.retrieval_cache.get(shard_id, cache_key, generation)
            if work is not None:
                work.add(
                    WORK_RETRIEVAL_CACHE_HITS
                    if cached is not None
                    else WORK_RETRIEVAL_CACHE_MISSES
                )
            if cached is not None:
                return cached.text, cached.vector, True

        if work is not None:
            leg_ctx = RequestContext(explain=explain, work=work)
        else:
            leg_ctx = _EXPLAIN_LEG_CONTEXT if explain else None
        leg_text: list[RetrievedChunk] = []
        leg_vector: dict[str, list[RetrievedChunk]] = {}
        if config.mode in ("hybrid", "text"):
            leg_text = self._fulltext[shard_id].search(
                query, n=config.text_n, filters=filters, ctx=leg_ctx
            )
        if query_vector is not None:
            leg_vector = self._vector[shard_id].search_by_vector(
                query_vector, k=config.vector_k, filters=filters, ctx=leg_ctx
            )
        if explain:
            leg_text = _attribute_shard(leg_text, shard_id)
            leg_vector = {
                field_name: _attribute_shard(leg, shard_id)
                for field_name, leg in leg_vector.items()
            }
        if cache_key is not None:
            self.retrieval_cache.put(shard_id, cache_key, generation, leg_text, leg_vector)
        return leg_text, list(leg_vector.items()), False

    def _leg_generation(self, shard_id: int) -> int | tuple:
        """The invalidation stamp a cached leg of *shard_id* is valid for.

        Vector legs depend only on the shard's own contents, so the shard's
        per-segment epoch stamp (:meth:`~repro.search.index.SearchIndex
        .segment_stamp`) gives exact per-shard — and within a shard,
        per-segment — invalidation: a write bumps only the epoch of the
        segment (or buffer) it touched.  BM25 text scores additionally
        depend on **global** collection statistics (document frequencies,
        average length aggregated across every shard), so any mode that
        runs a text leg must stamp with the cluster-wide generation: a
        write to shard A changes the text scores shard B would compute,
        even though B's own contents are untouched.
        """
        if self.config.mode in ("hybrid", "text"):
            return self._index.generation
        shard = self._index.shard_index(shard_id)
        stamp = getattr(shard, "segment_stamp", None)
        if stamp is not None:
            return stamp()
        return shard.generation

    def take_scatter_report(self) -> ScatterReport | None:
        """The report of the most recent :meth:`search`; clears it."""
        report = self._last_report
        self._last_report = None
        return report

    def _merge(
        self,
        text_candidates: list[RetrievedChunk],
        vector_candidates: dict[str, list[RetrievedChunk]],
    ) -> dict[str, list[RetrievedChunk]]:
        """Merge per-shard leg results into single-index-equivalent rankings.

        Scores are globally comparable (global BM25 statistics, one shared
        embedding space), so merging is a sort; ties break on the global
        insertion ordinal, reproducing the single index's internal-id tie
        order.
        """
        config = self.config
        ordinal = self._index.ordinal
        rankings: dict[str, list[RetrievedChunk]] = {}
        if config.mode in ("hybrid", "text"):
            text_candidates.sort(key=lambda r: (-r.score, ordinal(r.record.chunk_id)))
            rankings["text"] = text_candidates[: config.text_n]
        if config.mode in ("hybrid", "vector"):
            for field_name, candidates in vector_candidates.items():
                candidates.sort(key=lambda r: (-r.score, ordinal(r.record.chunk_id)))
                rankings[f"vector_{field_name}"] = candidates[: config.vector_k]
        return rankings

    def _fuse_and_rerank(
        self,
        query: str,
        rankings: dict[str, list[RetrievedChunk]],
        ctx: RequestContext,
    ) -> list[RetrievedChunk]:
        """The same fuse → rerank → truncate tail as HybridSemanticSearch."""
        config = self.config
        with ctx.trace.span(
            spans.STAGE_FUSION,
            sources=len(rankings),
            candidates=sum(len(ranking) for ranking in rankings.values()),
        ) as span:
            fused = reciprocal_rank_fusion(rankings, c=config.rrf_c, top_n=config.final_n)
            span.set("results", len(fused))
        if config.use_reranker and self._reranker is not None:
            fused = self._reranker.rerank(query, fused, ctx=ctx)
        return fused[: config.final_n]

    # -- replica selection -------------------------------------------------

    def _probe_shard(self, shard_id: int, query: str, turn: int, now: float) -> ShardProbe:
        """Pick replicas for one shard and decide whether it makes deadline.

        The primary rotates round-robin per query.  Dead and marked-down
        replicas are skipped up front (fail-fast).  When the primary has
        not answered after ``hedge_latency`` a hedged retry goes to the
        next candidate; the shard's latency is then the earlier of the two
        responses.  A shard that still exceeds ``shard_deadline`` times
        out: the query degrades to partial results, and the slow replicas'
        health records take a consecutive-timeout hit (enough hits mark a
        replica down for ``down_cooldown`` simulated seconds).
        """
        config = self.cluster_config
        deadline = config.shard_deadline
        hedge_at = config.hedge_latency
        group = self._groups[shard_id]
        candidates = [
            replica
            for replica in group.rotation(turn)
            if replica.alive and not replica.marked_down(now)
        ]
        if not candidates:
            return ShardProbe(
                shard_id=shard_id,
                replica_id="",
                latency=deadline,
                ok=False,
                attempts=0,
                timed_out=True,
            )

        primary = candidates[0]
        primary_latency = primary.service_time(query)
        if primary_latency <= hedge_at:
            primary.record_success()
            return ShardProbe(
                shard_id=shard_id,
                replica_id=primary.replica_id,
                latency=primary_latency,
                ok=True,
            )

        sibling = candidates[1] if len(candidates) > 1 else None
        if sibling is not None and self.hedge_budget is not None and not self.hedge_budget.allow():
            # Budget exhausted: at high utilization a hedged retry is pure
            # load amplification, so the probe proceeds unhedged.
            sibling = None
        if sibling is None:
            # Nobody to hedge to: the primary either makes the deadline
            # alone or the shard degrades.
            if primary_latency <= deadline:
                primary.record_success()
                return ShardProbe(
                    shard_id=shard_id,
                    replica_id=primary.replica_id,
                    latency=primary_latency,
                    ok=True,
                )
            primary.record_timeout(now, config)
            return ShardProbe(
                shard_id=shard_id,
                replica_id="",
                latency=deadline,
                ok=False,
                timed_out=True,
            )

        primary.record_hedge()
        sibling_latency = hedge_at + sibling.service_time(query)
        winner, winner_latency = (
            (primary, primary_latency)
            if primary_latency <= sibling_latency
            else (sibling, sibling_latency)
        )
        if winner_latency <= deadline:
            winner.record_success()
            if primary_latency > deadline:
                primary.record_timeout(now, config)
            return ShardProbe(
                shard_id=shard_id,
                replica_id=winner.replica_id,
                latency=winner_latency,
                ok=True,
                hedged=True,
                attempts=2,
            )
        primary.record_timeout(now, config)
        if sibling_latency > deadline:
            sibling.record_timeout(now, config)
        return ShardProbe(
            shard_id=shard_id,
            replica_id="",
            latency=deadline,
            ok=False,
            hedged=True,
            attempts=2,
            timed_out=True,
        )

    # -- observability -----------------------------------------------------

    def status(self) -> ClusterStatus:
        """A point-in-time snapshot of shard sizes and replica health."""
        self._sync_topology()
        self._observe_control_state()
        now = self._clock.now()
        shards = []
        for shard_id in self._index.shard_ids:
            shard = self._index.shard_index(shard_id)
            group = self._groups[shard_id]
            shards.append(
                ShardStatus(
                    shard_id=shard_id,
                    documents=shard.document_count,
                    chunks=len(shard),
                    replicas=tuple(
                        ReplicaStatus(
                            replica_id=replica.replica_id,
                            alive=replica.alive,
                            slow_factor=replica.slow_factor,
                            marked_down=replica.marked_down(now),
                            served=replica.health.served,
                            timeouts=replica.health.timeouts,
                            hedges=replica.health.hedges,
                        )
                        for replica in group.replicas
                    ),
                )
            )
        return ClusterStatus(shards=tuple(shards))
