"""Cluster persistence.

A sharded deployment restarts from disk exactly like the single-index one
(:mod:`repro.search.persistence`): each shard is saved with ``save_index``
into its own sub-directory, and a ``cluster.json`` manifest records the
topology (shard ids, virtual-node count, pins) plus the global insertion
ordinals that make merged rankings reproduce single-index tie order after
a reload.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster.planner import ShardPlanner
from repro.cluster.sharded_index import ShardedSearchIndex
from repro.embeddings.model import EmbeddingModel
from repro.search.persistence import load_index, save_index
from repro.search.segment import IndexConfig

_FORMAT_VERSION = 1

_MANIFEST = "cluster.json"


def _shard_directory(directory: Path, shard_id: int) -> Path:
    return directory / f"shard-{shard_id:03d}"


def save_cluster(index: ShardedSearchIndex, directory: str | Path) -> Path:
    """Persist every shard of *index* plus the cluster manifest.

    Returns the directory path.  Tombstoned chunks are not persisted
    (``save_index`` acts as an implicit per-shard vacuum), so only live
    chunks' ordinals enter the manifest.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    planner = index.planner
    manifest = {
        "version": _FORMAT_VERSION,
        "vnodes": planner.vnodes,
        "shard_ids": list(planner.shard_ids),
        "pins": planner.pins,
        "next_ordinal": index.next_ordinal,
        "ordinals": index.live_ordinals(),
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, ensure_ascii=False))
    for shard_id in planner.shard_ids:
        save_index(index.shard_index(shard_id), _shard_directory(directory, shard_id))
    return directory


def load_cluster(
    directory: str | Path,
    embedder: EmbeddingModel,
    ann_backend: str = "hnsw",
    seed: int = 42,
    index_config: IndexConfig | None = None,
) -> ShardedSearchIndex:
    """Load a persisted sharded index from *directory*.

    As with :func:`repro.search.persistence.load_index`, the persisted
    chunk vectors are inserted as-is — loading never re-embeds, and each
    shard's bulk load ends sealed rather than buffered.
    """
    directory = Path(directory)
    manifest = json.loads((directory / _MANIFEST).read_text())
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported cluster format version: {manifest.get('version')}")

    planner = ShardPlanner(
        shard_ids=manifest["shard_ids"],
        vnodes=manifest["vnodes"],
        pins={doc: int(shard) for doc, shard in manifest.get("pins", {}).items()},
    )
    shard_indexes = {
        shard_id: load_index(
            _shard_directory(directory, shard_id),
            embedder=embedder,
            ann_backend=ann_backend,
            seed=seed,
            index_config=index_config,
        )
        for shard_id in planner.shard_ids
    }
    schema = next(iter(shard_indexes.values())).schema
    index = ShardedSearchIndex(
        embedder=embedder,
        schema=schema,
        ann_backend=ann_backend,
        seed=seed,
        planner=planner,
        shard_indexes=shard_indexes,
        index_config=index_config,
    )
    index.restore_ordinals(
        {chunk: int(ordinal) for chunk, ordinal in manifest["ordinals"].items()},
        next_ordinal=int(manifest["next_ordinal"]),
    )
    return index
