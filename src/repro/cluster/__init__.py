"""Sharded, replicated query-serving cluster.

The paper deploys UniAsk against one managed Azure AI Search index; this
package scales that design out while preserving its semantics.  A
consistent-hash :class:`ShardPlanner` partitions the corpus into per-shard
:class:`~repro.search.index.SearchIndex` instances behind the
:class:`ShardedSearchIndex` write facade; the :class:`ClusterSearcher`
scatters each hybrid query to every shard (served by replica groups with
deadlines, fail-fast and hedged retries), gathers and merges the per-shard
rankings, and applies RRF + semantic reranking once on the union — so a
healthy cluster ranks exactly like the paper's single index, and an
unhealthy one degrades to partial results instead of failing.

``ClusterConfig(shards=1)`` — the default — bypasses the package entirely:
the factory wires the original single-index path unchanged.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.persistence import load_cluster, save_cluster
from repro.cluster.planner import ShardPlanner
from repro.cluster.replica import Replica, ReplicaGroup
from repro.cluster.router import (
    ClusterSearcher,
    ClusterStatus,
    ReplicaStatus,
    ScatterReport,
    ShardProbe,
    ShardStatus,
    format_cluster_status,
)
from repro.cluster.sharded_index import ShardedSearchIndex

__all__ = [
    "ClusterConfig",
    "ClusterSearcher",
    "ClusterStatus",
    "Replica",
    "ReplicaGroup",
    "ReplicaStatus",
    "ScatterReport",
    "ShardPlanner",
    "ShardProbe",
    "ShardStatus",
    "ShardedSearchIndex",
    "format_cluster_status",
    "load_cluster",
    "save_cluster",
]
