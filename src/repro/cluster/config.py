"""Configuration of the sharded, replicated query-serving cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterConfig:
    """Everything tunable about the serving cluster.

    ``shards=1`` (the default) means "no cluster": the factory wires the
    single-index path unchanged, which reproduces the paper's one managed
    search index exactly.  With ``shards > 1`` the corpus is partitioned by
    consistent hashing of the document id and every query is scattered to
    all shards.

    Attributes:
        shards: number of index shards (1 disables the cluster layer).
        replicas: replicas per shard (serving capacity / availability).
        vnodes: virtual nodes per shard on the consistent-hash ring; more
            vnodes → smoother balance, slightly larger ring.
        shard_deadline: simulated seconds a shard may take before the
            router gives up on it and degrades to partial results.
        hedge_fraction: fraction of the deadline after which a hedged
            retry is sent to a sibling replica (0.5 → hedge at half the
            deadline, the classic tail-at-scale rule of thumb).
        replica_base_latency: simulated seconds a healthy replica takes
            to serve one shard-level search.
        replica_latency_jitter: relative deterministic per-(replica,
            query) latency spread in ``[0, jitter]``.
        down_after: consecutive timeouts before a replica is marked down.
        down_cooldown: simulated seconds a marked-down replica is skipped
            (fail-fast) before it is probed again.
    """

    shards: int = 1
    replicas: int = 2
    vnodes: int = 64
    shard_deadline: float = 0.03
    hedge_fraction: float = 0.5
    replica_base_latency: float = 0.008
    replica_latency_jitter: float = 0.25
    down_after: int = 3
    down_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.shard_deadline <= 0:
            raise ValueError("shard_deadline must be positive")
        if not 0.0 < self.hedge_fraction <= 1.0:
            raise ValueError("hedge_fraction must lie in (0, 1]")
        if self.replica_base_latency <= 0:
            raise ValueError("replica_base_latency must be positive")
        if self.replica_latency_jitter < 0:
            raise ValueError("replica_latency_jitter must be non-negative")
        if self.down_after < 1:
            raise ValueError("down_after must be >= 1")
        if self.down_cooldown < 0:
            raise ValueError("down_cooldown must be non-negative")

    @property
    def hedge_latency(self) -> float:
        """Simulated seconds after which a hedged retry fires."""
        return self.hedge_fraction * self.shard_deadline
