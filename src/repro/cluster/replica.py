"""Replica groups: per-shard serving capacity with simulated health.

Storage and serving are separated the way the managed deployment separates
them: the chunk data of a shard lives once (in the shard's
:class:`~repro.search.index.SearchIndex`), while each :class:`Replica`
models one *server* of that shard — its simulated service latency, its
liveness, and its health history.  Replicas therefore add availability
semantics (timeouts, fail-fast on marked-down servers, hedged retries)
without duplicating index memory.

All latency is deterministic: a replica's service time is its base latency
times a per-``(replica, query)`` hash-noise factor, read against the
deployment's :class:`~repro.pipeline.clock.SimulatedClock`, so cluster
scenarios (kill / degrade / recover) replay bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.cluster.config import ClusterConfig


def _unit_noise(replica_id: str, query: str) -> float:
    """Deterministic pseudo-noise in [0, 1) keyed on the (replica, query) pair."""
    digest = hashlib.blake2b(
        f"{replica_id}\x00{query}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass
class ReplicaHealth:
    """Mutable health record of one replica."""

    served: int = 0
    timeouts: int = 0
    consecutive_timeouts: int = 0
    hedges: int = 0
    marked_down_until: float = 0.0


class Replica:
    """One serving replica of a shard.

    Fault injection for tests and load scenarios: :meth:`kill` makes the
    replica refuse connections (fail-fast), :meth:`degrade` multiplies its
    service time (slow replica → hedges / timeouts), :meth:`revive`
    restores a healthy server.
    """

    def __init__(
        self,
        replica_id: str,
        base_latency: float = 0.008,
        jitter: float = 0.25,
    ) -> None:
        if base_latency <= 0:
            raise ValueError("base_latency must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.replica_id = replica_id
        self.alive = True
        self.slow_factor = 1.0
        self.health = ReplicaHealth()
        self._base_latency = base_latency
        self._jitter = jitter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "down"
        return f"Replica({self.replica_id!r}, {state}, x{self.slow_factor:g})"

    # -- simulated serving -------------------------------------------------

    def service_time(self, query: str) -> float:
        """Deterministic simulated seconds to serve *query* on this replica."""
        noise = 1.0 + self._jitter * _unit_noise(self.replica_id, query)
        return self._base_latency * self.slow_factor * noise

    def marked_down(self, now: float) -> bool:
        """True while the health tracker is failing this replica fast."""
        return now < self.health.marked_down_until

    # -- health bookkeeping ------------------------------------------------

    def record_success(self) -> None:
        """One served request; resets the consecutive-timeout streak."""
        self.health.served += 1
        self.health.consecutive_timeouts = 0

    def record_timeout(self, now: float, config: ClusterConfig) -> None:
        """One deadline miss; marks the replica down after ``down_after``."""
        self.health.timeouts += 1
        self.health.consecutive_timeouts += 1
        if self.health.consecutive_timeouts >= config.down_after:
            self.health.marked_down_until = now + config.down_cooldown

    def record_hedge(self) -> None:
        """A hedged retry fired because this replica was slow."""
        self.health.hedges += 1

    # -- fault injection ---------------------------------------------------

    def kill(self) -> None:
        """Take the replica down hard (connection refused)."""
        self.alive = False

    def degrade(self, slow_factor: float) -> None:
        """Multiply the replica's service time by *slow_factor*."""
        if slow_factor <= 0:
            raise ValueError("slow_factor must be positive")
        self.slow_factor = slow_factor

    def revive(self) -> None:
        """Bring the replica back healthy (clears markdown and slowness)."""
        self.alive = True
        self.slow_factor = 1.0
        self.health.consecutive_timeouts = 0
        self.health.marked_down_until = 0.0


@dataclass
class ReplicaGroup:
    """The replicas serving one shard.

    ``next_index`` is the monotonic replica-id counter: ids are never
    reused, so a replica added after a scale-down gets a fresh name and
    health/metric histories stay unambiguous.
    """

    shard_id: int
    replicas: list[Replica] = field(default_factory=list)
    next_index: int = 0

    @classmethod
    def build(cls, shard_id: int, config: ClusterConfig) -> "ReplicaGroup":
        """A fresh group of ``config.replicas`` healthy replicas."""
        return cls(
            shard_id=shard_id,
            replicas=[
                Replica(
                    replica_id=f"s{shard_id}/r{i}",
                    base_latency=config.replica_base_latency,
                    jitter=config.replica_latency_jitter,
                )
                for i in range(config.replicas)
            ],
            next_index=config.replicas,
        )

    def add_replica(self, config: ClusterConfig) -> Replica:
        """Grow the group by one healthy replica (scale-up)."""
        replica = Replica(
            replica_id=f"s{self.shard_id}/r{self.next_index}",
            base_latency=config.replica_base_latency,
            jitter=config.replica_latency_jitter,
        )
        self.next_index += 1
        self.replicas.append(replica)
        return replica

    def remove_replica(self) -> Replica:
        """Shrink the group by one alive replica (scale-down).

        Prefers draining a dead replica (garbage collection); otherwise
        removes the newest alive one.  The group must keep at least one
        alive replica.
        """
        alive = [replica for replica in self.replicas if replica.alive]
        dead = [replica for replica in self.replicas if not replica.alive]
        if dead:
            victim = dead[-1]
        else:
            if len(alive) <= 1:
                raise ValueError(
                    f"shard {self.shard_id} must keep at least one alive replica"
                )
            victim = alive[-1]
        self.replicas.remove(victim)
        return victim

    def rotation(self, turn: int) -> list[Replica]:
        """The replicas starting from the round-robin primary of *turn*."""
        if not self.replicas:
            return []
        start = turn % len(self.replicas)
        return self.replicas[start:] + self.replicas[:start]
