"""Shard planner: consistent-hash document placement with minimal movement.

Documents are placed on shards by hashing their ``doc_id`` onto a ring of
virtual nodes (``vnodes`` points per shard, blake2b — the salted built-in
``hash`` would not survive process restarts).  The consistent-hashing
property is what makes resharding cheap: adding one shard to an *N*-shard
ring moves only ~``1/(N+1)`` of the documents, all of them *onto* the new
shard; removing a shard moves only that shard's documents, spreading them
over the survivors.

Placement is at **document** granularity — every chunk of a document lands
on the same shard — so document-level deletes stay single-shard operations
and chunk ordering within a document is preserved inside one shard.

Explicit assignments (``pin``) override the ring, for operational moves
like draining a hot document onto a dedicated shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable


def _ring_point(key: str) -> int:
    """Deterministic 64-bit hash of *key* (stable across processes)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardPlanner:
    """Maps document ids to shard ids via a consistent-hash ring.

    Args:
        num_shards: shards to create up front (ids ``0..num_shards-1``).
        vnodes: virtual nodes per shard.
        shard_ids: restore an exact ring from a persisted shard-id list
            instead of creating ``num_shards`` fresh shards.
        pins: explicit ``doc_id -> shard_id`` overrides.
    """

    def __init__(
        self,
        num_shards: int = 1,
        vnodes: int = 64,
        shard_ids: Iterable[int] | None = None,
        pins: dict[str, int] | None = None,
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._points: list[tuple[int, int]] = []  # (ring position, shard id), sorted
        self._shard_ids: list[int] = []
        self._next_shard_id = 0
        self._pins: dict[str, int] = dict(pins or {})
        if shard_ids is not None:
            for shard_id in shard_ids:
                self._insert_shard(int(shard_id))
        else:
            if num_shards < 1:
                raise ValueError("num_shards must be >= 1")
            for _ in range(num_shards):
                self.add_shard()
        if not self._shard_ids:
            raise ValueError("a planner needs at least one shard")

    # -- topology ----------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        """All shard ids, in creation order."""
        return tuple(self._shard_ids)

    @property
    def num_shards(self) -> int:
        """Number of shards on the ring."""
        return len(self._shard_ids)

    @property
    def vnodes(self) -> int:
        """Virtual nodes per shard."""
        return self._vnodes

    @property
    def pins(self) -> dict[str, int]:
        """Explicit document placements overriding the ring."""
        return dict(self._pins)

    def add_shard(self) -> int:
        """Add one shard to the ring; returns its id.

        Only keys whose ring successor becomes one of the new shard's
        vnodes change owner — the minimal-movement guarantee.
        """
        shard_id = self._next_shard_id
        self._insert_shard(shard_id)
        return shard_id

    def remove_shard(self, shard_id: int) -> None:
        """Remove *shard_id* from the ring (its keys spread to survivors)."""
        if shard_id not in self._shard_ids:
            raise KeyError(f"unknown shard {shard_id}")
        if len(self._shard_ids) == 1:
            raise ValueError("cannot remove the last shard")
        self._shard_ids.remove(shard_id)
        self._points = [(pos, sid) for pos, sid in self._points if sid != shard_id]
        self._pins = {doc: sid for doc, sid in self._pins.items() if sid != shard_id}

    def _insert_shard(self, shard_id: int) -> None:
        if shard_id in self._shard_ids:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shard_ids.append(shard_id)
        self._next_shard_id = max(self._next_shard_id, shard_id + 1)
        for vnode in range(self._vnodes):
            self._points.append((_ring_point(f"shard-{shard_id}/vnode-{vnode}"), shard_id))
        self._points.sort()

    # -- placement ---------------------------------------------------------

    def assign(self, doc_id: str) -> int:
        """The shard owning *doc_id* (pin, else first vnode clockwise)."""
        pinned = self._pins.get(doc_id)
        if pinned is not None:
            return pinned
        position = _ring_point(doc_id)
        index = bisect.bisect_right(self._points, (position, 2**64))
        if index == len(self._points):
            index = 0  # wrap around the ring
        return self._points[index][1]

    def pin(self, doc_id: str, shard_id: int) -> None:
        """Pin *doc_id* to *shard_id*, overriding the ring."""
        if shard_id not in self._shard_ids:
            raise KeyError(f"unknown shard {shard_id}")
        self._pins[doc_id] = shard_id

    def unpin(self, doc_id: str) -> None:
        """Remove an explicit placement (no-op when absent)."""
        self._pins.pop(doc_id, None)

    def plan(self, doc_ids: Iterable[str]) -> dict[int, list[str]]:
        """Partition *doc_ids* into per-shard lists (every shard keyed)."""
        partition: dict[int, list[str]] = {shard_id: [] for shard_id in self._shard_ids}
        for doc_id in doc_ids:
            partition[self.assign(doc_id)].append(doc_id)
        return partition

    def moves_for(self, doc_ids: Iterable[str], previous: "ShardPlanner") -> dict[str, tuple[int, int]]:
        """Documents whose owner differs from *previous*: ``doc -> (old, new)``."""
        moves: dict[str, tuple[int, int]] = {}
        for doc_id in doc_ids:
            old = previous.assign(doc_id)
            new = self.assign(doc_id)
            if old != new:
                moves[doc_id] = (old, new)
        return moves
