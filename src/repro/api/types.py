"""Typed request/response dataclasses of the stable public API.

These are the *only* types a caller needs to drive UniAsk: build an
:class:`AskRequest` (question + :class:`AskOptions`), hand it to
``engine.answer()`` or ``backend.serve()``, and read the
:class:`AskResponse`.  The engine's legacy positional signature
(``ask(question, filters, ctx)``) survives as a deprecated shim; new
options (tracing, cache policy, request ids, whatever comes next) land
here instead of growing more positional parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.routes import ALL_ROUTES
from repro.core.answer import Citation, UniAskAnswer
from repro.obs.trace import Trace

#: Cache policies of one request.
CACHE_DEFAULT = "default"  # serve from cache when possible, store on miss
CACHE_BYPASS = "bypass"  # ignore the cache entirely (no read, no store)
CACHE_REFRESH = "refresh"  # recompute and overwrite the cached entry

CACHE_POLICIES = (CACHE_DEFAULT, CACHE_BYPASS, CACHE_REFRESH)

#: Priority classes of one request, ordered from most to least protected.
#: Under load the admission controller sheds canary traffic first, then
#: batch, and keeps interactive requests at full quality the longest.
PRIORITY_INTERACTIVE = "interactive"
PRIORITY_BATCH = "batch"
PRIORITY_CANARY = "canary"

PRIORITIES = (PRIORITY_INTERACTIVE, PRIORITY_BATCH, PRIORITY_CANARY)


@dataclass(frozen=True)
class AskOptions:
    """Per-request knobs of one question.

    Attributes:
        filters: exact-match metadata filters applied during retrieval
            (``{"domain": "carte"}``), or None for the whole corpus.
        trace: request a per-stage trace; the finished trace rides back on
            ``response.trace``.  Ignored when the caller supplies its own
            :class:`~repro.obs.trace.RequestContext` (the backend does).
        cache: one of :data:`CACHE_DEFAULT`, :data:`CACHE_BYPASS`,
            :data:`CACHE_REFRESH`.  Irrelevant (and harmless) when the
            deployment's cache is disabled.
        request_id: caller-chosen id stamped on traces and audit entries.
        explain: request full score provenance; the finished
            :class:`~repro.obs.explain.ExplainReport` rides back on
            ``response.explain``.  Explain requests bypass the answer and
            retrieval caches (provenance must describe *this* execution)
            and record per-term/per-shard breakdowns; with the default
            False the pipeline runs exactly the pre-explain code.
        route: explicit agent-route override (a ``ROUTE_*`` constant of
            :mod:`repro.agents.routes`); "" lets the Orchestrator's intent
            classifier decide.  Inert in agents-off deployments.
        session_id: conversation identifier for follow-up resolution; the
            backend injects its session token here, so anaphoric turns
            resolve against the right conversation.  "" disables session
            memory for the request.
        priority: one of :data:`PRIORITIES`.  Under overload the admission
            controller degrades and sheds lower priorities first; with the
            default (interactive) and admission disabled the field is
            inert.
        deadline_ms: client deadline in milliseconds, or None for no
            deadline.  When admission control is enabled the backend
            serves the request at the cheapest degrade level that can
            meet the deadline, and rejects it (typed
            :class:`~repro.core.errors.AdmissionError`) when even a fully
            degraded answer cannot.
        profile: request deterministic work accounting (and, implicitly,
            a per-stage trace — profiling piggybacks on spans).  The
            accrued counts ride back on ``response.work`` as a
            ``{kind: units}`` dict (see :mod:`repro.obs.work`); with the
            default False no counter is allocated and the pipeline runs
            exactly the pre-profiling code.
    """

    filters: dict[str, str] | None = None
    trace: bool = False
    cache: str = CACHE_DEFAULT
    request_id: str = ""
    explain: bool = False
    route: str = ""
    session_id: str = ""
    profile: bool = False
    priority: str = PRIORITY_INTERACTIVE
    deadline_ms: int | None = None

    def __post_init__(self) -> None:
        if self.cache not in CACHE_POLICIES:
            raise ValueError(f"cache policy must be one of {CACHE_POLICIES}")
        if self.route and self.route not in ALL_ROUTES:
            raise ValueError(f"route must be one of {ALL_ROUTES} (or empty)")
        if self.priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")
        if self.deadline_ms is not None:
            if isinstance(self.deadline_ms, bool) or not isinstance(self.deadline_ms, int):
                raise ValueError("deadline_ms must be a positive integer or None")
            if self.deadline_ms <= 0:
                raise ValueError("deadline_ms must be a positive integer or None")


@dataclass(frozen=True)
class AskRequest:
    """One question plus its per-request options."""

    question: str
    options: AskOptions = field(default_factory=AskOptions)

    @classmethod
    def of(cls, question: str, **option_kwargs) -> "AskRequest":
        """Shorthand: ``AskRequest.of("...", filters=..., trace=True)``."""
        return cls(question=question, options=AskOptions(**option_kwargs))


@dataclass(frozen=True)
class AskResponse:
    """Everything the engine returns for one :class:`AskRequest`.

    Wraps the full :class:`~repro.core.answer.UniAskAnswer` and exposes
    the fields callers reach for most as flat properties.
    """

    answer: UniAskAnswer
    request: AskRequest

    @property
    def text(self) -> str:
        """The user-facing answer text."""
        return self.answer.answer_text

    @property
    def outcome(self) -> str:
        """The pipeline outcome (``answered``, ``guardrail_*``, ...)."""
        return self.answer.outcome

    @property
    def answered(self) -> bool:
        """True when a generated answer was accepted and shown."""
        return self.answer.answered

    @property
    def citations(self) -> tuple[Citation, ...]:
        """Resolved citations of the accepted answer."""
        return self.answer.citations

    @property
    def documents(self):
        """The retrieved chunk ranking."""
        return self.answer.documents

    @property
    def cache_hit(self) -> str:
        """``"exact"`` / ``"semantic"`` / ``"coalesced"``, or "" on a miss."""
        return self.answer.cache_hit

    @property
    def partial_results(self) -> bool:
        """True when a degraded cluster served only some shards."""
        return self.answer.partial_results

    @property
    def trace(self) -> Trace | None:
        """The per-stage trace, when one was requested."""
        return self.answer.trace

    @property
    def explain(self):
        """The :class:`~repro.obs.explain.ExplainReport`, when requested."""
        return self.answer.explain_report

    @property
    def route(self) -> str:
        """The agent route that served the question ("" when agents are off)."""
        return self.answer.route

    @property
    def work(self) -> dict[str, int] | None:
        """Deterministic work counts (``{kind: units}``), when profiling."""
        return self.answer.work

    @property
    def degrade_level(self) -> int:
        """The shedding-ladder level that served the request.

        0 = full pipeline, 1 = answer-cache only, 2 = BM25-only degraded
        answer.  Level-3 requests never produce a response — they raise
        :class:`~repro.core.errors.AdmissionError` instead.
        """
        return self.answer.degrade_level

    @property
    def shed(self) -> bool:
        """True when admission control served less than the full pipeline."""
        return self.answer.degrade_level > 0
