"""Deployment builders of the stable public API.

``create_engine`` and ``create_backend`` are the supported way to stand a
deployment up; they wrap :func:`repro.core.factory.build_uniask_system`
and :class:`repro.service.backend.BackendService` so callers never have to
deep-import ``repro.core.factory`` / ``repro.core.engine`` (module paths
that remain free to move between releases — the facade will not).

Imports of the factory and service layers happen inside the functions:
``repro.core.engine`` itself imports ``repro.api.types``, so a
module-level import here would close an import cycle through the package
``__init__``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.config import UniAskConfig
    from repro.core.factory import UniAskSystem


def create_engine(store, lexicon, config: "UniAskConfig | None" = None, **kwargs) -> "UniAskSystem":
    """Wire a complete deployment; the engine lives at ``system.engine``.

    Returns the full :class:`~repro.core.factory.UniAskSystem` rather than
    the bare engine so callers keep handles to the store, the simulated
    clock and the ingestion pipeline — everything the operational examples
    need.  Arguments mirror
    :func:`~repro.core.factory.build_uniask_system` exactly.
    """
    from repro.core.factory import build_uniask_system

    return build_uniask_system(store, lexicon, config=config, **kwargs)


def create_backend(system: "UniAskSystem", tracing: bool = False, **kwargs):
    """A :class:`~repro.service.backend.BackendService` over *system*.

    Wires the service onto the system's clock, telemetry and cache
    configuration; extra keyword arguments (latency model parameters,
    seeds) pass through to the service constructor.

    QoS wiring follows the system's config: an admission-enabled
    deployment gets an
    :class:`~repro.autoscale.admission.AdmissionController`, an
    autoscale-enabled cluster threads ``system.autoscaler`` into the
    serve loop, and an incident-enabled deployment gets an
    :class:`~repro.obs.incident.IncidentManager` over the system's
    flight recorder.  All stay None — and the service byte-identical —
    when the config leaves them off.  Explicit ``admission=`` /
    ``autoscaler=`` / ``incidents=`` keyword arguments win over the
    config-driven wiring.
    """
    from repro.service.backend import BackendService

    if "admission" not in kwargs and system.config.autoscale.admission.enabled:
        from repro.autoscale.admission import AdmissionController

        kwargs["admission"] = AdmissionController(
            config=system.config.autoscale.admission,
            registry=system.telemetry.registry,
            recorder=system.recorder,
        )
    if "autoscaler" not in kwargs and system.autoscaler is not None:
        kwargs["autoscaler"] = system.autoscaler
    if "incidents" not in kwargs and system.config.incident.enabled:
        from repro.obs.incident import IncidentManager

        kwargs["incidents"] = IncidentManager(
            config=system.config.incident,
            clock=system.clock,
            recorder=system.recorder,
            audit=system.telemetry.audit,
            registry=system.telemetry.registry,
        )

    return BackendService(
        system.engine,
        system.clock,
        tracing=tracing,
        telemetry=system.telemetry,
        cache_config=system.config.cache,
        **kwargs,
    )
