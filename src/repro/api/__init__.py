"""repro.api — the stable, typed public facade of the library.

Everything an application needs in one import::

    from repro.api import AskRequest, AskOptions, create_engine

    system = create_engine(store, lexicon)
    response = system.engine.answer(AskRequest.of("Come blocco la carta?"))
    print(response.text, response.citations)

The facade re-exports the request/response dataclasses, the deployment
builders, and the configuration types a caller composes
(:class:`UniAskConfig` and its parts).  Deep imports of
``repro.core.factory`` / ``repro.core.engine`` keep working but are no
longer part of the supported surface.

Implementation note: ``repro.core.engine`` imports :mod:`repro.api.types`
(the engine's canonical entry point takes an :class:`AskRequest`), and
importing any submodule executes this ``__init__`` first — so re-exports
that reach back into ``repro.core`` resolve lazily via module
``__getattr__`` to keep the import graph acyclic.
"""

from repro.api.builders import create_backend, create_engine
from repro.api.types import (
    CACHE_BYPASS,
    CACHE_DEFAULT,
    CACHE_POLICIES,
    CACHE_REFRESH,
    PRIORITIES,
    PRIORITY_BATCH,
    PRIORITY_CANARY,
    PRIORITY_INTERACTIVE,
    AskOptions,
    AskRequest,
    AskResponse,
)
from repro.cache.config import CacheConfig
from repro.core.answer import ALL_OUTCOMES, OUTCOME_ANSWERED, Citation, UniAskAnswer

#: Lazily resolved re-exports (module path, attribute).  These modules
#: import ``repro.core.engine`` directly or transitively, so importing
#: them here at module level would create a cycle.
_LAZY = {
    "AdmissionConfig": ("repro.autoscale.config", "AdmissionConfig"),
    "AdmissionError": ("repro.core.errors", "AdmissionError"),
    "AutoscaleConfig": ("repro.autoscale.config", "AutoscaleConfig"),
    "ClusterConfig": ("repro.cluster.config", "ClusterConfig"),
    "OpsRequest": ("repro.service.ops", "OpsRequest"),
    "OpsResponse": ("repro.service.ops", "OpsResponse"),
    "GenerationConfig": ("repro.core.config", "GenerationConfig"),
    "HybridSearchConfig": ("repro.search.hybrid", "HybridSearchConfig"),
    "IndexConfig": ("repro.search.segment", "IndexConfig"),
    "TelemetryConfig": ("repro.obs.telemetry", "TelemetryConfig"),
    "UniAskConfig": ("repro.core.config", "UniAskConfig"),
    "UniAskSystem": ("repro.core.factory", "UniAskSystem"),
}

__all__ = [
    "ALL_OUTCOMES",
    "AdmissionConfig",
    "AdmissionError",
    "AskOptions",
    "AskRequest",
    "AskResponse",
    "AutoscaleConfig",
    "CACHE_BYPASS",
    "CACHE_DEFAULT",
    "CACHE_POLICIES",
    "CACHE_REFRESH",
    "CacheConfig",
    "Citation",
    "ClusterConfig",
    "GenerationConfig",
    "HybridSearchConfig",
    "IndexConfig",
    "OUTCOME_ANSWERED",
    "OpsRequest",
    "OpsResponse",
    "PRIORITIES",
    "PRIORITY_BATCH",
    "PRIORITY_CANARY",
    "PRIORITY_INTERACTIVE",
    "TelemetryConfig",
    "UniAskAnswer",
    "UniAskConfig",
    "UniAskSystem",
    "create_backend",
    "create_engine",
]


def __getattr__(name: str):
    try:
        module_path, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_path), attribute)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
