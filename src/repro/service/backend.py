"""Backend service.

Section 3: "The BackEnd service is a REST layer exposing endpoints to be
called by the frontend.  It contains the logic responsible for login and
the requests to the Retrieval and Generation services.  It stores
feedbacks and user actions."

The in-process equivalent exposes the same three endpoints — ``login``,
``query``, ``feedback`` — enforces session authentication, models response
time (retrieval + LLM latency as a function of token volume), and writes
every event to the monitoring collector.

On top of the user-facing endpoints sits a single **ops-route table**
(:attr:`BackendService.OPS_ROUTES`): the dashboard, the cluster status, the
Prometheus ``/metrics`` exposition and the SLO status all dispatch through
one :meth:`BackendService.ops` entry point with exactly one authorization
check, while the ``/healthz`` and ``/readyz`` probes are deliberately
unauthenticated (a load balancer holds no session token).  Every served
request is also appended to the telemetry audit log — request id, user,
outcome, stage durations, shard probes, guardrail verdicts — and offered to
the trace sampler, which decides whether the full trace is retained and
linked from the latency histograms as an exemplar.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, replace

from repro.agents.memory import TtlLruStore
from repro.api.types import CACHE_DEFAULT, AskOptions, AskRequest
from repro.cache.answer_cache import HIT_COALESCED
from repro.cache.coalescing import SingleFlight
from repro.cache.config import CacheConfig
from repro.cache.key import filters_key
from repro.core.answer import UniAskAnswer
from repro.core.engine import UniAskEngine
from repro.obs import spans
from repro.obs.audit import AuditLogger, NULL_AUDIT
from repro.obs.capacity import CapacityMonitor
from repro.obs.profile import ContinuousProfiler
from repro.obs.telemetry import Telemetry
from repro.obs.trace import RequestContext, Span, Trace
from repro.obs.work import WORK_COALESCED_JOINS, WorkCounters
from repro.pipeline.clock import SimulatedClock
from repro.service.feedback import FeedbackStore, GranularFeedback
from repro.service.monitoring import MetricsCollector
from repro.service.ops import (
    OpsRequest,
    OpsResponse,
    OpsRoute,
    collect_ops_routes,
    ops_route,
)
from repro.text.tokenizer import count_tokens


class AuthenticationError(Exception):
    """The session token is missing or invalid."""


class AuthorizationError(Exception):
    """The session's role does not permit the requested operation.

    Section 9: "A dedicated role-based access-control system segregates
    accesses and roles" — employees query; only the operations role reads
    the monitoring dashboard.
    """


#: Roles known to the access-control layer.
ROLE_EMPLOYEE = "employee"
ROLE_OPS = "ops"


@dataclass(frozen=True)
class QueryRecord:
    """One served query, as stored by the backend."""

    query_id: str
    user_id: str
    question: str
    answer: UniAskAnswer
    served_at: float
    trace: Trace | None = None


#: Modeled seconds charged to any leaf span without a dedicated branch
#: below.  A tiny but non-zero floor: every real stage costs *something*,
#: and a silent 0.0 for a newly added span name would under-report that
#: stage on the dashboard forever.
DEFAULT_LEAF_COST = 0.0005

#: Modeled seconds of serving an untraced request from the answer cache:
#: a dictionary lookup (plus, for semantic hits, one embedding and a
#: similarity scan) instead of retrieval and a multi-second LLM call.
CACHE_HIT_LATENCY = 0.02


class StageLatencyModel:
    """Deterministic per-stage latency attribution for traced requests.

    When the backend serves a traced query, the request trace runs on a
    private :class:`~repro.pipeline.clock.SimulatedClock` and this model is
    installed as the trace's cost hook: as each leaf span closes, the clock
    advances by a modeled duration derived from the span's recorded
    input/output sizes.  Span durations therefore stay deterministic (no
    wall-clock reads) while still reflecting where simulated time goes —
    the LLM call dominates, exactly as in the deployed system.

    Clustered retrieval models a *parallel* fan-out: each ``shard_<i>``
    leaf costs only its dispatch overhead, and the gather barrier is
    charged once on ``scatter_wait`` as the maximum replica latency
    (carried on the span's ``wait`` attribute) — not the serial sum of the
    per-shard latencies.

    A leaf span whose name matches no modeled branch silently gets
    :data:`DEFAULT_LEAF_COST` — correct as a floor, but it usually means a
    new pipeline stage was added without a latency branch here.  The first
    time each unknown name falls through, the model emits a WARNING-level
    entry (``unknown_stage_cost``) on the audit log so the gap is visible
    exactly once instead of never.
    """

    def __init__(
        self,
        base_latency: float = 0.4,
        seconds_per_kilo_token: float = 1.1,
        audit: AuditLogger | None = None,
    ) -> None:
        self._base_latency = base_latency
        self._seconds_per_kilo_token = seconds_per_kilo_token
        self._audit = audit if audit is not None else NULL_AUDIT
        self._warned_stages: set[str] = set()

    def __call__(self, span: Span) -> float:
        """Modeled seconds spent in *span* (0.0 for aggregate spans)."""
        attrs = span.attributes
        name = span.name
        if name == spans.STAGE_CONTENT_FILTER:
            return 0.002
        if name == spans.STAGE_EMBED_QUERY:
            return 0.004
        if name == spans.STAGE_FULLTEXT:
            return 0.010 + 0.0001 * int(attrs.get("results", 0))
        if name.startswith(spans.VECTOR_STAGE_PREFIX):
            return 0.006 + 0.0002 * int(attrs.get("results", 0))
        if name == spans.STAGE_FUSION:
            return 0.001
        if name == spans.STAGE_RERANK:
            return 0.002 + 0.0005 * int(attrs.get("candidates", 0))
        if name == spans.STAGE_SUBQUERY:
            return DEFAULT_LEAF_COST
        if name == spans.STAGE_PROMPT_BUILD:
            return 0.0005
        if name == spans.STAGE_LLM:
            tokens = int(attrs.get("prompt_tokens", 0)) + int(attrs.get("completion_tokens", 0))
            return self._base_latency + self._seconds_per_kilo_token * tokens / 1000.0
        if name.startswith(spans.GUARDRAIL_STAGE_PREFIX):
            return 0.001
        if name == spans.STAGE_CITATIONS:
            return 0.0005
        if name.startswith(spans.SHARD_STAGE_PREFIX):
            return 0.0005  # dispatch only; shards are queried in parallel
        if name == spans.STAGE_SCATTER_WAIT:
            return 0.0005 + float(attrs.get("wait", 0.0))
        if name == spans.STAGE_CACHE_LOOKUP:
            # A map probe plus, at worst, one query embedding and a
            # similarity scan over the resident entries.
            return 0.002 + 0.000002 * int(attrs.get("entries", 0))
        if name == spans.STAGE_CACHE_STORE:
            return 0.0005
        if name == spans.STAGE_AGENT_ROUTE:
            return 0.001  # a handful of regex probes over the question
        if name == spans.STAGE_AGENT_REWRITE:
            return 0.0005
        if name == spans.STAGE_STRUCTURED_PLAN:
            return 0.001
        if name == spans.STAGE_STRUCTURED_EXEC:
            return 0.0005 + 0.0001 * int(attrs.get("rows", 0))
        # Aggregate spans cost nothing themselves; any other *leaf* span is
        # work and gets the default floor.
        if span.is_leaf:
            if name not in self._warned_stages:
                self._warned_stages.add(name)
                self._audit.warning(
                    "unknown_stage_cost",
                    stage=name,
                    modeled_seconds=DEFAULT_LEAF_COST,
                    hint="add a latency branch to StageLatencyModel",
                )
            return DEFAULT_LEAF_COST
        return 0.0


class BackendService:
    """The REST layer of UniAsk, in process.

    Args:
        telemetry: the deployment's telemetry plane (registry + trace
            sampler + audit log).  Defaults to the engine's own telemetry
            when the engine carries an enabled one (the factory wires it
            that way), else a fresh default-config :class:`Telemetry` on
            the service clock.
        cache_config: enables single-flight request coalescing when its
            coalescing tier is active.  While coalescing is on, ``serve``
            models a **concurrent** server: a request occupies the flight
            window ``[arrival, arrival + response_time)`` without
            advancing the shared clock (the caller drives time, as the
            load generators do), and identical questions arriving inside
            the window share the leader's answer instead of re-running
            the pipeline.  With coalescing off the service keeps its
            original serial semantics: each query advances the shared
            clock by its response time.
        profiling: enables the continuous profiler and deterministic work
            accounting: every served request runs traced with a
            :class:`~repro.obs.work.WorkCounters`, finished traces fold
            into :attr:`profiler` (the ``profile`` ops route), the
            answer's work counts land in the audit log and the
            ``uniask_work_units_total`` counter.  Off by default — the
            disabled service serves byte-identical output.
        capacity: enables saturation telemetry: per-backend and
            per-replica concurrency tracking on :attr:`capacity` (a
            :class:`~repro.obs.capacity.CapacityMonitor`) plus the
            ``uniask_saturation_*`` gauges.  Off by default.
        admission: an
            :class:`~repro.autoscale.admission.AdmissionController`;
            when set, every :meth:`serve` call is admitted through the
            staged shedding ladder — degraded requests run the engine at
            the granted level, rejected ones raise the typed
            :class:`~repro.core.errors.AdmissionError`.  The default
            None serves every request at full quality, byte-identical to
            the pre-admission service.
        autoscaler: an :class:`~repro.autoscale.autoscaler.Autoscaler`;
            when set, every served request feeds its saturation loop and
            the control interval is evaluated on the service clock.  Off
            (None) by default.
        incidents: an :class:`~repro.obs.incident.IncidentManager`; when
            set, every served request feeds the per-route diagnosis
            baselines, the page-severity alert check runs on the service
            clock, and a firing page freezes a capture bundle assembled
            by this service (dashboard, saturation, profile window,
            slowest retained traces).  Off (None) by default — the
            disabled service serves byte-identical output.
    """

    #: route name → :class:`~repro.service.ops.OpsRoute`, built from the
    #: ``@ops_route`` decorations of the handler methods below (see the
    #: module-level ``collect_ops_routes`` call after the class body).
    #: All authorization for operational endpoints happens in :meth:`ops`,
    #: driven by this table — exactly one check, no per-endpoint copies.
    #: ``healthz``/``readyz`` are unauthenticated by design: liveness and
    #: readiness are probed by load balancers, which hold no session.
    OPS_ROUTES: dict[str, OpsRoute] = {}

    def __init__(
        self,
        engine: UniAskEngine,
        clock: SimulatedClock,
        metrics: MetricsCollector | None = None,
        base_latency: float = 0.4,
        seconds_per_kilo_token: float = 1.1,
        latency_jitter: float = 0.15,
        seed: int = 11,
        tracing: bool = False,
        telemetry: Telemetry | None = None,
        cache_config: CacheConfig | None = None,
        quality_monitor=None,
        session_capacity: int = 4096,
        session_ttl_seconds: float | None = 86400.0,
        record_capacity: int = 100_000,
        profiling: bool = False,
        capacity: bool = False,
        admission=None,
        autoscaler=None,
        incidents=None,
    ) -> None:
        self._engine = engine
        self._clock = clock
        if telemetry is None:
            engine_telemetry = getattr(engine, "telemetry", None)
            if engine_telemetry is not None and engine_telemetry.enabled:
                telemetry = engine_telemetry
            else:
                telemetry = Telemetry(clock=clock)
        self.telemetry = telemetry
        self.metrics = metrics or MetricsCollector(registry=telemetry.registry)
        self.feedback_store = FeedbackStore()
        # Per-session state is bounded on the service clock (the answer
        # cache's TTL + LRU eviction idiom): long-running deployments no
        # longer accumulate every token and query record ever issued.  An
        # idle session expires *session_ttl_seconds* after its last
        # authenticated call; query records are LRU-only (feedback may
        # arrive arbitrarily late, so they never expire by age).
        self._sessions: TtlLruStore[str, tuple[str, str]] = TtlLruStore(
            session_capacity, session_ttl_seconds, clock=clock
        )
        self._records: TtlLruStore[str, QueryRecord] = TtlLruStore(
            record_capacity, None, clock=clock
        )
        self._base_latency = base_latency
        self._seconds_per_kilo_token = seconds_per_kilo_token
        self._latency_jitter = latency_jitter
        self._rng = random.Random(seed)
        # Separate stream for session tokens so that issuing a login never
        # shifts the latency-jitter draw sequence of served queries.
        self._token_rng = random.Random(seed ^ 0xA5A5_5A5A)
        self._query_counter = 0
        self._tracing = tracing
        self._stage_model = StageLatencyModel(
            base_latency, seconds_per_kilo_token, audit=telemetry.audit
        )
        self._quality_monitor = quality_monitor
        self._cache_config = cache_config or CacheConfig()
        self.single_flight: SingleFlight | None = None
        self._m_coalesced = None
        if self._cache_config.coalescing_active:
            self.single_flight = SingleFlight()
            self._m_coalesced = telemetry.registry.counter(
                "uniask_coalesced_waits_total",
                "Requests that joined an identical in-flight request.",
            )
        # Profiling and saturation telemetry follow the coalescing idiom:
        # their instruments exist only when the feature is on, so a default
        # deployment's metrics exposition stays byte-identical.
        self._profiling = profiling
        self.profiler: ContinuousProfiler | None = None
        self._m_work = None
        if profiling:
            self.profiler = ContinuousProfiler()
            self._m_work = telemetry.registry.counter(
                "uniask_work_units_total",
                "Deterministic work units booked by served requests, by kind.",
                ("kind",),
            )
        self.capacity: CapacityMonitor | None = (
            CapacityMonitor(registry=telemetry.registry) if capacity else None
        )
        self.admission = admission
        self.autoscaler = autoscaler
        self.incidents = incidents
        if incidents is not None:
            # The manager lives below the service layer; it freezes this
            # service's surfaces through the attached callback instead of
            # importing them.
            incidents.attach(self._incident_capture)

    # -- endpoints ------------------------------------------------------------

    def login(self, user_id: str, role: str = ROLE_EMPLOYEE) -> str:
        """Authenticate *user_id* with *role*; returns a session token.

        Tokens are 128-bit random hex, never derived from the user id or
        the session count: a guessable token (``session-<user>-<n>``)
        would let anyone who knows a colleague's id hijack their session.
        The draw comes from a dedicated seeded stream, so simulations stay
        reproducible without weakening the token space.
        """
        if role not in (ROLE_EMPLOYEE, ROLE_OPS):
            raise ValueError(f"unknown role {role!r}")
        token = f"session-{self._token_rng.getrandbits(128):032x}"
        self._sessions[token] = (user_id, role)
        return token

    def ops(self, route: str, token: str = "", **params):
        """Dispatch one operational endpoint through the route table.

        The single authorization check of the ops surface lives here:
        routes flagged as privileged require an ops-role session, probe
        routes run unauthenticated.  Unknown routes raise ``KeyError``.
        """
        try:
            entry = self.OPS_ROUTES[route]
        except KeyError:
            raise KeyError(f"unknown ops route {route!r}") from None
        if entry.privileged:
            self._authorize(token, ROLE_OPS)
        return getattr(self, entry.handler)(**params)

    def ops_request(self, request: OpsRequest) -> OpsResponse:
        """Typed ops dispatch: an :class:`OpsRequest` in, an
        :class:`OpsResponse` envelope out.

        Authorization still happens exactly once, inside :meth:`ops` —
        this wrapper adds the typed envelope, never a second check, and
        the payload is byte-identical to the bare ``ops()`` call.
        """
        payload = self.ops(request.route, request.token, **dict(request.params))
        return OpsResponse(
            route=request.route,
            payload=payload,
            privileged=self.OPS_ROUTES[request.route].privileged,
        )

    def dashboard(self, token: str, bucket_seconds: float = 60.0):
        """The monitoring dashboard — operations role only (least privilege)."""
        return self.ops("dashboard", token, bucket_seconds=bucket_seconds)

    def cluster_status(self, token: str):
        """Shard sizes and replica health — operations role only.

        Returns a :class:`~repro.cluster.router.ClusterStatus`, or None
        when the deployment serves from a single index.
        """
        return self.ops("cluster_status", token)

    def metrics_text(self, token: str) -> str:
        """The Prometheus text exposition — operations role only."""
        return self.ops("metrics", token)

    def slo_status(self, token: str):
        """Burn-rate evaluation of the service SLOs — operations role only."""
        return self.ops("slo", token)

    def healthz(self) -> dict:
        """Liveness probe (unauthenticated): the process is up."""
        return self.ops("healthz")

    def readyz(self) -> dict:
        """Readiness probe (unauthenticated): the service can take traffic.

        Cluster-aware: a sharded deployment is ready only while every
        shard still has a live, serving replica — a degraded cluster keeps
        answering (partial results) but reports not-ready so the balancer
        can drain it.
        """
        return self.ops("readyz")

    def serve(self, token: str, request: AskRequest | str) -> QueryRecord:
        """Serve one :class:`~repro.api.types.AskRequest` for a session.

        The canonical query endpoint: a bare string is promoted to a
        default-options request.  Tracing runs when the service was built
        with ``tracing=True`` **or** the request asks via
        ``options.trace``; either way the request executes inside a traced
        :class:`~repro.obs.trace.RequestContext` on a private simulated
        clock — the response time is the traced per-stage total
        (jittered), the trace rides on the stored :class:`QueryRecord`,
        and the per-stage durations feed the dashboard's latency series.

        With coalescing active (see *cache_config*), a request identical
        to one still in flight joins it: the pipeline is not re-run, the
        shared answer is marked ``cache_hit="coalesced"``, and the joiner
        is charged only the remaining wait of the leader's flight window.
        """
        if isinstance(request, str):
            request = AskRequest(question=request)
        user_id = self._authenticate(token)
        self._query_counter += 1
        query_id = f"q-{self._query_counter:07d}"
        question = request.question
        options = request.options
        if self._engine.orchestrator is not None and not options.session_id:
            # Agents-enabled deployments thread the session token through
            # as the conversation id, so follow-up turns resolve against
            # the caller's own session memory.  Left untouched when agents
            # are off: the request object stays byte-identical.
            options = replace(options, session_id=token)
            request = replace(request, options=options)

        coalescing = self.single_flight is not None
        arrival = self._clock.now()

        degrade_level = 0
        if self.admission is not None:
            decision = self.admission.admit(
                options.priority, deadline_ms=options.deadline_ms
            )
            if decision.rejected:
                self.telemetry.audit.warning(
                    "admission_reject",
                    request_id=query_id,
                    user=user_id,
                    priority=decision.priority,
                    pressure=decision.pressure,
                    reason=decision.reason,
                    retry_after=decision.retry_after_seconds,
                )
                decision.raise_if_rejected()
            degrade_level = decision.level

        flight_key = None
        # Explain requests never coalesce: their answers carry a provenance
        # report that must not be shared with plain joiners, and joining a
        # plain leader would return an answer without one.  Degraded
        # requests never coalesce either — a degraded answer must not be
        # shared with full-service joiners (nor vice versa).
        if (
            coalescing
            and options.cache == CACHE_DEFAULT
            and not options.explain
            and degrade_level == 0
        ):
            flight_key = (question, filters_key(options.filters))
            flight = self.single_flight.join(flight_key, arrival)
            if flight is not None:
                return self._coalesced_record(query_id, user_id, question, flight, arrival)

        trace: Trace | None = None
        profiled = self._profiling or options.profile
        if self._tracing or options.trace or profiled:
            # Profiling implies a trace: the profiler aggregates span trees
            # and the work counters surface as span attributes.
            trace = Trace(clock=SimulatedClock(start=arrival), cost=self._stage_model)
            ctx = RequestContext(
                trace=trace,
                request_id=query_id,
                explain=options.explain,
                work=WorkCounters() if profiled else None,
            )
            answer = self._engine.answer(request, ctx=ctx, degrade_level=degrade_level).answer
            response_time = trace.total_duration * self._jitter()
        else:
            answer = self._engine.answer(request, degrade_level=degrade_level).answer
            if answer.cache_hit:
                # The cached answer still carries the full context and raw
                # answer of its original computation; charging the token
                # latency model would bill the skipped LLM call.
                response_time = CACHE_HIT_LATENCY * self._jitter()
            else:
                response_time = self._model_response_time(question, answer)

        if coalescing:
            # Concurrent-server semantics: the request occupies the flight
            # window [arrival, arrival + response_time) and the caller
            # drives the shared clock between arrivals (as the load
            # generators do) — concurrent identical requests can overlap.
            served_at = arrival + response_time
        else:
            self._clock.advance(response_time)
            served_at = self._clock.now()
        answer = self._with_response_time(answer, response_time)
        if flight_key is not None and not answer.cache_hit:
            self.single_flight.register(flight_key, query_id, arrival, served_at, answer)

        if self.capacity is not None:
            self.capacity.observe("backend", arrival, response_time)
            scatter = self._engine.last_scatter_report
            if scatter is not None:
                for probe in scatter.probes:
                    resource = (
                        f"replica_{probe.replica_id}"
                        if probe.replica_id
                        else f"shard_{probe.shard_id}"
                    )
                    self.capacity.observe(resource, arrival, probe.latency, failed=not probe.ok)
        if self.admission is not None:
            self.admission.observe(arrival, response_time, level=degrade_level)
        if self.autoscaler is not None:
            self.autoscaler.note_request(arrival, response_time)
            self.autoscaler.maybe_evaluate(self._clock.now())
        record = QueryRecord(
            query_id=query_id,
            user_id=user_id,
            question=question,
            answer=answer,
            served_at=served_at,
            trace=trace,
        )
        self._finalize_record(record, trace, self._engine.last_scatter_report)
        if self.incidents is not None:
            self._incident_observe(record)
        return record

    def query(self, token: str, question: str, filters: dict[str, str] | None = None) -> QueryRecord:
        """Deprecated: use :meth:`serve` with an ``AskRequest``.

        Kept as a thin shim over :meth:`serve`; behaves identically with
        default options.
        """
        warnings.warn(
            "BackendService.query() is deprecated; use "
            "backend.serve(token, AskRequest.of(question, filters=...)) from repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
        request = AskRequest(question=question, options=AskOptions(filters=filters))
        return self.serve(token, request)

    def _coalesced_record(
        self, query_id: str, user_id: str, question: str, flight, arrival: float
    ) -> QueryRecord:
        """Share an in-flight identical request's answer with a joiner.

        The joiner never touches the engine: its answer is the leader's,
        marked ``coalesced``, and its response time is the remaining wait
        until the leader's flight completes.
        """
        response_time = flight.completes_at - arrival
        answer = replace(
            flight.answer,
            cache_hit=HIT_COALESCED,
            cache_similarity=0.0,
            response_time=response_time,
            trace=None,
            # A joiner does no pipeline work of its own: its tally is the
            # single-flight join (None when profiling is off, as always).
            work={WORK_COALESCED_JOINS: 1} if self._profiling else None,
        )
        if self.capacity is not None:
            self.capacity.observe("backend", arrival, response_time)
        record = QueryRecord(
            query_id=query_id,
            user_id=user_id,
            question=question,
            answer=answer,
            served_at=flight.completes_at,
            trace=None,
        )
        if self._m_coalesced is not None:
            self._m_coalesced.inc()
        self._finalize_record(
            record, None, None, extra_audit={"coalesced_with": flight.request_id}
        )
        if self.incidents is not None:
            self._incident_observe(record)
        return record

    def _finalize_record(
        self,
        record: QueryRecord,
        trace: Trace | None,
        scatter,
        extra_audit: dict | None = None,
    ) -> None:
        """Store *record* and write it to monitoring, metrics and audit."""
        self._records[record.query_id] = record
        answer = record.answer
        sampled = False
        stages = trace.stage_durations() if trace is not None else None
        if trace is not None:
            sampled = self.telemetry.sampler.offer(
                record.query_id, trace, trace.total_duration
            )
            if self.profiler is not None:
                # The profiler piggybacks on traces the request produced
                # anyway; retention windows roll on the service clock.
                self.profiler.record(trace, now=record.served_at)
        if self._m_work is not None and answer.work:
            for kind, units in answer.work.items():
                self._m_work.labels(kind).inc(units)
        self.metrics.record_query(
            timestamp=record.served_at,
            user_id=record.user_id,
            outcome=answer.outcome,
            response_time=answer.response_time,
            stages=stages,
            partial=answer.partial_results,
            trace_id=record.query_id if sampled else "",
            cache_hit=answer.cache_hit,
        )
        if self._quality_monitor is not None:
            self._quality_monitor.observe_answer(answer)
        probe_log: list[dict] = []
        if scatter is not None:
            for probe in scatter.probes:
                self.metrics.record_shard_probe(
                    timestamp=record.served_at,
                    shard_id=probe.shard_id,
                    replica_id=probe.replica_id,
                    latency=probe.latency,
                    ok=probe.ok,
                    hedged=probe.hedged,
                )
                probe_log.append(
                    {
                        "shard": probe.shard_id,
                        "replica": probe.replica_id,
                        "latency": probe.latency,
                        "ok": probe.ok,
                        "hedged": probe.hedged,
                    }
                )
        report = answer.guardrail_report
        audit_fields = dict(
            request_id=record.query_id,
            user=record.user_id,
            outcome=answer.outcome,
            response_time=answer.response_time,
            partial=answer.partial_results,
            sampled=sampled,
            stages=stages or {},
            shard_probes=probe_log,
            guardrails=[
                {"guardrail": verdict.guardrail, "passed": verdict.passed}
                for verdict in (report.verdicts if report is not None else ())
            ],
        )
        # Only annotate reuse when it happened: a cache-off deployment's
        # audit lines must match the pre-cache format exactly.
        if answer.cache_hit:
            audit_fields["cache"] = answer.cache_hit
        # Same contract for routing: agents-off audit lines never carry the
        # field, so they match the pre-agents format byte for byte.
        if answer.route:
            audit_fields["route"] = answer.route
        # And for profiling: the work block appears only when the request
        # actually carried counters.
        if answer.work:
            audit_fields["work"] = answer.work
        # Shed requests record how far down the ladder they landed; full
        # service (the only level when admission is off) never carries it.
        if answer.degrade_level:
            audit_fields["degrade_level"] = answer.degrade_level
        # Errored spans surface with the exception type the stage raised;
        # clean traces never carry the field.
        if trace is not None:
            span_errors = [
                {
                    "stage": span.name,
                    "error_type": str(span.attributes.get("error_type", "")),
                }
                for span in trace.spans
                if span.status != "ok"
            ]
            if span_errors:
                audit_fields["span_errors"] = span_errors
        if extra_audit:
            audit_fields.update(extra_audit)
        self.telemetry.audit.info("request", **audit_fields)

    # -- incident forensics ----------------------------------------------------

    def _incident_observe(self, record: QueryRecord) -> None:
        """Feed one served request into the incident loop.

        Baselines first (so a page's diagnosis sees the request that
        tripped it), then the page check — rate-limited by the manager's
        own ``check_interval``, so the alert evaluation cost stays off
        the per-request path.
        """
        self.incidents.observe_request(
            record,
            pressure=self.admission.pressure() if self.admission is not None else None,
            utilization=self.autoscaler.utilization if self.autoscaler is not None else None,
        )
        now = self._clock.now()
        if self.incidents.due(now):
            self.incidents.check(now, self._incident_alerts(now))

    def _incident_alerts(self, now: float):
        """The page-severity alert evaluation of the incident loop.

        Runs the service SLO burn rates over the incident config's own
        compressed windows (the workbook defaults are hour-scale — they
        could never page inside a compressed chaos day) plus the quality
        monitor's alerts.  Events older than the long window cannot move
        either burn rate, so they are filtered before evaluation.
        """
        from repro.service.alerting import evaluate_quality_alerts, evaluate_slo_alerts

        horizon = now - self.incidents.config.page_long_seconds
        events = [e for e in self.metrics.events if e.timestamp >= horizon]
        alerts = evaluate_slo_alerts(
            events, now=now, windows=self.incidents.config.burn_windows()
        )
        alerts.extend(evaluate_quality_alerts(self._quality_monitor))
        return alerts

    def _incident_capture(self, now: float) -> dict:
        """Freeze the service surfaces an operator would want at page time."""
        from repro.service.monitoring import format_dashboard

        bundle: dict = {
            "captured_at": now,
            "dashboard": format_dashboard(self.metrics.snapshot()),
        }
        if self.capacity is not None:
            bundle["saturation"] = [s.to_dict() for s in self.capacity.snapshot()]
        if self.profiler is not None:
            bundle["profile_top"] = self.profiler.format_top(limit=10)
        sampler = self.telemetry.sampler
        slow = sorted(
            (
                (trace.total_duration, trace_id)
                for trace_id in sampler.retained_ids
                for trace in (sampler.get(trace_id),)
                if trace is not None
            ),
            reverse=True,
        )[:5]
        bundle["slow_traces"] = [
            {"trace_id": trace_id, "duration": round(duration, 4)}
            for duration, trace_id in slow
        ]
        if self.admission is not None:
            bundle["admission"] = self.admission.status()
        if self.autoscaler is not None:
            bundle["autoscale"] = self.autoscaler.status()
        return bundle

    def feedback(self, token: str, feedback: GranularFeedback) -> None:
        """Store one feedback form for a previously served query."""
        user_id = self._authenticate(token)
        if feedback.query_id not in self._records:
            raise KeyError(f"unknown query id {feedback.query_id}")
        self.feedback_store.add(feedback)
        self.metrics.record_feedback()
        self.telemetry.audit.info(
            "feedback", request_id=feedback.query_id, user=user_id
        )

    # -- accessors ----------------------------------------------------------------

    def record(self, query_id: str) -> QueryRecord:
        """Fetch one stored query record."""
        return self._records[query_id]

    @property
    def served_queries(self) -> int:
        """Number of queries served so far."""
        return self._query_counter

    # -- ops handlers (dispatched through the route table) --------------------

    @ops_route("dashboard", privileged=True, description="Monitoring dashboard snapshot (latency series, outcomes, saturation).")
    def _ops_dashboard(self, bucket_seconds: float = 60.0):
        snapshot = self.metrics.snapshot(bucket_seconds=bucket_seconds)
        if self.capacity is not None:
            snapshot = replace(snapshot, saturation=self.capacity.snapshot())
        return snapshot

    @ops_route("cluster_status", privileged=True, description="Shard sizes and replica health of a clustered deployment.")
    def _ops_cluster_status(self):
        status = getattr(self._engine.searcher, "status", None)
        return status() if status is not None else None

    @ops_route("metrics", privileged=True, description="Prometheus text exposition of every registered instrument.")
    def _ops_metrics(self) -> str:
        return self.telemetry.render_metrics()

    @ops_route("slo", privileged=True, description="Multi-window burn-rate evaluation of the service SLOs.")
    def _ops_slo(self):
        from repro.service.alerting import evaluate_quality_alerts, evaluate_slo_alerts

        alerts = evaluate_slo_alerts(self.metrics.events, now=self._clock.now())
        alerts.extend(evaluate_quality_alerts(self._quality_monitor))
        return alerts

    @ops_route("explain", privileged=True, description="Score provenance of a stored or fresh query.")
    def _ops_explain(self, query_id: str = "", question: str = ""):
        """Score provenance for one query — operations role only.

        With *query_id*, returns the stored record's explain report (None
        when the query was served without ``explain``).  With *question*,
        runs a fresh cache-bypassed explain request through the engine and
        returns its report — the "why did this rank here?" debugging loop
        without touching any user session.
        """
        if query_id:
            return self._records[query_id].answer.explain_report
        if question:
            from repro.api.types import CACHE_BYPASS

            request = AskRequest(
                question=question,
                options=AskOptions(explain=True, cache=CACHE_BYPASS),
            )
            return self._engine.answer(request).answer.explain_report
        raise ValueError("explain route needs a query_id or a question")

    @ops_route("quality", privileged=True, description="Current drift-detector verdicts of the quality monitor.")
    def _ops_quality(self) -> dict:
        """Current drift-detector verdicts — operations role only."""
        if self._quality_monitor is None:
            return {"enabled": False, "verdicts": []}
        return {
            "enabled": True,
            "verdicts": [
                {
                    "signal": verdict.signal,
                    "drifted": verdict.drifted,
                    "statistic": verdict.statistic,
                    "p_value": verdict.p_value,
                    "psi": verdict.psi,
                    "reference_n": verdict.reference_n,
                    "current_n": verdict.current_n,
                    "reason": verdict.reason,
                }
                for verdict in self._quality_monitor.check()
            ],
        }

    @ops_route("profile", privileged=True, description="Aggregated call-tree profile of served requests.")
    def _ops_profile(self, format: str = "top", limit: int = 25):
        """Aggregated call-tree profile — operations role only.

        Formats: ``top`` (text table of hottest stage paths), ``folded``
        (flamegraph-compatible folded stacks), ``speedscope`` (JSON
        document loadable in speedscope), ``json`` (raw node dump).
        """
        profiler = self.profiler
        if profiler is None:
            raise ValueError("profiling is disabled for this deployment")
        if format == "top":
            return profiler.format_top(limit=limit)
        if format == "folded":
            return profiler.folded_stacks()
        if format == "speedscope":
            return profiler.speedscope_json()
        if format == "json":
            return profiler.to_dict()
        raise ValueError(f"unknown profile format {format!r}")

    @ops_route("autoscale", privileged=True, description="Autoscaler status: replica counts, utilization, decision log.")
    def _ops_autoscale(self) -> dict:
        """Autoscaler status — operations role only."""
        if self.autoscaler is None:
            return {"enabled": False, "decisions": []}
        return self.autoscaler.status()

    @ops_route("admission", privileged=True, description="Admission-control status: pressure, shed counts, ladder.")
    def _ops_admission(self) -> dict:
        """Admission-control status — operations role only."""
        if self.admission is None:
            return {"enabled": False}
        return self.admission.status()

    @ops_route("incidents", privileged=True, description="Incident log: open/recovered incidents, capture bundles, timelines.")
    def _ops_incidents(self, incident_id: str = "", timeline: bool = False):
        """Incident forensics — operations role only.

        Without *incident_id*, the incident summary list.  With one, the
        incident's full capture bundle — or, with ``timeline=True``, its
        causally ordered operator timeline as text.
        """
        if self.incidents is None:
            return {"enabled": False, "incidents": []}
        if incident_id:
            incident = self.incidents.get(incident_id)
            if timeline:
                return self.incidents.format_timeline(incident)
            return incident.to_dict()
        return self.incidents.status()

    @ops_route("diagnose", privileged=True, description="Per-request root-cause diagnosis against rolling route baselines.")
    def _ops_diagnose(self, query_id: str):
        """Why was this request slow/shed/degraded — operations role only."""
        if self.incidents is None:
            raise ValueError("incident forensics is disabled for this deployment")
        return self.incidents.diagnose(query_id)

    @ops_route("healthz", privileged=False, description="Liveness probe (unauthenticated).")
    def _ops_healthz(self) -> dict:
        return {
            "status": "ok",
            "time": self._clock.now(),
            "served_queries": self._query_counter,
        }

    @ops_route("readyz", privileged=False, description="Readiness probe (unauthenticated).")
    def _ops_readyz(self) -> dict:
        status_fn = getattr(self._engine.searcher, "status", None)
        if status_fn is None:
            return {"ready": True, "mode": "single-index", "shards": {}}
        status = status_fn()
        shards = {f"shard-{shard.shard_id}": shard.available for shard in status.shards}
        return {"ready": not status.degraded, "mode": "cluster", "shards": shards}

    # -- internals ------------------------------------------------------------------

    def _authenticate(self, token: str) -> str:
        session = self._sessions.get(token)
        if session is None:
            raise AuthenticationError("invalid session token")
        # Activity keeps a session alive: the idle TTL restarts on every
        # authenticated call, not just at login.
        self._sessions.touch(token)
        return session[0]

    def _authorize(self, token: str, required_role: str) -> str:
        session = self._sessions.get(token)
        if session is None:
            raise AuthenticationError("invalid session token")
        user_id, role = session
        if role != required_role:
            raise AuthorizationError(f"role {role!r} may not perform this operation")
        return user_id

    def _model_response_time(self, question: str, answer: UniAskAnswer) -> float:
        """Latency model: base + LLM time proportional to token volume."""
        context_tokens = sum(count_tokens(chunk.record.content) for chunk in answer.context)
        total_tokens = count_tokens(question) + context_tokens + count_tokens(answer.raw_answer)
        latency = self._base_latency + self._seconds_per_kilo_token * total_tokens / 1000.0
        return latency * self._jitter()

    def _jitter(self) -> float:
        """One multiplicative jitter draw (±latency_jitter, uniform)."""
        return 1.0 + self._latency_jitter * (2.0 * self._rng.random() - 1.0)

    @staticmethod
    def _with_response_time(answer: UniAskAnswer, response_time: float) -> UniAskAnswer:
        return replace(answer, response_time=response_time)


# Build the route table once the class body exists: every decorated
# handler above registers itself, in definition order.
BackendService.OPS_ROUTES = collect_ops_routes(BackendService)
