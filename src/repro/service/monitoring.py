"""Monitoring: metrics collection and the dashboard of Figure 3.

Section 9: "we have created a dashboard that directly queries the logs of
the various microservices […] reporting the number of users, the number of
feedbacks provided, the average response time, and the number of failed
requests and triggered guardrails."

:class:`MetricsCollector` is the log sink every service writes to;
:class:`DashboardSnapshot` is the aggregated page, including per-interval
time series for plotting and — when the backend serves traced requests —
per-stage latency percentiles keyed on the span taxonomy of
:mod:`repro.obs.spans`.

The collector is built on a typed
:class:`~repro.obs.metrics.MetricsRegistry`: the headline numbers (queries
by outcome, failures, feedbacks, distinct users, response-time totals,
partial results, hedged probes) live in registry instruments — the same
ones the ``/metrics`` exposition scrapes — and the snapshot reads them
back, so the dashboard page and the exposition can never disagree.  Raw
events are still retained for the per-bucket series and the exact
nearest-rank percentiles; their sorted order is cached per series and
reused across percentiles and snapshots instead of re-sorting on every
call (see :class:`_SampleSeries`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.answer import OUTCOME_ANSWERED
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def percentile_of_sorted(ordered: list[float], q: float) -> float:
    """The *q*-th percentile of an already **sorted** list (nearest rank).

    ``q`` is in [0, 100].  An empty list raises :class:`ValueError`: a
    percentile of nothing is undefined, and the old silent 0.0 made
    "no samples" indistinguishable from "all samples are instant" at call
    sites.  Callers that want a placeholder must make the empty case
    explicit themselves (``percentile(xs, q) if xs else 0.0``).
    """
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be between 0 and 100")
    if not ordered:
        raise ValueError("percentile of an empty series is undefined")
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def percentile(values: list[float], q: float) -> float:
    """The *q*-th percentile of *values* by the nearest-rank method.

    Sorts a copy on every call — fine for one-off use; callers computing
    several percentiles over the same (growing) series should keep a
    :class:`_SampleSeries` and use :func:`percentile_of_sorted` instead.
    Like :func:`percentile_of_sorted`, raises on empty input.
    """
    return percentile_of_sorted(sorted(values), q)


class _SampleSeries:
    """An append-only sample list with a lazily cached sorted view.

    ``sorted_values`` sorts at most once per batch of appends: the cache is
    invalidated on append and every percentile of the same snapshot (and
    every later snapshot without new samples) reuses it.  At dashboard
    scale (tens of thousands of events, two percentiles per stage per
    snapshot) this is the difference between one sort and one sort per
    percentile call — measured by ``benchmarks/bench_telemetry.py``.
    """

    __slots__ = ("values", "_sorted")

    def __init__(self) -> None:
        self.values: list[float] = []
        self._sorted: list[float] | None = None

    def append(self, value: float) -> None:
        self.values.append(value)
        self._sorted = None

    @property
    def sorted_values(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self.values)
        return self._sorted

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class QueryEvent:
    """One served query, as logged by the backend.

    ``stages`` carries the per-stage durations of a traced request as
    ``(stage_name, seconds)`` pairs (empty for untraced requests).
    ``partial`` marks a query served by a degraded cluster (some shard
    missed its deadline and was dropped from the merge).
    """

    timestamp: float
    user_id: str
    outcome: str
    response_time: float
    failed: bool = False
    stages: tuple[tuple[str, float], ...] = ()
    partial: bool = False
    cache_hit: str = ""


@dataclass(frozen=True)
class ShardProbeEvent:
    """One shard probe of a scatter-gather query, as logged by the backend."""

    timestamp: float
    shard_id: int
    replica_id: str
    latency: float
    ok: bool
    hedged: bool = False


@dataclass(frozen=True)
class DashboardSnapshot:
    """The Figure 3 page: headline numbers plus per-bucket series."""

    users: int
    queries: int
    feedbacks: int
    average_response_time: float
    failed_requests: int
    guardrails_triggered: int
    outcome_breakdown: dict[str, int] = field(default_factory=dict)
    queries_per_bucket: list[int] = field(default_factory=list)
    failures_per_bucket: list[int] = field(default_factory=list)
    response_time_per_bucket: list[float] = field(default_factory=list)
    #: Per-stage latency series of traced requests: stage name → p50 / p95
    #: seconds (empty when no traced request was served).
    stage_p50: dict[str, float] = field(default_factory=dict)
    stage_p95: dict[str, float] = field(default_factory=dict)
    stage_counts: dict[str, int] = field(default_factory=dict)
    #: Cluster serving health (empty for single-index deployments):
    #: queries answered from a degraded cluster, hedged shard probes,
    #: per-shard latency percentiles keyed ``shard-<id>``, and success
    #: fractions per shard and per replica.
    partial_results: int = 0
    hedged_requests: int = 0
    #: Queries served without running the full pipeline, by reuse kind
    #: (``exact`` / ``semantic`` answer-cache hits, ``coalesced`` waits on
    #: an identical in-flight request).  Zero / empty while caching is off.
    cache_served: int = 0
    cache_breakdown: dict[str, int] = field(default_factory=dict)
    shard_p50: dict[str, float] = field(default_factory=dict)
    shard_p95: dict[str, float] = field(default_factory=dict)
    shard_counts: dict[str, int] = field(default_factory=dict)
    shard_health: dict[str, float] = field(default_factory=dict)
    replica_health: dict[str, float] = field(default_factory=dict)
    #: Saturation/USE samples (:class:`~repro.obs.capacity.SaturationSample`)
    #: of the deployment's capacity monitor; empty unless the backend was
    #: built with ``capacity=True``, so pre-capacity pages render unchanged.
    saturation: tuple = ()


#: Buckets of the backend response-time histogram (seconds): the traced
#: totals sit between ~0.5 s (apologies) and ~10 s (long generations).
RESPONSE_TIME_BUCKETS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

#: Buckets of the per-stage duration histograms (seconds): stages range
#: from sub-millisecond fusion to multi-second LLM calls.
STAGE_SECONDS_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384)


class MetricsCollector:
    """Aggregates query events and feedback counts for the dashboard.

    Args:
        registry: the deployment's metrics registry; the collector's
            headline instruments (``uniask_queries_total`` & co.) are
            **owned** by this collector and attached there, so the
            ``/metrics`` exposition includes them while each collector
            starts from zero (a fresh service never inherits another's
            counts — the latest attached collector wins the exposition).
            Defaults to a private registry so standalone collectors keep
            working.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        registry = self.registry
        self._events: list[QueryEvent] = []
        self._shard_probes: list[ShardProbeEvent] = []
        self._user_ids: set[str] = set()
        self._stage_series: dict[str, _SampleSeries] = {}
        self._shard_series: dict[str, _SampleSeries] = {}
        self._shard_ok: dict[str, list[bool]] = {}
        self._replica_ok: dict[str, list[bool]] = {}

        self._m_queries = registry.attach(
            Counter(
                "uniask_queries_total",
                "Queries served by the backend, by outcome.",
                ("outcome",),
            )
        )
        self._m_failed = registry.attach(
            Counter("uniask_failed_requests_total", "Requests that failed outright.")
        )
        self._m_feedback = registry.attach(
            Counter("uniask_feedback_total", "Feedback forms submitted.")
        )
        self._m_users = registry.attach(Gauge("uniask_users", "Distinct users seen so far."))
        self._m_partial = registry.attach(
            Counter("uniask_partial_results_total", "Queries served from a degraded cluster.")
        )
        self._m_hedged = registry.attach(
            Counter(
                "uniask_hedged_shard_probes_total",
                "Shard probes that needed a hedged retry.",
            )
        )
        self._m_response = registry.attach(
            Histogram(
                "uniask_response_seconds",
                "End-to-end response time of served (non-failed) queries.",
                buckets=RESPONSE_TIME_BUCKETS,
            )
        )
        self._m_stage = registry.attach(
            Histogram(
                "uniask_stage_seconds",
                "Leaf-stage durations of traced requests, by span name.",
                ("stage",),
                buckets=STAGE_SECONDS_BUCKETS,
            )
        )
        self._m_shard_latency = registry.attach(
            Histogram(
                "uniask_shard_probe_seconds",
                "Replica latency of shard probes, by shard.",
                ("shard",),
                buckets=STAGE_SECONDS_BUCKETS,
            )
        )
        # Attached lazily on the first cache-served query: an instrument in
        # the registry renders HELP/TYPE lines in the exposition even with
        # no samples, and a deployment with caching off must expose exactly
        # the pre-cache metrics page.
        self._m_cache_served: Counter | None = None

    def record_query(
        self,
        timestamp: float,
        user_id: str,
        outcome: str,
        response_time: float,
        failed: bool = False,
        stages: dict[str, float] | None = None,
        partial: bool = False,
        trace_id: str = "",
        cache_hit: str = "",
    ) -> None:
        """Log one served (or failed) query, with optional stage durations.

        ``trace_id`` links the observation to a retained trace: when set,
        the response-time and per-stage histograms record it as the bucket
        exemplar (only pass ids the trace sampler actually retained, so
        every exposed exemplar resolves).  ``cache_hit`` names the reuse
        kind when the query skipped the full pipeline ("" when it ran).
        """
        self._events.append(
            QueryEvent(
                timestamp=timestamp,
                user_id=user_id,
                outcome=outcome,
                response_time=response_time,
                failed=failed,
                stages=tuple(stages.items()) if stages else (),
                partial=partial,
                cache_hit=cache_hit,
            )
        )
        if cache_hit:
            if self._m_cache_served is None:
                self._m_cache_served = self.registry.attach(
                    Counter(
                        "uniask_cache_served_queries_total",
                        "Queries served without the full pipeline, by reuse kind.",
                        ("kind",),
                    )
                )
            self._m_cache_served.labels(cache_hit).inc()
        self._m_queries.labels(outcome).inc()
        self._user_ids.add(user_id)
        self._m_users.set(float(len(self._user_ids)))
        exemplar = trace_id or None
        if failed:
            self._m_failed.inc()
        else:
            self._m_response.observe(response_time, trace_id=exemplar)
        if partial:
            self._m_partial.inc()
        if stages:
            for stage, duration in stages.items():
                series = self._stage_series.get(stage)
                if series is None:
                    series = self._stage_series[stage] = _SampleSeries()
                series.append(duration)
                self._m_stage.labels(stage).observe(duration, trace_id=exemplar)

    def record_shard_probe(
        self,
        timestamp: float,
        shard_id: int,
        replica_id: str,
        latency: float,
        ok: bool,
        hedged: bool = False,
    ) -> None:
        """Log one shard probe of a scatter-gather query."""
        self._shard_probes.append(
            ShardProbeEvent(
                timestamp=timestamp,
                shard_id=shard_id,
                replica_id=replica_id,
                latency=latency,
                ok=ok,
                hedged=hedged,
            )
        )
        key = f"shard-{shard_id}"
        series = self._shard_series.get(key)
        if series is None:
            series = self._shard_series[key] = _SampleSeries()
        series.append(latency)
        self._shard_ok.setdefault(key, []).append(ok)
        if replica_id:
            self._replica_ok.setdefault(replica_id, []).append(ok)
        if hedged:
            self._m_hedged.inc()
        self._m_shard_latency.labels(key).observe(latency)

    def record_feedback(self) -> None:
        """Count one submitted feedback form."""
        self._m_feedback.inc()

    @property
    def events(self) -> list[QueryEvent]:
        """All logged query events."""
        return list(self._events)

    @property
    def shard_probes(self) -> list[ShardProbeEvent]:
        """All logged shard probes."""
        return list(self._shard_probes)

    def snapshot(self, bucket_seconds: float = 60.0) -> DashboardSnapshot:
        """Aggregate everything logged so far into one dashboard page."""
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        outcome_breakdown = {
            labels[0]: int(child.value)
            for labels, child in self._m_queries.children.items()
            if labels  # skip the parent's label-less self-cell
        }
        guardrails = sum(
            count for outcome, count in outcome_breakdown.items()
            if outcome.startswith("guardrail_")
        )
        failed = int(self._m_failed.value)
        served = self._m_response.count
        average_rt = self._m_response.sum / served if served else 0.0

        queries_per_bucket: list[int] = []
        failures_per_bucket: list[int] = []
        rt_per_bucket: list[float] = []
        if self._events:
            horizon = max(event.timestamp for event in self._events)
            buckets = int(horizon // bucket_seconds) + 1
            queries_per_bucket = [0] * buckets
            failures_per_bucket = [0] * buckets
            rt_sums = [0.0] * buckets
            rt_counts = [0] * buckets
            for event in self._events:
                bucket = int(event.timestamp // bucket_seconds)
                queries_per_bucket[bucket] += 1
                if event.failed:
                    failures_per_bucket[bucket] += 1
                else:
                    rt_sums[bucket] += event.response_time
                    rt_counts[bucket] += 1
            rt_per_bucket = [
                rt_sums[i] / rt_counts[i] if rt_counts[i] else 0.0 for i in range(buckets)
            ]

        # Series exist only once a sample was appended, so the percentile
        # calls below never see an empty list (which would now raise); the
        # dashboard formatter in turn only renders stages present here.
        stage_p50 = {}
        stage_p95 = {}
        stage_counts = {}
        for stage, series in self._stage_series.items():
            ordered = series.sorted_values  # one sort, reused by both percentiles
            stage_p50[stage] = percentile_of_sorted(ordered, 50.0)
            stage_p95[stage] = percentile_of_sorted(ordered, 95.0)
            stage_counts[stage] = len(series)

        cache_breakdown: dict[str, int] = {}
        if self._m_cache_served is not None:
            cache_breakdown = {
                labels[0]: int(child.value)
                for labels, child in self._m_cache_served.children.items()
                if labels
            }

        shard_p50 = {}
        shard_p95 = {}
        shard_counts = {}
        for key, series in self._shard_series.items():
            ordered = series.sorted_values
            shard_p50[key] = percentile_of_sorted(ordered, 50.0)
            shard_p95[key] = percentile_of_sorted(ordered, 95.0)
            shard_counts[key] = len(series)

        return DashboardSnapshot(
            users=int(self._m_users.value),
            queries=int(self._m_queries.total()),
            feedbacks=int(self._m_feedback.value),
            average_response_time=average_rt,
            failed_requests=failed,
            guardrails_triggered=guardrails,
            outcome_breakdown=outcome_breakdown,
            queries_per_bucket=queries_per_bucket,
            failures_per_bucket=failures_per_bucket,
            response_time_per_bucket=rt_per_bucket,
            stage_p50=stage_p50,
            stage_p95=stage_p95,
            stage_counts=stage_counts,
            partial_results=int(self._m_partial.value),
            hedged_requests=int(self._m_hedged.value),
            cache_served=sum(cache_breakdown.values()),
            cache_breakdown=cache_breakdown,
            shard_p50=shard_p50,
            shard_p95=shard_p95,
            shard_counts=shard_counts,
            shard_health={
                key: sum(outcomes) / len(outcomes) for key, outcomes in self._shard_ok.items()
            },
            replica_health={
                key: sum(outcomes) / len(outcomes) for key, outcomes in self._replica_ok.items()
            },
        )


def format_dashboard(snapshot: DashboardSnapshot) -> str:
    """Render the dashboard page as text (the Figure 3 equivalent)."""
    lines = [
        "UniAsk monitoring dashboard",
        "---------------------------",
        f"users:                {snapshot.users}",
        f"queries served:       {snapshot.queries}",
        f"feedbacks provided:   {snapshot.feedbacks}",
        f"avg response time:    {snapshot.average_response_time:.2f}s",
        f"failed requests:      {snapshot.failed_requests}",
        f"guardrails triggered: {snapshot.guardrails_triggered}",
    ]
    if snapshot.shard_counts:
        lines.append(f"partial results:      {snapshot.partial_results}")
        lines.append(f"hedged shard probes:  {snapshot.hedged_requests}")
    if snapshot.cache_served:
        breakdown = " ".join(
            f"{kind}={count}" for kind, count in sorted(snapshot.cache_breakdown.items())
        )
        lines.append(f"cache served:         {snapshot.cache_served} ({breakdown})")
    lines.append("outcomes:")
    for outcome, count in sorted(snapshot.outcome_breakdown.items(), key=lambda p: -p[1]):
        marker = "·" if outcome == OUTCOME_ANSWERED else "!"
        lines.append(f"  {marker} {outcome}: {count}")
    if snapshot.stage_p50:
        lines.append("per-stage latency (p50 / p95):")
        for stage in sorted(snapshot.stage_p50, key=lambda s: -snapshot.stage_p95[s]):
            lines.append(
                f"  {stage}: {snapshot.stage_p50[stage] * 1000.0:.1f}ms / "
                f"{snapshot.stage_p95[stage] * 1000.0:.1f}ms "
                f"(n={snapshot.stage_counts[stage]})"
            )
    if snapshot.shard_counts:
        lines.append("per-shard latency (p50 / p95) and health:")
        for shard in sorted(snapshot.shard_counts):
            lines.append(
                f"  {shard}: {snapshot.shard_p50[shard] * 1000.0:.1f}ms / "
                f"{snapshot.shard_p95[shard] * 1000.0:.1f}ms "
                f"ok={snapshot.shard_health[shard] * 100.0:.0f}% "
                f"(n={snapshot.shard_counts[shard]})"
            )
        if snapshot.replica_health:
            lines.append("replica health:")
            for replica in sorted(snapshot.replica_health):
                lines.append(f"  {replica}: ok={snapshot.replica_health[replica] * 100.0:.0f}%")
    if snapshot.saturation:
        from repro.obs.capacity import format_saturation

        lines.append(format_saturation(snapshot.saturation))
    return "\n".join(lines)
