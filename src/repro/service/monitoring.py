"""Monitoring: metrics collection and the dashboard of Figure 3.

Section 9: "we have created a dashboard that directly queries the logs of
the various microservices […] reporting the number of users, the number of
feedbacks provided, the average response time, and the number of failed
requests and triggered guardrails."

:class:`MetricsCollector` is the log sink every service writes to;
:class:`DashboardSnapshot` is the aggregated page, including per-interval
time series for plotting and — when the backend serves traced requests —
per-stage latency percentiles keyed on the span taxonomy of
:mod:`repro.obs.spans`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.core.answer import OUTCOME_ANSWERED


def percentile(values: list[float], q: float) -> float:
    """The *q*-th percentile of *values* by the nearest-rank method.

    ``q`` is in [0, 100]; an empty list yields 0.0.
    """
    if not (0.0 <= q <= 100.0):
        raise ValueError("q must be between 0 and 100")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class QueryEvent:
    """One served query, as logged by the backend.

    ``stages`` carries the per-stage durations of a traced request as
    ``(stage_name, seconds)`` pairs (empty for untraced requests).
    ``partial`` marks a query served by a degraded cluster (some shard
    missed its deadline and was dropped from the merge).
    """

    timestamp: float
    user_id: str
    outcome: str
    response_time: float
    failed: bool = False
    stages: tuple[tuple[str, float], ...] = ()
    partial: bool = False


@dataclass(frozen=True)
class ShardProbeEvent:
    """One shard probe of a scatter-gather query, as logged by the backend."""

    timestamp: float
    shard_id: int
    replica_id: str
    latency: float
    ok: bool
    hedged: bool = False


@dataclass(frozen=True)
class DashboardSnapshot:
    """The Figure 3 page: headline numbers plus per-bucket series."""

    users: int
    queries: int
    feedbacks: int
    average_response_time: float
    failed_requests: int
    guardrails_triggered: int
    outcome_breakdown: dict[str, int] = field(default_factory=dict)
    queries_per_bucket: list[int] = field(default_factory=list)
    failures_per_bucket: list[int] = field(default_factory=list)
    response_time_per_bucket: list[float] = field(default_factory=list)
    #: Per-stage latency series of traced requests: stage name → p50 / p95
    #: seconds (empty when no traced request was served).
    stage_p50: dict[str, float] = field(default_factory=dict)
    stage_p95: dict[str, float] = field(default_factory=dict)
    stage_counts: dict[str, int] = field(default_factory=dict)
    #: Cluster serving health (empty for single-index deployments):
    #: queries answered from a degraded cluster, hedged shard probes,
    #: per-shard latency percentiles keyed ``shard-<id>``, and success
    #: fractions per shard and per replica.
    partial_results: int = 0
    hedged_requests: int = 0
    shard_p50: dict[str, float] = field(default_factory=dict)
    shard_p95: dict[str, float] = field(default_factory=dict)
    shard_counts: dict[str, int] = field(default_factory=dict)
    shard_health: dict[str, float] = field(default_factory=dict)
    replica_health: dict[str, float] = field(default_factory=dict)


class MetricsCollector:
    """Aggregates query events and feedback counts for the dashboard."""

    def __init__(self) -> None:
        self._events: list[QueryEvent] = []
        self._shard_probes: list[ShardProbeEvent] = []
        self._feedback_count = 0

    def record_query(
        self,
        timestamp: float,
        user_id: str,
        outcome: str,
        response_time: float,
        failed: bool = False,
        stages: dict[str, float] | None = None,
        partial: bool = False,
    ) -> None:
        """Log one served (or failed) query, with optional stage durations."""
        self._events.append(
            QueryEvent(
                timestamp=timestamp,
                user_id=user_id,
                outcome=outcome,
                response_time=response_time,
                failed=failed,
                stages=tuple(stages.items()) if stages else (),
                partial=partial,
            )
        )

    def record_shard_probe(
        self,
        timestamp: float,
        shard_id: int,
        replica_id: str,
        latency: float,
        ok: bool,
        hedged: bool = False,
    ) -> None:
        """Log one shard probe of a scatter-gather query."""
        self._shard_probes.append(
            ShardProbeEvent(
                timestamp=timestamp,
                shard_id=shard_id,
                replica_id=replica_id,
                latency=latency,
                ok=ok,
                hedged=hedged,
            )
        )

    def record_feedback(self) -> None:
        """Count one submitted feedback form."""
        self._feedback_count += 1

    @property
    def events(self) -> list[QueryEvent]:
        """All logged query events."""
        return list(self._events)

    @property
    def shard_probes(self) -> list[ShardProbeEvent]:
        """All logged shard probes."""
        return list(self._shard_probes)

    def snapshot(self, bucket_seconds: float = 60.0) -> DashboardSnapshot:
        """Aggregate everything logged so far into one dashboard page."""
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        outcomes = Counter(event.outcome for event in self._events)
        guardrails = sum(
            count for outcome, count in outcomes.items() if outcome.startswith("guardrail_")
        )
        failed = sum(1 for event in self._events if event.failed)
        served = [event for event in self._events if not event.failed]
        average_rt = (
            sum(event.response_time for event in served) / len(served) if served else 0.0
        )

        queries_per_bucket: list[int] = []
        failures_per_bucket: list[int] = []
        rt_per_bucket: list[float] = []
        if self._events:
            horizon = max(event.timestamp for event in self._events)
            buckets = int(horizon // bucket_seconds) + 1
            queries_per_bucket = [0] * buckets
            failures_per_bucket = [0] * buckets
            rt_sums = [0.0] * buckets
            rt_counts = [0] * buckets
            for event in self._events:
                bucket = int(event.timestamp // bucket_seconds)
                queries_per_bucket[bucket] += 1
                if event.failed:
                    failures_per_bucket[bucket] += 1
                else:
                    rt_sums[bucket] += event.response_time
                    rt_counts[bucket] += 1
            rt_per_bucket = [
                rt_sums[i] / rt_counts[i] if rt_counts[i] else 0.0 for i in range(buckets)
            ]

        stage_samples: dict[str, list[float]] = {}
        for event in self._events:
            for stage, duration in event.stages:
                stage_samples.setdefault(stage, []).append(duration)
        stage_p50 = {stage: percentile(values, 50.0) for stage, values in stage_samples.items()}
        stage_p95 = {stage: percentile(values, 95.0) for stage, values in stage_samples.items()}
        stage_counts = {stage: len(values) for stage, values in stage_samples.items()}

        shard_samples: dict[str, list[float]] = {}
        shard_outcomes: dict[str, list[bool]] = {}
        replica_outcomes: dict[str, list[bool]] = {}
        for probe in self._shard_probes:
            key = f"shard-{probe.shard_id}"
            shard_samples.setdefault(key, []).append(probe.latency)
            shard_outcomes.setdefault(key, []).append(probe.ok)
            if probe.replica_id:
                replica_outcomes.setdefault(probe.replica_id, []).append(probe.ok)

        return DashboardSnapshot(
            users=len({event.user_id for event in self._events}),
            queries=len(self._events),
            feedbacks=self._feedback_count,
            average_response_time=average_rt,
            failed_requests=failed,
            guardrails_triggered=guardrails,
            outcome_breakdown=dict(outcomes),
            queries_per_bucket=queries_per_bucket,
            failures_per_bucket=failures_per_bucket,
            response_time_per_bucket=rt_per_bucket,
            stage_p50=stage_p50,
            stage_p95=stage_p95,
            stage_counts=stage_counts,
            partial_results=sum(1 for event in self._events if event.partial),
            hedged_requests=sum(1 for probe in self._shard_probes if probe.hedged),
            shard_p50={key: percentile(values, 50.0) for key, values in shard_samples.items()},
            shard_p95={key: percentile(values, 95.0) for key, values in shard_samples.items()},
            shard_counts={key: len(values) for key, values in shard_samples.items()},
            shard_health={
                key: sum(outcomes) / len(outcomes) for key, outcomes in shard_outcomes.items()
            },
            replica_health={
                key: sum(outcomes) / len(outcomes) for key, outcomes in replica_outcomes.items()
            },
        )


def format_dashboard(snapshot: DashboardSnapshot) -> str:
    """Render the dashboard page as text (the Figure 3 equivalent)."""
    lines = [
        "UniAsk monitoring dashboard",
        "---------------------------",
        f"users:                {snapshot.users}",
        f"queries served:       {snapshot.queries}",
        f"feedbacks provided:   {snapshot.feedbacks}",
        f"avg response time:    {snapshot.average_response_time:.2f}s",
        f"failed requests:      {snapshot.failed_requests}",
        f"guardrails triggered: {snapshot.guardrails_triggered}",
    ]
    if snapshot.shard_counts:
        lines.append(f"partial results:      {snapshot.partial_results}")
        lines.append(f"hedged shard probes:  {snapshot.hedged_requests}")
    lines.append("outcomes:")
    for outcome, count in sorted(snapshot.outcome_breakdown.items(), key=lambda p: -p[1]):
        marker = "·" if outcome == OUTCOME_ANSWERED else "!"
        lines.append(f"  {marker} {outcome}: {count}")
    if snapshot.stage_p50:
        lines.append("per-stage latency (p50 / p95):")
        for stage in sorted(snapshot.stage_p50, key=lambda s: -snapshot.stage_p95[s]):
            lines.append(
                f"  {stage}: {snapshot.stage_p50[stage] * 1000.0:.1f}ms / "
                f"{snapshot.stage_p95[stage] * 1000.0:.1f}ms "
                f"(n={snapshot.stage_counts[stage]})"
            )
    if snapshot.shard_counts:
        lines.append("per-shard latency (p50 / p95) and health:")
        for shard in sorted(snapshot.shard_counts):
            lines.append(
                f"  {shard}: {snapshot.shard_p50[shard] * 1000.0:.1f}ms / "
                f"{snapshot.shard_p95[shard] * 1000.0:.1f}ms "
                f"ok={snapshot.shard_health[shard] * 100.0:.0f}% "
                f"(n={snapshot.shard_counts[shard]})"
            )
        if snapshot.replica_health:
            lines.append("replica health:")
            for replica in sorted(snapshot.replica_health):
                lines.append(f"  {replica}: ok={snapshot.replica_health[replica] * 100.0:.0f}%")
    return "\n".join(lines)
