"""Typed operational routes: the registry behind ``BackendService.ops``.

The ops surface used to be an ad-hoc ``{name: (handler, privileged)}``
tuple table maintained by hand next to the class.  This module replaces
it with a typed registry: each handler method declares itself with the
:func:`ops_route` decorator, :func:`collect_ops_routes` builds the
``{name: OpsRoute}`` table from the class body, and callers that want a
structured envelope use :class:`OpsRequest` / :class:`OpsResponse`
instead of positional arguments.

The security contract is unchanged: all authorization for operational
endpoints happens in exactly one place (``BackendService.ops``), driven
by the ``privileged`` flag of each :class:`OpsRoute` — one check, no
per-endpoint copies, and the payloads of pre-existing routes are
byte-identical to the tuple-table era (asserted in
``tests/test_service_telemetry.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = [
    "OpsRoute",
    "OpsRequest",
    "OpsResponse",
    "collect_ops_routes",
    "ops_route",
]

#: Attribute stamped on handler methods by the decorator.
_MARKER = "__ops_route__"


@dataclass(frozen=True)
class OpsRoute:
    """One operational endpoint as registered by :func:`ops_route`.

    Attributes:
        name: the public route name (``"dashboard"``, ``"metrics"``, …).
        handler: the backend method attribute that serves it.
        privileged: True when dispatch requires an ops-role session;
            probe routes (``healthz``/``readyz``) are unauthenticated by
            design — a load balancer holds no session token.
        description: one-line operator-facing summary.
    """

    name: str
    handler: str
    privileged: bool
    description: str = ""


@dataclass(frozen=True)
class OpsRequest:
    """A typed ops call: route name, session token, handler parameters."""

    route: str
    token: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class OpsResponse:
    """The typed envelope of one dispatched ops call.

    ``payload`` is exactly what the bare ``ops()`` call returns for the
    same route and parameters — the envelope adds provenance without
    changing a byte of the payload itself.
    """

    route: str
    payload: Any
    privileged: bool


def ops_route(
    name: str, privileged: bool = True, description: str = ""
) -> Callable[[Callable], Callable]:
    """Register the decorated method as the handler of ops route *name*."""

    def decorate(method: Callable) -> Callable:
        setattr(
            method,
            _MARKER,
            OpsRoute(
                name=name,
                handler=method.__name__,
                privileged=privileged,
                description=description,
            ),
        )
        return method

    return decorate


def collect_ops_routes(cls: type) -> dict[str, OpsRoute]:
    """The ``{name: OpsRoute}`` table of every decorated handler of *cls*.

    Routes keep the order of their definition in the class body (subclass
    handlers override and re-position base routes of the same name).

    Two *different* handlers registering the same route name in the same
    class body raise ``ValueError`` — silent last-write-wins here means a
    production endpoint quietly serving the wrong handler.  A subclass
    overriding a base-class route stays legal (that is the override
    mechanism), as does re-decorating the same method.
    """
    routes: dict[str, OpsRoute] = {}
    for klass in reversed(cls.__mro__):
        seen: dict[str, str] = {}
        for attr in vars(klass).values():
            route = getattr(attr, _MARKER, None)
            if isinstance(route, OpsRoute):
                previous = seen.get(route.name)
                if previous is not None and previous != route.handler:
                    raise ValueError(
                        f"ops route {route.name!r} registered by two handlers "
                        f"in {klass.__name__}: {previous} and {route.handler}"
                    )
                seen[route.name] = route.handler
                routes[route.name] = route
    return routes
