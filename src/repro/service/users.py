"""Simulated user populations for the pilot phases (Section 8).

Two roles are modelled:

* **SMEs** (subject matter experts, Phase 1) — deep domain knowledge, but
  a 20-year habit of keyword queries: before being trained on the new
  guidelines they often compress a natural-language question back into
  keywords.  They leave feedback on about half of their questions.
* **Branch users** (Phase 2) — trained in advance to ask natural-language
  questions; selected among the most active tool users, so they leave
  feedback at a high rate.

A user's satisfaction follows what the paper observed: answers grounded in
truly relevant documents are rated positively most of the time; confident
answers built on the wrong documents are penalized; guardrail apologies
are rated negatively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.queries import LabeledQuery
from repro.service.backend import QueryRecord
from repro.service.feedback import GranularFeedback

ROLE_SME = "sme"
ROLE_BRANCH = "branch"


@dataclass(frozen=True)
class UserBehavior:
    """Behavioural parameters of one role."""

    p_feedback: float
    p_keyword_habit: float  # chance of degrading a NL question to keywords
    p_positive_grounded: float = 0.93
    p_positive_ungrounded: float = 0.60
    p_positive_guardrail: float = 0.12


#: Default behaviours per role; the keyword habit drops after training.
SME_UNTRAINED = UserBehavior(p_feedback=0.5, p_keyword_habit=0.6)
SME_TRAINED = UserBehavior(p_feedback=0.5, p_keyword_habit=0.1)
BRANCH_TRAINED = UserBehavior(p_feedback=0.75, p_keyword_habit=0.05)


@dataclass
class SimulatedUser:
    """One employee interacting with UniAsk during a pilot."""

    user_id: str
    role: str
    behavior: UserBehavior
    rng: random.Random

    def phrase_question(self, query: LabeledQuery) -> str:
        """How this user actually types *query* (habit may keywordize it)."""
        if self.rng.random() >= self.behavior.p_keyword_habit:
            return query.text
        # Old habit: strip the question down to 2-3 salient words.
        words = [word for word in query.text.rstrip("?").split() if len(word) > 3]
        keep = min(len(words), 2 + self.rng.randrange(2))
        return " ".join(words[:keep]) if words else query.text

    def maybe_give_feedback(
        self, record: QueryRecord, query: LabeledQuery
    ) -> GranularFeedback | None:
        """Fill the feedback form with probability ``p_feedback``."""
        if self.rng.random() >= self.behavior.p_feedback:
            return None
        return self.give_feedback(record, query)

    def give_feedback(self, record: QueryRecord, query: LabeledQuery) -> GranularFeedback:
        """Judge the answer against the user's own knowledge of the truth."""
        answer = record.answer
        retrieved_relevant = any(
            chunk.doc_id in query.relevant_docs for chunk in answer.documents[:4]
        )
        if answer.answered:
            grounded = any(chunk.doc_id in query.relevant_docs for chunk in answer.context)
            p_positive = (
                self.behavior.p_positive_grounded
                if grounded
                else self.behavior.p_positive_ungrounded
            )
        else:
            p_positive = self.behavior.p_positive_guardrail

        positive = self.rng.random() < p_positive
        rating = 3 + self.rng.randrange(3) if positive else 1 + self.rng.randrange(2)
        links = () if positive else tuple(sorted(query.relevant_docs)[:2])
        comments = "" if positive else "La risposta non copre la procedura corretta."
        return GranularFeedback(
            query_id=record.query_id,
            user_id=self.user_id,
            helpful=positive,
            retrieved_relevant=retrieved_relevant,
            rating=rating,
            links=links,
            comments=comments,
        )


def make_users(
    count: int, role: str, behavior: UserBehavior, seed: int
) -> list[SimulatedUser]:
    """Build a deterministic population of *count* users."""
    rng = random.Random(seed)
    return [
        SimulatedUser(
            user_id=f"{role}-{number:04d}",
            role=role,
            behavior=behavior,
            rng=random.Random(rng.getrandbits(64)),
        )
        for number in range(count)
    ]
