"""Granular user feedback (Section 8).

The frontend pop-up modal asks five questions after each answer:

1. Was the answer helpful?
2. Did the system retrieve relevant documents for your question?
3. Rating experience 1–5 (1 and 2 count as negative, 3–5 as positive);
4. Links to relevant documents (ground-truth collection on failures);
5. Additional comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Ratings 1-2 are negative, 3-5 positive (paper's convention).
POSITIVE_RATING_THRESHOLD = 3


@dataclass(frozen=True)
class GranularFeedback:
    """One filled feedback form."""

    query_id: str
    user_id: str
    helpful: bool
    retrieved_relevant: bool
    rating: int
    links: tuple[str, ...] = ()
    comments: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.rating <= 5:
            raise ValueError("rating must lie in 1..5")

    @property
    def positive(self) -> bool:
        """True when the rating counts as positive."""
        return self.rating >= POSITIVE_RATING_THRESHOLD


@dataclass
class FeedbackStore:
    """Backend-side storage of feedback forms."""

    feedbacks: list[GranularFeedback] = field(default_factory=list)

    def add(self, feedback: GranularFeedback) -> None:
        """Persist one feedback form."""
        self.feedbacks.append(feedback)

    def __len__(self) -> int:
        return len(self.feedbacks)

    @property
    def positive_fraction(self) -> float:
        """Share of positive ratings among all feedbacks."""
        if not self.feedbacks:
            return 0.0
        return sum(1 for f in self.feedbacks if f.positive) / len(self.feedbacks)

    def ground_truth_links(self) -> dict[str, tuple[str, ...]]:
        """query_id → user-contributed ground-truth document links.

        The paper found this field "extremely useful to gather ground-truth
        documents … for questions on which the system had failed".
        """
        return {f.query_id: f.links for f in self.feedbacks if f.links}

    def by_rating(self) -> dict[int, int]:
        """Histogram of ratings 1..5."""
        histogram = {rating: 0 for rating in range(1, 6)}
        for feedback in self.feedbacks:
            histogram[feedback.rating] += 1
        return histogram
