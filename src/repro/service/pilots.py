"""Pilot phase simulations (Section 8).

Re-creates the three pre-deployment test phases as executable scenarios:

* **Phase 1** — 200 SMEs for 2 months, 6 000 questions, ~3 000 feedbacks.
  Two releases: release 1 ships a guardrail **bug** (the ROUGE check
  compares the answer against only the *first* context chunk instead of
  taking the max over all chunks), inflating triggers to ~25%; release 2
  fixes it, lifting proper-answer rate to ~90%.  SMEs start with their old
  keyword habit and are trained mid-phase.
* **Phase 2** — 500 branch users for 1 month, trained in advance,
  > 11 000 feedbacks, ~91% proper answers and a peak 84% positive.
* **UAT** — the composed 210-question dataset, reviewed against ground
  truth: % correct answers, % guardrails triggered successfully, and
  % guardrails improperly triggered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.queries import KIND_OUT_OF_SCOPE, LabeledQuery, UatDataset
from repro.core.engine import UniAskEngine
from repro.guardrails.base import GuardrailVerdict
from repro.guardrails.citation import CitationGuardrail
from repro.guardrails.clarification import ClarificationGuardrail
from repro.guardrails.pipeline import GuardrailPipeline
from repro.guardrails.rouge import RougeGuardrail
from repro.search.results import RetrievedChunk
from repro.service.backend import BackendService
from repro.service.users import SimulatedUser


class BuggyRougeGuardrail(RougeGuardrail):
    """The release-1 bug: ROUGE computed against the first chunk only.

    Taking a single chunk instead of the max over the context makes the
    guardrail fire whenever the answer happens to be grounded in any other
    chunk — exactly the kind of inflation the paper attributes to "a bug
    that we fixed for the second release".
    """

    def similarity(self, answer: str, context: list[RetrievedChunk]) -> float:
        if not context:
            return 0.0
        from repro.text.similarity import rouge_l

        return rouge_l(answer, context[0].record.content)


def buggy_guardrail_pipeline(threshold: float | None = None) -> GuardrailPipeline:
    """The guardrail stack as shipped in Phase 1 release 1."""
    rouge = BuggyRougeGuardrail() if threshold is None else BuggyRougeGuardrail(threshold)
    return GuardrailPipeline([CitationGuardrail(), rouge, ClarificationGuardrail()])


@dataclass(frozen=True)
class ReleaseReport:
    """Aggregate results of one release within a pilot phase."""

    questions: int
    proper_answers: int
    guardrails_triggered: int
    feedbacks: int
    positive_feedbacks: int

    @property
    def proper_answer_rate(self) -> float:
        """Share of questions answered with citations (not guardrailed)."""
        return self.proper_answers / self.questions if self.questions else 0.0

    @property
    def positive_rate(self) -> float:
        """Share of positive feedbacks among collected feedbacks."""
        return self.positive_feedbacks / self.feedbacks if self.feedbacks else 0.0


@dataclass(frozen=True)
class PhaseReport:
    """One pilot phase: per-release reports plus totals."""

    releases: tuple[ReleaseReport, ...]

    @property
    def total_feedbacks(self) -> int:
        """Feedbacks collected across all releases."""
        return sum(release.feedbacks for release in self.releases)

    @property
    def total_questions(self) -> int:
        """Questions asked across all releases."""
        return sum(release.questions for release in self.releases)


def run_release(
    backend: BackendService,
    users: list[SimulatedUser],
    questions: list[LabeledQuery],
    seed: int = 5,
) -> ReleaseReport:
    """Play *questions* through *backend* with *users*, collecting feedback."""
    rng = random.Random(seed)
    proper = 0
    guardrails = 0
    feedbacks = 0
    positive = 0
    tokens = {user.user_id: backend.login(user.user_id) for user in users}

    for query in questions:
        user = users[rng.randrange(len(users))]
        text = user.phrase_question(query)
        record = backend.serve(tokens[user.user_id], text)
        if record.answer.answered:
            proper += 1
        elif record.answer.guardrail_fired:
            guardrails += 1
        feedback = user.maybe_give_feedback(record, query)
        if feedback is not None:
            backend.feedback(tokens[user.user_id], feedback)
            feedbacks += 1
            if feedback.positive:
                positive += 1

    return ReleaseReport(
        questions=len(questions),
        proper_answers=proper,
        guardrails_triggered=guardrails,
        feedbacks=feedbacks,
        positive_feedbacks=positive,
    )


# -- UAT ------------------------------------------------------------------------


@dataclass(frozen=True)
class UatReport:
    """Section 8 UAT summary."""

    total: int
    correct_answers: int
    guardrails_expected: int
    guardrails_correct: int
    guardrails_improper: int

    @property
    def correct_rate(self) -> float:
        """Share of correct answers over in-scope questions."""
        in_scope = self.total - self.guardrails_expected
        return self.correct_answers / in_scope if in_scope else 0.0

    @property
    def guardrail_success_rate(self) -> float:
        """Share of expected guardrail triggers that did fire."""
        if not self.guardrails_expected:
            return 0.0
        return self.guardrails_correct / self.guardrails_expected

    @property
    def improper_guardrail_rate(self) -> float:
        """Share of in-scope questions improperly blocked."""
        in_scope = self.total - self.guardrails_expected
        return self.guardrails_improper / in_scope if in_scope else 0.0


def run_uat(engine: UniAskEngine, dataset: UatDataset) -> UatReport:
    """Run the UAT questions and score them against ground truth.

    A *correct answer* is an accepted answer citing at least one
    ground-truth document (for questions with known relevant documents) or
    any accepted grounded answer (for SME free-form questions).  For
    out-of-scope questions the *expected* behaviour is a guardrail/refusal.
    """
    correct = 0
    expected_guardrails = 0
    guardrails_correct = 0
    improper = 0

    for query in dataset.all_queries:
        answer = engine.answer(query.text).answer
        if query.kind == KIND_OUT_OF_SCOPE:
            expected_guardrails += 1
            if not answer.answered:
                guardrails_correct += 1
            continue
        if answer.answered:
            if query.relevant_docs:
                cited_docs = {citation.doc_id for citation in answer.citations}
                if cited_docs & query.relevant_docs:
                    correct += 1
            else:
                correct += 1
        elif answer.guardrail_fired:
            improper += 1

    return UatReport(
        total=len(dataset.all_queries),
        correct_answers=correct,
        guardrails_expected=expected_guardrails,
        guardrails_correct=guardrails_correct,
        guardrails_improper=improper,
    )
