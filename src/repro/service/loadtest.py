"""Open-system load test of the LLM service (Section 9, Figure 2).

The paper treats UniAsk as an **open system**: users keep arriving at a
configured rate regardless of how many are already in the system.  The
Figure 2 test continuously hits the LLM resource for 60 minutes, ramping
the arrival rate linearly from 1 to 3 users per second, each request
carrying 7 200 tokens; 267 of 7 200 requests failed, and the observed
failures were used to set the production token-rate limit.

The simulation integrates the exact arrival process in closed form — with
rate ``r(t) = r0 + (r1 - r0) · t/T`` the cumulative arrivals are
``N(t) = r0·t + (r1 - r0)·t²/(2T)``, so the n-th arrival time solves a
quadratic — and plays the requests through a
:class:`~repro.llm.rate_limiter.TokenBucketRateLimiter`.  A request that
does not fit the bucket fails immediately (HTTP 429), exactly like the
provisioned Azure deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.llm.rate_limiter import TokenBucketRateLimiter
from repro.obs.audit import AuditLogger, read_audit_log


@dataclass(frozen=True)
class LoadTestConfig:
    """Figure 2 parameters (paper values as defaults)."""

    duration_seconds: float = 3600.0
    initial_rate: float = 1.0  # users per second at t=0
    target_rate: float = 3.0  # users per second at t=duration
    tokens_per_request: int = 7200
    tokens_per_minute: float = 1_045_000.0  # provisioned LLM quota under test
    burst_seconds: float = 15.0  # bucket capacity in seconds of quota

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.initial_rate < 0 or self.target_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.tokens_per_request <= 0:
            raise ValueError("tokens_per_request must be positive")


@dataclass(frozen=True)
class LoadTestReport:
    """The Figure 2 report: totals plus per-minute series."""

    total_requests: int
    failed_requests: int
    requests_per_minute: list[int] = field(default_factory=list)
    failures_per_minute: list[int] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        """Failed / total."""
        if self.total_requests == 0:
            return 0.0
        return self.failed_requests / self.total_requests

    @property
    def first_failure_minute(self) -> int | None:
        """Minute index of the first failure (None if none occurred)."""
        for minute, failures in enumerate(self.failures_per_minute):
            if failures:
                return minute
        return None


def arrival_times(config: LoadTestConfig) -> list[float]:
    """Exact arrival instants of the ramping open-system process."""
    r0 = config.initial_rate
    r1 = config.target_rate
    duration = config.duration_seconds
    slope = (r1 - r0) / duration

    total = r0 * duration + 0.5 * slope * duration * duration
    times: list[float] = []
    for n in range(1, int(total) + 1):
        if abs(slope) < 1e-12:
            t = n / r0 if r0 > 0 else duration
        else:
            # Solve 0.5*slope*t^2 + r0*t - n = 0 for the positive root.
            discriminant = r0 * r0 + 2.0 * slope * n
            t = (-r0 + math.sqrt(discriminant)) / slope
        if t > duration:
            break
        times.append(t)
    return times


def run_load_test(
    config: LoadTestConfig | None = None, capacity=None
) -> LoadTestReport:
    """Run the Figure 2 load test against a rate-limited LLM service.

    *capacity* is an optional
    :class:`~repro.obs.capacity.CapacityMonitor`: every arrival is
    observed under the ``llm`` resource, with the quota-sustainable
    service time (tokens per request over the provisioned token rate) as
    the deterministic response time, so the ramping arrival process
    drives the saturation gauges exactly as it drives the bucket.
    """
    config = config or LoadTestConfig()
    limiter = TokenBucketRateLimiter(
        tokens_per_minute=config.tokens_per_minute,
        burst_tokens=config.tokens_per_minute / 60.0 * config.burst_seconds,
    )

    minutes = int(math.ceil(config.duration_seconds / 60.0))
    requests_per_minute = [0] * minutes
    failures_per_minute = [0] * minutes
    service_time = config.tokens_per_request / (config.tokens_per_minute / 60.0)

    total = 0
    failed = 0
    for t in arrival_times(config):
        minute = min(int(t // 60.0), minutes - 1)
        requests_per_minute[minute] += 1
        total += 1
        decision = limiter.try_acquire(config.tokens_per_request, now=t)
        if not decision.allowed:
            failures_per_minute[minute] += 1
            failed += 1
        if capacity is not None:
            capacity.observe("llm", t, service_time, failed=not decision.allowed)

    return LoadTestReport(
        total_requests=total,
        failed_requests=failed,
        requests_per_minute=requests_per_minute,
        failures_per_minute=failures_per_minute,
    )


@dataclass(frozen=True)
class ClusterLoadTestConfig:
    """A fault-injecting load scenario against a sharded retrieval cluster.

    Replays the same ramping open-system arrival process as the Figure 2
    LLM test, but against a :class:`~repro.cluster.router.ClusterSearcher`,
    optionally killing (and later reviving) the replicas of one shard
    mid-run to measure graceful degradation instead of throughput.
    """

    duration_seconds: float = 120.0
    initial_rate: float = 0.5  # queries per second at t=0
    target_rate: float = 2.0  # queries per second at t=duration
    kill_at: float | None = None  # simulated second to kill replicas (None: never)
    kill_shard: int = 0
    kill_all_replicas: bool = True  # False kills only the first replica
    revive_at: float | None = None  # simulated second to revive them (None: never)

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.initial_rate < 0 or self.target_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.kill_at is not None and self.kill_at < 0:
            raise ValueError("kill_at must be non-negative")
        if (
            self.revive_at is not None
            and self.kill_at is not None
            and self.revive_at < self.kill_at
        ):
            raise ValueError("revive_at must not precede kill_at")


@dataclass(frozen=True)
class ClusterLoadTestReport:
    """Degradation report of one cluster load scenario."""

    total_queries: int
    partial_queries: int
    hedged_queries: int
    shard_latency_p95: float
    partial_per_minute: list[int] = field(default_factory=list)

    @property
    def partial_rate(self) -> float:
        """Partial / total."""
        if self.total_queries == 0:
            return 0.0
        return self.partial_queries / self.total_queries


def run_cluster_load_test(
    searcher,
    clock,
    queries: list[str],
    config: ClusterLoadTestConfig | None = None,
    audit: AuditLogger | None = None,
    capacity=None,
) -> ClusterLoadTestReport:
    """Drive *searcher* through an arrival process with fault injection.

    *queries* are cycled through the arrival instants; *clock* must be the
    same simulated clock the searcher reads (replica mark-down windows are
    evaluated against it).  Killed shards degrade queries to partial
    results — they never raise — and the report counts how many queries
    were affected while the shard was down.  The degradation counters are
    **asserted**, not just collected: a full-shard kill that serves
    queries while down yet records zero partial results raises
    ``RuntimeError``, because an all-green report from a scenario whose
    fault injection silently missed would prove nothing.

    When an enabled *audit* logger is supplied, the run writes one
    ``cluster_load_scenario`` header plus one ``cluster_query`` entry per
    arrival, then **replays its own log** through
    :func:`replay_cluster_report` and asserts the replayed report equals
    the live one — proving the JSONL log alone carries the full result
    (raises ``RuntimeError`` otherwise).

    When a :class:`~repro.obs.capacity.CapacityMonitor` is supplied as
    *capacity*, every arrival is observed under the ``cluster`` resource
    (response time = the gather barrier) and every shard probe under its
    replica, so the fault-injection scenario drives the per-replica
    saturation gauges: a killed shard shows up as error-rate on its
    replicas, not just as partial results.
    """
    from repro.service.monitoring import percentile

    config = config or ClusterLoadTestConfig()
    if not queries:
        raise ValueError("at least one query is required")
    audit = audit if audit is not None and audit.enabled else None

    arrivals = arrival_times(
        LoadTestConfig(
            duration_seconds=config.duration_seconds,
            initial_rate=config.initial_rate,
            target_rate=config.target_rate,
        )
    )
    minutes = int(math.ceil(config.duration_seconds / 60.0))
    partial_per_minute = [0] * minutes

    if audit is not None:
        audit.info(
            "cluster_load_scenario",
            duration_seconds=config.duration_seconds,
            initial_rate=config.initial_rate,
            target_rate=config.target_rate,
            kill_at=config.kill_at,
            kill_shard=config.kill_shard,
            kill_all_replicas=config.kill_all_replicas,
            revive_at=config.revive_at,
            arrivals=len(arrivals),
        )

    killed: list = []
    total = 0
    partial = 0
    hedged = 0
    queries_while_killed = 0
    shard_latencies: list[float] = []
    for i, t in enumerate(arrivals):
        clock.advance_to(t)
        if config.kill_at is not None and t >= config.kill_at and not killed:
            replicas = searcher.replicas(config.kill_shard)
            doomed = replicas if config.kill_all_replicas else replicas[:1]
            for replica in doomed:
                replica.kill()
            killed = doomed
        if config.revive_at is not None and killed and t >= config.revive_at:
            for replica in killed:
                replica.revive()
            killed = []

        if killed:
            queries_while_killed += 1
        searcher.search(queries[i % len(queries)])
        report = searcher.take_scatter_report()
        total += 1
        is_partial = False
        is_hedged = False
        probes: list[dict] = []
        if report is not None:
            shard_latencies.extend(probe.latency for probe in report.probes)
            is_hedged = report.hedged
            is_partial = report.partial
            if is_hedged:
                hedged += 1
            if is_partial:
                partial += 1
                partial_per_minute[min(int(t // 60.0), minutes - 1)] += 1
            if capacity is not None:
                capacity.observe("cluster", t, report.max_latency, failed=is_partial)
                for probe in report.probes:
                    resource = (
                        f"replica_{probe.replica_id}"
                        if probe.replica_id
                        else f"shard_{probe.shard_id}"
                    )
                    capacity.observe(resource, t, probe.latency, failed=not probe.ok)
            probes = [
                {
                    "shard": probe.shard_id,
                    "replica": probe.replica_id,
                    "latency": probe.latency,
                    "ok": probe.ok,
                    "hedged": probe.hedged,
                }
                for probe in report.probes
            ]
        if audit is not None:
            audit.info(
                "cluster_query",
                seq=i,
                arrival=t,
                partial=is_partial,
                hedged=is_hedged,
                probes=probes,
            )

    # A replica-churn scenario must *measure* degradation, not merely
    # survive it: if the whole shard was down while queries arrived and
    # not one came back partial, the fault injection silently missed (a
    # wrong shard id, a clock the searcher does not read) and an
    # all-green report would be a lie.
    if queries_while_killed > 0 and config.kill_all_replicas and partial == 0:
        raise RuntimeError(
            f"replica-churn scenario served {queries_while_killed} queries with "
            f"every replica of shard {config.kill_shard} down, yet recorded zero "
            "partial results — the fault injection did not degrade the cluster"
        )

    result = ClusterLoadTestReport(
        total_queries=total,
        partial_queries=partial,
        hedged_queries=hedged,
        shard_latency_p95=percentile(shard_latencies, 95.0) if shard_latencies else 0.0,
        partial_per_minute=partial_per_minute,
    )
    if audit is not None:
        # Round-trip through the canonical serialisation, not the in-memory
        # dicts: the guarantee is that the *file* reproduces the report.
        replayed = replay_cluster_report(read_audit_log(audit.lines()))
        if replayed != result:
            raise RuntimeError(
                "audit-log replay diverged from the live report: "
                f"{replayed} != {result}"
            )
    return result


def replay_cluster_report(entries: Iterable[dict]) -> ClusterLoadTestReport:
    """Rebuild a :class:`ClusterLoadTestReport` from audit-log entries alone.

    Expects one ``cluster_load_scenario`` header followed by the run's
    ``cluster_query`` entries (other events are ignored).  JSON round-trips
    floats exactly, so the replayed report — including the latency p95 —
    is equal, not merely close, to the live one.
    """
    scenario: dict | None = None
    total = 0
    partial = 0
    hedged = 0
    shard_latencies: list[float] = []
    partial_per_minute: list[int] = []
    from repro.service.monitoring import percentile

    for entry in entries:
        event = entry.get("event")
        if event == "cluster_load_scenario":
            scenario = entry
            minutes = int(math.ceil(float(entry["duration_seconds"]) / 60.0))
            partial_per_minute = [0] * minutes
        elif event == "cluster_query":
            if scenario is None:
                raise ValueError("cluster_query entry before the scenario header")
            total += 1
            shard_latencies.extend(probe["latency"] for probe in entry["probes"])
            if entry["hedged"]:
                hedged += 1
            if entry["partial"]:
                partial += 1
                minutes = len(partial_per_minute)
                partial_per_minute[min(int(entry["arrival"] // 60.0), minutes - 1)] += 1
    if scenario is None:
        raise ValueError("no cluster_load_scenario header in the audit log")
    return ClusterLoadTestReport(
        total_queries=total,
        partial_queries=partial,
        hedged_queries=hedged,
        shard_latency_p95=percentile(shard_latencies, 95.0) if shard_latencies else 0.0,
        partial_per_minute=partial_per_minute,
    )


def recommended_token_rate_limit(
    report: LoadTestReport, config: LoadTestConfig, target_failure_rate: float = 0.01
) -> float:
    """The paper's "simple calculation": size the quota from load-test results.

    Scales the tested quota by the demand it could not absorb, so the
    production limit keeps the expected failure rate under the target.
    """
    if report.total_requests == 0:
        return config.tokens_per_minute
    demand_tpm = report.total_requests * config.tokens_per_request / (
        config.duration_seconds / 60.0
    )
    peak_demand_tpm = config.target_rate * config.tokens_per_request * 60.0
    if report.failure_rate <= target_failure_rate:
        return config.tokens_per_minute
    # Provision for the peak arrival rate with the target slack.
    return peak_demand_tpm * (1.0 + target_failure_rate) if demand_tpm else peak_demand_tpm
