"""Post-launch ticket analysis.

The paper's headline business result (Sections 1–2): "Every year, thousands
of tickets are opened due to search-engine failures", and "post-launch
analysis shows that UniAsk allows to reduce the number of tickets opened to
report unsuccessful searches by around 20%".

This module models that operational process.  An employee has an enquiry,
phrases it according to habit (20 years of keyword search die hard — the
paper's Section 8 lesson), searches, and opens a ticket when the enquiry is
left unresolved:

* nothing returned → almost always a ticket;
* results returned but the needed page is not in the few the employee
  skims → frequent escalation;
* the needed page surfaced → rare escalation;
* (UniAsk only) a grounded natural-language answer → almost never.

The reduction is limited less by retrieval quality than by *user behaviour*:
most employees keep issuing keyword queries right after launch, where the
two systems perform comparably — which is exactly why the measured
reduction is ~20% rather than the much larger gap on natural-language
questions, and why the paper closes with the need to educate users.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.corpus.queries import LabeledQuery

#: How many results an employee is willing to skim before giving up.
SKIM_DEPTH = 4

#: Escalation causes.
CAUSE_NO_RESULTS = "no_results"
CAUSE_IRRELEVANT = "irrelevant_results"
CAUSE_RELEVANT = "relevant_results"
CAUSE_ANSWERED = "answered_grounded"


@dataclass(frozen=True)
class TicketPropensity:
    """Probability of opening a ticket per search outcome."""

    no_results: float = 0.65
    irrelevant_results: float = 0.55
    relevant_results: float = 0.10
    answered_grounded: float = 0.03

    def for_cause(self, cause: str) -> float:
        """The propensity of one outcome cause."""
        return {
            CAUSE_NO_RESULTS: self.no_results,
            CAUSE_IRRELEVANT: self.irrelevant_results,
            CAUSE_RELEVANT: self.relevant_results,
            CAUSE_ANSWERED: self.answered_grounded,
        }[cause]


@dataclass(frozen=True)
class TicketReport:
    """Ticket volume of one system over one enquiry stream."""

    searches: int
    tickets: int
    by_cause: dict[str, int]

    @property
    def ticket_rate(self) -> float:
        """Tickets per search."""
        return self.tickets / self.searches if self.searches else 0.0


def keywordize(enquiry: str, rng: random.Random) -> str:
    """Compress an enquiry into the 2–3 salient words of the old habit."""
    words = [word for word in enquiry.rstrip("?").split() if len(word) > 3]
    keep = min(len(words), 2 + rng.randrange(2))
    return " ".join(words[:keep]) if words else enquiry

#: An outcome observer maps (query, phrased text) to an escalation cause.
OutcomeObserver = Callable[[LabeledQuery, str], str]


def search_outcome_observer(retrieve: Callable[[str], list[str]]) -> OutcomeObserver:
    """Observer for a search-only system (the legacy engine)."""

    def observe(query: LabeledQuery, phrased: str) -> str:
        ranked = retrieve(phrased)
        if not ranked:
            return CAUSE_NO_RESULTS
        if any(doc_id in query.relevant_docs for doc_id in ranked[:SKIM_DEPTH]):
            return CAUSE_RELEVANT
        return CAUSE_IRRELEVANT

    return observe


def assistant_outcome_observer(engine) -> OutcomeObserver:
    """Observer for UniAsk: a grounded cited answer resolves the enquiry."""

    def observe(query: LabeledQuery, phrased: str) -> str:
        answer = engine.answer(phrased).answer
        if answer.answered and any(
            citation.doc_id in query.relevant_docs for citation in answer.citations
        ):
            return CAUSE_ANSWERED
        ranked = [chunk.doc_id for chunk in answer.documents]
        if not ranked:
            return CAUSE_NO_RESULTS
        if any(doc_id in query.relevant_docs for doc_id in ranked[:SKIM_DEPTH]):
            return CAUSE_RELEVANT
        return CAUSE_IRRELEVANT

    return observe


def simulate_tickets(
    observe: OutcomeObserver,
    enquiries: list[LabeledQuery],
    keyword_habit: float,
    propensity: TicketPropensity | None = None,
    seed: int = 17,
) -> TicketReport:
    """Replay an enquiry stream and count escalation tickets.

    Args:
        observe: the system under test (see the observer factories).
        enquiries: the underlying information needs (natural language, with
            ground truth).
        keyword_habit: probability that the employee compresses the enquiry
            into keywords before searching (1.0 for the pre-launch system,
            which cannot handle anything else).
        propensity: per-outcome ticket probabilities.
        seed: RNG seed for phrasing and propensity draws.
    """
    if not 0.0 <= keyword_habit <= 1.0:
        raise ValueError("keyword_habit must be a probability")
    propensity = propensity or TicketPropensity()
    rng = random.Random(seed)

    tickets = 0
    by_cause = {
        CAUSE_NO_RESULTS: 0,
        CAUSE_IRRELEVANT: 0,
        CAUSE_RELEVANT: 0,
        CAUSE_ANSWERED: 0,
    }
    for query in enquiries:
        phrased = keywordize(query.text, rng) if rng.random() < keyword_habit else query.text
        cause = observe(query, phrased)
        if rng.random() < propensity.for_cause(cause):
            tickets += 1
            by_cause[cause] += 1
    return TicketReport(searches=len(enquiries), tickets=tickets, by_cause=by_cause)


def ticket_reduction(before: TicketReport, after: TicketReport) -> float:
    """Fractional reduction of the ticket rate from *before* to *after*."""
    if before.ticket_rate == 0.0:
        return 0.0
    return 1.0 - after.ticket_rate / before.ticket_rate
