"""Alerting on top of the monitoring dashboard.

Section 9's monitoring exists so operators notice problems; in production
nobody stares at a dashboard — alert rules watch the same counters.  Rules
evaluate a :class:`~repro.service.monitoring.DashboardSnapshot` and fire
when an operational threshold is crossed: failed-request spikes, guardrail
rate drift (the Phase 1 release-1 bug would have tripped this), latency
degradation, or traffic drops.

Alongside the threshold rules, :func:`evaluate_slo_alerts` runs the
multi-window burn-rate evaluation of :mod:`repro.obs.slo` over the raw
query log: :func:`default_slos` declares the three service objectives
(availability, latency, guardrail pass rate) together with the predicate
that classifies each :class:`~repro.service.monitoring.QueryEvent` as good
or bad, and every fired :class:`~repro.obs.slo.BurnRateAlert` is adapted
into the same :class:`Alert` shape the threshold rules emit.

:func:`evaluate_quality_alerts` does the same adaptation for the online
quality layer of :mod:`repro.obs.quality`: drift-detector firings and
canary degradations become ``quality_<name>`` alerts, so burn rates,
threshold rules and quality drift all ride one alert surface (the ops
``slo`` route, the ``metrics`` CLI gate, CI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.slo import DEFAULT_BURN_WINDOWS, SLO, BurnWindow, SloSample, evaluate_burn_rates
from repro.service.monitoring import DashboardSnapshot, QueryEvent

#: Severities, in escalation order.
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule: str
    severity: str
    message: str


@dataclass(frozen=True)
class AlertRule:
    """A named predicate over the dashboard snapshot."""

    name: str
    severity: str
    predicate: Callable[[DashboardSnapshot], bool]
    describe: Callable[[DashboardSnapshot], str]

    def evaluate(self, snapshot: DashboardSnapshot) -> Alert | None:
        """Fire the alert when the predicate holds."""
        if self.predicate(snapshot):
            return Alert(rule=self.name, severity=self.severity, message=self.describe(snapshot))
        return None


def _guardrail_rate(snapshot: DashboardSnapshot) -> float:
    if snapshot.queries == 0:
        return 0.0
    return snapshot.guardrails_triggered / snapshot.queries


def _failure_rate(snapshot: DashboardSnapshot) -> float:
    if snapshot.queries == 0:
        return 0.0
    return snapshot.failed_requests / snapshot.queries


def default_rules(
    max_guardrail_rate: float = 0.15,
    max_failure_rate: float = 0.02,
    max_response_time: float = 5.0,
) -> list[AlertRule]:
    """The production rule set with its documented thresholds.

    The guardrail-rate rule is calibrated from Table 5: a healthy system
    blocks ~5% of answers; the 25% observed under the Phase 1 release-1
    bug would fire it immediately.
    """
    return [
        AlertRule(
            name="guardrail_rate",
            severity=SEVERITY_WARNING,
            predicate=lambda s: _guardrail_rate(s) > max_guardrail_rate,
            describe=lambda s: (
                f"guardrails triggered on {_guardrail_rate(s):.1%} of queries "
                f"(threshold {max_guardrail_rate:.0%}) — check generation quality"
            ),
        ),
        AlertRule(
            name="failed_requests",
            severity=SEVERITY_CRITICAL,
            predicate=lambda s: _failure_rate(s) > max_failure_rate,
            describe=lambda s: (
                f"{s.failed_requests} failed requests ({_failure_rate(s):.1%}, "
                f"threshold {max_failure_rate:.0%}) — check the LLM token quota"
            ),
        ),
        AlertRule(
            name="response_time",
            severity=SEVERITY_WARNING,
            predicate=lambda s: s.average_response_time > max_response_time,
            describe=lambda s: (
                f"average response time {s.average_response_time:.1f}s "
                f"(threshold {max_response_time:.1f}s)"
            ),
        ),
    ]


def evaluate_alerts(
    snapshot: DashboardSnapshot, rules: list[AlertRule] | None = None
) -> list[Alert]:
    """Evaluate all *rules* against *snapshot*; returns the fired alerts."""
    fired = []
    for rule in rules if rules is not None else default_rules():
        alert = rule.evaluate(snapshot)
        if alert is not None:
            fired.append(alert)
    return fired


@dataclass(frozen=True)
class ServiceSlo:
    """One service SLO plus the predicate classifying a query event as good."""

    slo: SLO
    good: Callable[[QueryEvent], bool]


def default_slos(latency_threshold: float = 5.0) -> list[ServiceSlo]:
    """The four service objectives and their event classifiers.

    * **availability** (99%): the request did not fail outright.
    * **latency** (95% under *latency_threshold* seconds): served fast
      enough — failed requests also count against it (a timeout is slow).
    * **guardrail pass rate** (85%): the answer was not invalidated by a
      guardrail; calibrated from Table 5, where a healthy system blocks
      well under 15% of answers.
    * **completeness** (95%): the answer covered every shard — a dark
      shard turns the whole fleet's responses partial at once, which is
      exactly the signal an incident page should ride on.
    """
    return [
        ServiceSlo(
            slo=SLO(
                "availability", 0.99, "99% of requests complete without failing"
            ),
            good=lambda event: not event.failed,
        ),
        ServiceSlo(
            slo=SLO(
                "latency",
                0.95,
                f"95% of requests served within {latency_threshold:g}s",
            ),
            good=lambda event: (not event.failed)
            and event.response_time <= latency_threshold,
        ),
        ServiceSlo(
            slo=SLO(
                "guardrail_pass_rate",
                0.85,
                "85% of generated answers survive the guardrail pipeline",
            ),
            good=lambda event: not event.outcome.startswith("guardrail_"),
        ),
        ServiceSlo(
            slo=SLO(
                "completeness",
                0.95,
                "95% of answers cover every shard (no partial results)",
            ),
            good=lambda event: not event.partial,
        ),
    ]


def evaluate_slo_alerts(
    events: list[QueryEvent],
    now: float,
    slos: list[ServiceSlo] | None = None,
    windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
) -> list[Alert]:
    """Run the multi-window burn-rate check of every SLO over the query log.

    Each fired :class:`~repro.obs.slo.BurnRateAlert` maps to an
    :class:`Alert` named ``slo_<name>``, so SLO alerts and threshold alerts
    share one downstream shape (routing, display, tests).
    """
    fired: list[Alert] = []
    for service_slo in slos if slos is not None else default_slos():
        samples = [
            SloSample(timestamp=event.timestamp, good=service_slo.good(event))
            for event in events
        ]
        for burn_alert in evaluate_burn_rates(service_slo.slo, samples, now, windows):
            fired.append(
                Alert(
                    rule=f"slo_{burn_alert.slo}",
                    severity=burn_alert.severity,
                    message=burn_alert.message,
                )
            )
    return fired


def evaluate_quality_alerts(monitor) -> list[Alert]:
    """Adapt a :class:`~repro.obs.quality.QualityMonitor`'s fired alerts.

    Each :class:`~repro.obs.quality.QualityAlert` (streaming drift or
    canary degradation) maps to an :class:`Alert` named
    ``quality_<name>``, keeping one downstream shape for every alert
    source.  A None *monitor* yields no alerts, so call sites need no
    wiring check.
    """
    if monitor is None:
        return []
    return [
        Alert(
            rule=f"quality_{alert.name}",
            severity=alert.severity,
            message=alert.message,
        )
        for alert in monitor.alerts()
    ]
