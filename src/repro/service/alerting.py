"""Alerting on top of the monitoring dashboard.

Section 9's monitoring exists so operators notice problems; in production
nobody stares at a dashboard — alert rules watch the same counters.  Rules
evaluate a :class:`~repro.service.monitoring.DashboardSnapshot` and fire
when an operational threshold is crossed: failed-request spikes, guardrail
rate drift (the Phase 1 release-1 bug would have tripped this), latency
degradation, or traffic drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.service.monitoring import DashboardSnapshot

#: Severities, in escalation order.
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    rule: str
    severity: str
    message: str


@dataclass(frozen=True)
class AlertRule:
    """A named predicate over the dashboard snapshot."""

    name: str
    severity: str
    predicate: Callable[[DashboardSnapshot], bool]
    describe: Callable[[DashboardSnapshot], str]

    def evaluate(self, snapshot: DashboardSnapshot) -> Alert | None:
        """Fire the alert when the predicate holds."""
        if self.predicate(snapshot):
            return Alert(rule=self.name, severity=self.severity, message=self.describe(snapshot))
        return None


def _guardrail_rate(snapshot: DashboardSnapshot) -> float:
    if snapshot.queries == 0:
        return 0.0
    return snapshot.guardrails_triggered / snapshot.queries


def _failure_rate(snapshot: DashboardSnapshot) -> float:
    if snapshot.queries == 0:
        return 0.0
    return snapshot.failed_requests / snapshot.queries


def default_rules(
    max_guardrail_rate: float = 0.15,
    max_failure_rate: float = 0.02,
    max_response_time: float = 5.0,
) -> list[AlertRule]:
    """The production rule set with its documented thresholds.

    The guardrail-rate rule is calibrated from Table 5: a healthy system
    blocks ~5% of answers; the 25% observed under the Phase 1 release-1
    bug would fire it immediately.
    """
    return [
        AlertRule(
            name="guardrail_rate",
            severity=SEVERITY_WARNING,
            predicate=lambda s: _guardrail_rate(s) > max_guardrail_rate,
            describe=lambda s: (
                f"guardrails triggered on {_guardrail_rate(s):.1%} of queries "
                f"(threshold {max_guardrail_rate:.0%}) — check generation quality"
            ),
        ),
        AlertRule(
            name="failed_requests",
            severity=SEVERITY_CRITICAL,
            predicate=lambda s: _failure_rate(s) > max_failure_rate,
            describe=lambda s: (
                f"{s.failed_requests} failed requests ({_failure_rate(s):.1%}, "
                f"threshold {max_failure_rate:.0%}) — check the LLM token quota"
            ),
        ),
        AlertRule(
            name="response_time",
            severity=SEVERITY_WARNING,
            predicate=lambda s: s.average_response_time > max_response_time,
            describe=lambda s: (
                f"average response time {s.average_response_time:.1f}s "
                f"(threshold {max_response_time:.1f}s)"
            ),
        ),
    ]


def evaluate_alerts(
    snapshot: DashboardSnapshot, rules: list[AlertRule] | None = None
) -> list[Alert]:
    """Evaluate all *rules* against *snapshot*; returns the fired alerts."""
    fired = []
    for rule in rules if rules is not None else default_rules():
        alert = rule.evaluate(snapshot)
        if alert is not None:
            fired.append(alert)
    return fired
