"""Frontend service.

Section 3: "The FrontEnd service provides an interface users can interact
with.  It exposes a search box to query the engine and a feedback form
where the user can provide information about the answer quality."

The in-process equivalent renders the result page as text (answer block
with resolved citations, the retrieved document list that stays visible
even when a guardrail fires, and the granular feedback modal of Section 8)
and forwards submitted forms to the backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.answer import UniAskAnswer
from repro.service.backend import BackendService, QueryRecord
from repro.service.feedback import GranularFeedback
from repro.text.analyzer import FULL_ANALYZER
from repro.text.tokenizer import sentence_split, word_tokenize

#: How many documents the result page lists under the answer.
RESULT_LIST_SIZE = 10

#: How many listed documents get a highlighted snippet.
SNIPPET_COUNT = 3


def highlight_snippet(query: str, content: str, max_length: int = 160) -> str:
    """The content sentence that best matches *query*, with terms marked.

    Matching happens at the analyzer (stem) level, so inflected forms
    highlight too; matched words are wrapped in «guillemets», the
    convention of the original frontend.
    """
    query_terms = FULL_ANALYZER.analyze_unique(query)
    if not query_terms:
        return content[:max_length]

    best_sentence = ""
    best_hits = -1
    for sentence in sentence_split(content):
        hits = len(FULL_ANALYZER.analyze_unique(sentence) & query_terms)
        if hits > best_hits:
            best_sentence, best_hits = sentence, hits

    marked_words = []
    for word in best_sentence.split():
        tokens = FULL_ANALYZER.analyze_unique(" ".join(word_tokenize(word)))
        if tokens & query_terms:
            marked_words.append(f"«{word}»")
        else:
            marked_words.append(word)
    snippet = " ".join(marked_words)
    if len(snippet) > max_length:
        snippet = snippet[: max_length - 1].rsplit(" ", 1)[0] + "…"
    return snippet


@dataclass(frozen=True)
class FeedbackForm:
    """The granular feedback modal, pre-bound to a served query."""

    query_id: str
    user_id: str

    def submit(
        self,
        helpful: bool,
        retrieved_relevant: bool,
        rating: int,
        links: tuple[str, ...] = (),
        comments: str = "",
    ) -> GranularFeedback:
        """Build the feedback payload from the form fields."""
        return GranularFeedback(
            query_id=self.query_id,
            user_id=self.user_id,
            helpful=helpful,
            retrieved_relevant=retrieved_relevant,
            rating=rating,
            links=links,
            comments=comments,
        )


def render_answer_page(answer: UniAskAnswer) -> str:
    """Render one result page as the frontend displays it."""
    lines = [f"❓ {answer.question}", ""]
    if answer.answered:
        lines.append(answer.answer_text)
        if answer.citations:
            lines.append("")
            lines.append("Fonti:")
            for citation in answer.citations:
                lines.append(f"  [{citation.key}] {citation.title} ({citation.doc_id})")
    else:
        lines.append(f"⚠ {answer.answer_text}")

    if answer.documents:
        lines.append("")
        lines.append("Documenti trovati:")
        for position, chunk in enumerate(answer.documents[:RESULT_LIST_SIZE], start=1):
            lines.append(f"  {position:2d}. {chunk.record.title} ({chunk.doc_id})")
            if position <= SNIPPET_COUNT:
                snippet = highlight_snippet(answer.question, chunk.record.content)
                lines.append(f"      {snippet}")
    return "\n".join(lines)


class FrontendSession:
    """One logged-in user's view of UniAsk."""

    def __init__(self, backend: BackendService, user_id: str) -> None:
        self._backend = backend
        self._user_id = user_id
        self._token = backend.login(user_id)
        self._last_record: QueryRecord | None = None

    @property
    def user_id(self) -> str:
        """The authenticated employee."""
        return self._user_id

    def search(self, question: str) -> str:
        """Type *question* into the search box; returns the rendered page."""
        self._last_record = self._backend.query(self._token, question)
        return render_answer_page(self._last_record.answer)

    @property
    def last_answer(self) -> UniAskAnswer | None:
        """The raw answer behind the last rendered page."""
        return self._last_record.answer if self._last_record else None

    def feedback_form(self) -> FeedbackForm:
        """Open the feedback modal for the last answer."""
        if self._last_record is None:
            raise RuntimeError("no query has been made in this session")
        return FeedbackForm(query_id=self._last_record.query_id, user_id=self._user_id)

    def submit_feedback(self, form_payload: GranularFeedback) -> None:
        """Send a filled feedback form to the backend."""
        self._backend.feedback(self._token, form_payload)
