"""Service layer: backend, frontend, feedback, monitoring, load test, pilots."""

from repro.service.alerting import (
    Alert,
    AlertRule,
    default_rules,
    evaluate_alerts,
)
from repro.service.backend import (
    ROLE_EMPLOYEE,
    ROLE_OPS,
    AuthenticationError,
    AuthorizationError,
    BackendService,
    QueryRecord,
)
from repro.service.feedback import FeedbackStore, GranularFeedback
from repro.service.frontend import FeedbackForm, FrontendSession, render_answer_page
from repro.service.tickets import (
    TicketPropensity,
    TicketReport,
    assistant_outcome_observer,
    search_outcome_observer,
    simulate_tickets,
    ticket_reduction,
)
from repro.service.loadtest import (
    LoadTestConfig,
    LoadTestReport,
    arrival_times,
    recommended_token_rate_limit,
    run_load_test,
)
from repro.service.monitoring import (
    DashboardSnapshot,
    MetricsCollector,
    QueryEvent,
    format_dashboard,
)
from repro.service.pilots import (
    BuggyRougeGuardrail,
    PhaseReport,
    ReleaseReport,
    UatReport,
    buggy_guardrail_pipeline,
    run_release,
    run_uat,
)
from repro.service.users import (
    BRANCH_TRAINED,
    ROLE_BRANCH,
    ROLE_SME,
    SME_TRAINED,
    SME_UNTRAINED,
    SimulatedUser,
    UserBehavior,
    make_users,
)

__all__ = [
    "Alert",
    "AlertRule",
    "default_rules",
    "evaluate_alerts",
    "ROLE_EMPLOYEE",
    "ROLE_OPS",
    "AuthorizationError",
    "FeedbackForm",
    "FrontendSession",
    "render_answer_page",
    "TicketPropensity",
    "TicketReport",
    "assistant_outcome_observer",
    "search_outcome_observer",
    "simulate_tickets",
    "ticket_reduction",
    "AuthenticationError",
    "BackendService",
    "QueryRecord",
    "FeedbackStore",
    "GranularFeedback",
    "LoadTestConfig",
    "LoadTestReport",
    "arrival_times",
    "recommended_token_rate_limit",
    "run_load_test",
    "DashboardSnapshot",
    "MetricsCollector",
    "QueryEvent",
    "format_dashboard",
    "BuggyRougeGuardrail",
    "PhaseReport",
    "ReleaseReport",
    "UatReport",
    "buggy_guardrail_pipeline",
    "run_release",
    "run_uat",
    "BRANCH_TRAINED",
    "ROLE_BRANCH",
    "ROLE_SME",
    "SME_TRAINED",
    "SME_UNTRAINED",
    "SimulatedUser",
    "UserBehavior",
    "make_users",
]
