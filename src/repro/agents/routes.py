"""Route taxonomy of the multi-agent orchestration layer.

Route names are stable identifiers: the ``uniask_agent_route_total``
metric, the audit log's ``route`` field, explain reports and the CLI all
key on them, so treat renames as breaking changes.

The taxonomy mirrors ReportGenAI's agent roster (Orchestrator, SQLMaker,
Validator, FollowUp, Conversational) projected onto UniAsk's query mix:

* ``conversational`` — small talk, thanks, capability questions; answered
  directly, **without retrieval**.
* ``lookup`` — ordinary knowledge-base questions; takes the existing
  retrieve → generate → validate path unchanged.
* ``multi_hop`` — comparative/conjunctive questions decomposed into
  sub-queries whose per-sub-query rankings are fused through the existing
  RRF machinery.
* ``structured`` — questions over the KB's typed tables (error codes,
  procedures) compiled into the mini query engine of
  :mod:`repro.agents.structured`, with a Validator/repair loop.
* ``follow_up`` — anaphoric continuations ("E per i clienti business?")
  resolved against the bounded per-session memory.
"""

from __future__ import annotations

ROUTE_CONVERSATIONAL = "conversational"
ROUTE_LOOKUP = "lookup"
ROUTE_MULTI_HOP = "multi_hop"
ROUTE_STRUCTURED = "structured"
ROUTE_FOLLOW_UP = "follow_up"

#: Every route the orchestrator may choose (or a caller may force via
#: ``AskOptions(route=...)``).
ALL_ROUTES = (
    ROUTE_CONVERSATIONAL,
    ROUTE_LOOKUP,
    ROUTE_MULTI_HOP,
    ROUTE_STRUCTURED,
    ROUTE_FOLLOW_UP,
)
