"""Train-free intent classification.

The Orchestrator's first move is deciding *how* a question should be
answered.  There is no labelled routing corpus in a bank's first
deployment, so the classifier is deliberately train-free: a small cascade
of surface heuristics over the question (plus the session history for
follow-up detection), validated against the ``KIND_*`` labels of
:mod:`repro.corpus.queries` by the routing-accuracy suite — the gate is
≥ 95% on the human / keyword / error-code kinds of the seed UAT dataset.

Precision ordering matters: the cascade tries the *narrow* routes first
(conversational markers, session anaphora, error codes and table
questions, explicit comparison connectives) and only then falls through to
``lookup``, the safe default that behaves exactly like the pre-agent
pipeline.  A misrouted lookup question would change its answer, so every
narrow route keys on markers that the synthetic human/keyword query
generators provably never emit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.agents.routes import (
    ROUTE_CONVERSATIONAL,
    ROUTE_FOLLOW_UP,
    ROUTE_LOOKUP,
    ROUTE_MULTI_HOP,
    ROUTE_STRUCTURED,
)

#: Error-code identifiers ("ERR-1003", "err 1003").
ERROR_CODE_RE = re.compile(r"\berr[\s-]?(\d{3,5})\b", re.IGNORECASE)

#: Table-style questions over the structured catalog: an interrogative
#: quantifier directly followed by a table noun ("Quali errori...",
#: "Quante procedure...").  The human templates never *start* with these
#: (their "Qual è la procedura per..." is singular and non-initial-plural),
#: so the pattern cannot steal lookup questions.
_TABLE_QUESTION_RE = re.compile(
    r"^(?:quali|quanti|quante|elenca|lista)\s+(?:gli\s+|le\s+|i\s+)?"
    r"(?:errori|codici(?:\s+(?:di\s+)?errore)?|procedure)\b",
    re.IGNORECASE,
)

#: Explicit comparison/conjunction connectives of multi-hop questions.
_MULTI_HOP_RES = (
    re.compile(r"\bdifferenz[ae]\b.*\btra\b.+\be\b", re.IGNORECASE),
    re.compile(r"^confronta\b.+\b(?:con|e)\b", re.IGNORECASE),
    re.compile(r"\bsia\b.+\b(?:sia|che)\b.+\?", re.IGNORECASE),
    re.compile(r"\be\s+inoltre\s+come\b", re.IGNORECASE),
)

#: Leading connectives of anaphoric follow-up turns.
_FOLLOW_UP_RE = re.compile(
    r"^(?:e|ed|anche|invece|quindi|e\s+per|e\s+se|lo\s+stesso)\b", re.IGNORECASE
)

_GREETINGS = (
    "ciao",
    "buongiorno",
    "buonasera",
    "salve",
    "hello",
    "hi",
)
_THANKS = (
    "grazie",
    "grazie mille",
    "ti ringrazio",
    "perfetto grazie",
    "ok grazie",
)
_CAPABILITY_PHRASES = (
    "chi sei",
    "cosa sai fare",
    "cosa puoi fare",
    "come funzioni",
    "come ti chiami",
    "che cosa sei",
    "a cosa servi",
)


def _normalize(question: str) -> str:
    return re.sub(r"[^\wàèéìòù\s-]", " ", question.lower()).strip()


@dataclass(frozen=True)
class RoutePrediction:
    """The classifier's verdict for one question.

    Attributes:
        route: one of the ``ROUTE_*`` constants.
        reason: the matched heuristic, for spans and the confusion table.
    """

    route: str
    reason: str


class IntentClassifier:
    """The heuristic cascade behind the Orchestrator's routing decision."""

    def classify(
        self, question: str, history: Sequence = ()
    ) -> RoutePrediction:
        """Predict the route of *question* given the session *history*.

        *history* is the session's remembered turns (oldest first); the
        follow-up route is only reachable when it is non-empty — without a
        previous turn there is nothing to resolve anaphora against.
        """
        normalized = _normalize(question)
        words = normalized.split()

        if self._is_conversational(normalized, words):
            return RoutePrediction(ROUTE_CONVERSATIONAL, "smalltalk_marker")

        if history:
            last = history[-1]
            if getattr(last, "clarification_pending", False):
                return RoutePrediction(ROUTE_FOLLOW_UP, "clarification_pending")
            if _FOLLOW_UP_RE.match(question.strip()) and len(words) <= 12:
                return RoutePrediction(ROUTE_FOLLOW_UP, "anaphora_connective")

        if ERROR_CODE_RE.search(question):
            return RoutePrediction(ROUTE_STRUCTURED, "error_code")
        if _TABLE_QUESTION_RE.match(question.strip()):
            return RoutePrediction(ROUTE_STRUCTURED, "table_question")

        for pattern in _MULTI_HOP_RES:
            if pattern.search(question):
                return RoutePrediction(ROUTE_MULTI_HOP, "comparison_connective")

        return RoutePrediction(ROUTE_LOOKUP, "default")

    def _is_conversational(self, normalized: str, words: list[str]) -> bool:
        if not words:
            return True
        if normalized in _GREETINGS or normalized in _THANKS:
            return True
        # Short messages that *start* with a greeting/thanks marker
        # ("ciao, ci sei?", "grazie mille!") — long questions that merely
        # open politely still deserve retrieval.
        if len(words) <= 4 and (words[0] in _GREETINGS or words[0] in ("grazie",)):
            return True
        return any(phrase in normalized for phrase in _CAPABILITY_PHRASES)
