"""The Orchestrator: route classification and per-route execution.

The Orchestrator fronts the :class:`~repro.core.engine.UniAskEngine` the
way ReportGenAI's Orchestrator fronts its SQL stack: it decides *how* a
question should be answered (see :mod:`repro.agents.routes`) and runs the
chosen specialist, reusing the engine's existing stage methods so every
route inherits the content filter, guardrails and citation machinery
unchanged:

* **conversational** — canned reply, no retrieval, no LLM;
* **lookup** — exactly today's staged pipeline (the safe default);
* **multi_hop** — decompose, retrieve each hop, fuse the per-hop rankings
  through :func:`~repro.search.fusion.reciprocal_rank_fusion` (bit-exact
  RRF sums preserved in explain reports), then generate over the fusion;
* **structured** — compile the question into a :class:`~repro.agents.structured.TablePlan`
  over the extracted KB tables, with the Validator repair loop; rendered
  rows carry ordinary ``[docK]`` citations resolved against the retrieval
  context;
* **follow_up** — resolve anaphora against the bounded per-session memory
  and run the rewrite through the lookup pipeline.

The Orchestrator is only *constructed* when agents are enabled, so its
route counter never appears in the metrics exposition of an agents-off
deployment — part of the byte-identity contract of
:class:`~repro.agents.config.AgentsConfig`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.agents.config import AgentsConfig
from repro.agents.conversational import ConversationalAgent
from repro.agents.followup import FollowUpAgent
from repro.agents.intent import IntentClassifier, RoutePrediction
from repro.agents.memory import SessionMemory, SessionTurn
from repro.agents.multihop import MultiHopAgent
from repro.agents.routes import (
    ALL_ROUTES,
    ROUTE_CONVERSATIONAL,
    ROUTE_FOLLOW_UP,
    ROUTE_LOOKUP,
    ROUTE_MULTI_HOP,
    ROUTE_STRUCTURED,
)
from repro.agents.structured import (
    StructuredAgent,
    StructuredCatalog,
    render_structured_answer,
)
from repro.core.answer import OUTCOME_ANSWERED, OUTCOME_CONTENT_FILTER, UniAskAnswer
from repro.llm.base import RESPONSE_KIND_CLARIFICATION
from repro.obs import spans
from repro.search.fusion import reciprocal_rank_fusion


class Orchestrator:
    """Routes questions to specialist agents in front of the engine.

    Args:
        config: the agents subsystem configuration.
        catalog: the structured table catalog (None disables the
            structured mini engine; structured questions then fall back
            to the generative pipeline).
        clock: the deployment's simulated clock, driving session TTLs.
        registry: the telemetry metric registry; the route counter is
            registered here iff an Orchestrator exists, keeping the
            agents-off ``/metrics`` exposition byte-identical.
    """

    def __init__(
        self,
        config: AgentsConfig | None = None,
        *,
        catalog: StructuredCatalog | None = None,
        clock=None,
        registry=None,
    ) -> None:
        self.config = config or AgentsConfig(enabled=True)
        self.classifier = IntentClassifier()
        self.memory = SessionMemory(
            capacity=self.config.session_capacity,
            ttl_seconds=self.config.session_ttl_seconds,
            turns_per_session=self.config.session_turns,
            clock=clock,
        )
        self.conversational = ConversationalAgent()
        self.followup = FollowUpAgent()
        self.multihop = MultiHopAgent(max_hops=self.config.max_hops)
        self.catalog = catalog
        self.structured: StructuredAgent | None = (
            StructuredAgent(
                catalog,
                max_repair_attempts=self.config.max_repair_attempts,
                limit=self.config.structured_limit,
            )
            if catalog is not None
            else None
        )
        self._m_routes = (
            registry.counter(
                "uniask_agent_route_total",
                "Agent-routed requests, by route and pipeline outcome.",
                ("route", "outcome"),
            )
            if registry is not None
            else None
        )
        self._last_resolved = ""

    def refresh_catalog(self, store) -> None:
        """Re-extract the structured tables after a corpus write."""
        self.catalog = StructuredCatalog.from_store(store)
        self.structured = StructuredAgent(
            self.catalog,
            max_repair_attempts=self.config.max_repair_attempts,
            limit=self.config.structured_limit,
        )

    # -- routing --------------------------------------------------------------

    def resolve_route(self, question: str, options, ctx) -> RoutePrediction:
        """Decide the route for *question* (explicit override wins)."""
        with ctx.trace.span(spans.STAGE_AGENT_ROUTE) as span:
            if options.route:
                if options.route not in ALL_ROUTES:
                    raise ValueError(f"unknown route override {options.route!r}")
                prediction = RoutePrediction(route=options.route, reason="override")
            else:
                prediction = self.classifier.classify(
                    question, history=self.memory.turns(options.session_id)
                )
            span.set("route", prediction.route)
            span.set("reason", prediction.reason)
        return prediction

    # -- execution ------------------------------------------------------------

    def execute(self, engine, question: str, options, ctx, route: str) -> UniAskAnswer:
        """Run *question* down *route* using the engine's stage methods."""
        self._last_resolved = question
        if route == ROUTE_CONVERSATIONAL:
            return self._run_conversational(question)
        if route == ROUTE_MULTI_HOP:
            return self._run_multi_hop(engine, question, options.filters, ctx)
        if route == ROUTE_STRUCTURED:
            return self._run_structured(engine, question, options.filters, ctx)
        if route == ROUTE_FOLLOW_UP:
            return self._run_follow_up(engine, question, options, ctx)
        return engine._ask_staged(question, options.filters, ctx)

    def finish(self, question: str, answer: UniAskAnswer, options, route: str) -> None:
        """Record the served turn: route metrics plus session memory."""
        clarification = (
            answer.generation_kind == RESPONSE_KIND_CLARIFICATION
            or answer.outcome == "guardrail_clarification"
        )
        if self._m_routes is not None:
            outcome = "clarification" if clarification else answer.outcome
            self._m_routes.labels(route, outcome).inc()
        if options.session_id:
            self.memory.observe(
                options.session_id,
                SessionTurn(
                    question=question,
                    resolved_question=self._last_resolved or question,
                    route=route,
                    outcome=answer.outcome,
                    clarification_pending=clarification,
                ),
            )
        self._last_resolved = ""

    # -- per-route runners ----------------------------------------------------

    def _run_conversational(self, question: str) -> UniAskAnswer:
        reply = self.conversational.respond(question)
        return UniAskAnswer(
            question=question,
            answer_text=reply.text,
            raw_answer=reply.text,
            outcome=OUTCOME_ANSWERED,
        )

    def _run_multi_hop(self, engine, question: str, filters, ctx) -> UniAskAnswer:
        from repro.core.engine import CONTENT_BLOCKED_TEXT

        screening = engine._screen(question, ctx)
        if screening.blocked:
            return UniAskAnswer(
                question=question,
                answer_text=CONTENT_BLOCKED_TEXT,
                raw_answer="",
                outcome=OUTCOME_CONTENT_FILTER,
            )
        decomposition = self.multihop.decompose(question)
        if len(decomposition.hops) < 2:
            # A misfired connective must never make the answer worse than
            # the single-path pipeline: degrade to a plain lookup (the
            # screen already ran, but re-screening is idempotent).
            return engine._ask_staged(question, filters, ctx)

        searcher = engine.searcher
        take_report = getattr(searcher, "take_scatter_report", None)
        scatter = None
        rankings: dict[str, list] = {}
        with ctx.trace.span(
            spans.STAGE_RETRIEVAL, hops=len(decomposition.hops)
        ) as span:
            span.set("rule", decomposition.rule)
            for index, hop in enumerate(decomposition.hops):
                with ctx.trace.span(
                    spans.STAGE_SUBQUERY, index=index, question_chars=len(hop)
                ) as hop_span:
                    results = searcher.search(hop, filters=filters, ctx=ctx)
                    hop_span.set("results", len(results))
                rankings[f"hop_{index + 1}"] = results
                if take_report is not None:
                    report = take_report()
                    if report is not None and (scatter is None or report.partial):
                        scatter = report
            span.set("results", sum(len(r) for r in rankings.values()))
        engine._last_scatter = scatter

        config = searcher.config
        with ctx.trace.span(
            spans.STAGE_FUSION, sources=len(rankings), multi_hop=True
        ) as span:
            fused = reciprocal_rank_fusion(
                rankings, c=config.rrf_c, top_n=config.final_n
            )
            span.set("candidates", len(fused))
        engine._m_retrieved.observe(float(len(fused)))
        return engine._complete_from_documents(question, fused, ctx)

    def _run_structured(self, engine, question: str, filters, ctx) -> UniAskAnswer:
        from repro.core.engine import CONTENT_BLOCKED_TEXT

        screening = engine._screen(question, ctx)
        if screening.blocked:
            return UniAskAnswer(
                question=question,
                answer_text=CONTENT_BLOCKED_TEXT,
                raw_answer="",
                outcome=OUTCOME_CONTENT_FILTER,
            )
        # Retrieval still runs: its top chunks are the citation context for
        # rendered rows, and the generative fallback when no plan succeeds.
        documents = engine._retrieve(question, filters, ctx)
        context = documents[: engine.config.generation.context_size]

        result = None
        if self.structured is not None:
            with ctx.trace.span(spans.STAGE_STRUCTURED_PLAN) as span:
                result = self.structured.run(question)
                if result.plan is not None:
                    span.set("table", result.plan.table)
                    span.set("predicates", len(result.plan.predicates))
                span.set("attempts", len(result.attempts))
                span.set("repaired", result.repaired)
                if result.error:
                    span.set("error", result.error)
        if result is not None and result.ok:
            with ctx.trace.span(spans.STAGE_STRUCTURED_EXEC) as span:
                rendered = render_structured_answer(question, result, context)
                span.set("rows", len(result.rows))
                if result.count is not None:
                    span.set("count", result.count)
            citations = engine._resolve_citations(rendered, context, ctx)
            return UniAskAnswer(
                question=question,
                answer_text=rendered,
                raw_answer=rendered,
                outcome=OUTCOME_ANSWERED,
                citations=citations,
                documents=tuple(documents),
                context=tuple(context),
            )
        # No executable plan even after repair: degrade to the generative
        # pipeline over the already retrieved documents.
        return engine._complete_from_documents(question, documents, ctx)

    def _run_follow_up(self, engine, question: str, options, ctx) -> UniAskAnswer:
        with ctx.trace.span(spans.STAGE_AGENT_REWRITE) as span:
            resolved = self.followup.resolve(
                question, self.memory.last_turn(options.session_id)
            )
            span.set("rewritten", resolved.question != question)
            span.set("merged_clarification", resolved.merged_clarification)
        self._last_resolved = resolved.question
        answer = engine._ask_staged(resolved.question, options.filters, ctx)
        # The response surfaces the user's words, not the internal rewrite.
        return replace(answer, question=question)
