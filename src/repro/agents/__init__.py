"""Multi-agent query orchestration in front of the UniAsk engine.

The subsystem reproduces the agent roster of ReportGenAI-style systems
over the banking knowledge base: an :class:`~repro.agents.orchestrator.Orchestrator`
classifies intent and routes each question to a specialist — canned
conversational replies, the ordinary lookup pipeline, multi-hop
decomposition fused through the existing RRF machinery, a from-scratch
structured mini query engine over the KB's error/procedure tables with a
Validator repair loop, and session follow-up resolution against bounded
per-session memory.

Off by default: an agents-off deployment is byte-identical to one built
before this subsystem existed (see :class:`~repro.agents.config.AgentsConfig`).

Implementation note: ``repro.api.types`` and ``repro.core.config`` import
the leaf modules :mod:`repro.agents.routes` / :mod:`repro.agents.config`,
which executes this ``__init__`` — so only those leaves load eagerly here;
every re-export that reaches into ``repro.core`` resolves lazily via
module ``__getattr__`` to keep the import graph acyclic (the same idiom
as ``repro.api``).
"""

from repro.agents.config import AgentsConfig
from repro.agents.routes import (
    ALL_ROUTES,
    ROUTE_CONVERSATIONAL,
    ROUTE_FOLLOW_UP,
    ROUTE_LOOKUP,
    ROUTE_MULTI_HOP,
    ROUTE_STRUCTURED,
)

#: Lazily resolved re-exports (module path, attribute); these modules
#: transitively import ``repro.core.answer``, so importing them at module
#: level here would cycle through ``repro.core.__init__``.
_LAZY = {
    "ConversationalAgent": ("repro.agents.conversational", "ConversationalAgent"),
    "Decomposition": ("repro.agents.multihop", "Decomposition"),
    "FollowUpAgent": ("repro.agents.followup", "FollowUpAgent"),
    "IntentClassifier": ("repro.agents.intent", "IntentClassifier"),
    "MultiHopAgent": ("repro.agents.multihop", "MultiHopAgent"),
    "Orchestrator": ("repro.agents.orchestrator", "Orchestrator"),
    "PlanError": ("repro.agents.structured", "PlanError"),
    "PlanValidator": ("repro.agents.structured", "PlanValidator"),
    "Predicate": ("repro.agents.structured", "Predicate"),
    "ResolvedFollowUp": ("repro.agents.followup", "ResolvedFollowUp"),
    "RoutePrediction": ("repro.agents.intent", "RoutePrediction"),
    "SessionMemory": ("repro.agents.memory", "SessionMemory"),
    "SessionTurn": ("repro.agents.memory", "SessionTurn"),
    "StructuredAgent": ("repro.agents.structured", "StructuredAgent"),
    "StructuredCatalog": ("repro.agents.structured", "StructuredCatalog"),
    "StructuredResult": ("repro.agents.structured", "StructuredResult"),
    "TablePlan": ("repro.agents.structured", "TablePlan"),
    "TtlLruStore": ("repro.agents.memory", "TtlLruStore"),
    "execute_plan": ("repro.agents.structured", "execute_plan"),
    "render_structured_answer": ("repro.agents.structured", "render_structured_answer"),
}

__all__ = [
    "ALL_ROUTES",
    "AgentsConfig",
    "ROUTE_CONVERSATIONAL",
    "ROUTE_FOLLOW_UP",
    "ROUTE_LOOKUP",
    "ROUTE_MULTI_HOP",
    "ROUTE_STRUCTURED",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    try:
        module_path, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_path), attribute)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
