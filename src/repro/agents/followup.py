"""The FollowUp agent: anaphora resolution against session memory.

Two kinds of continuation reach this agent:

* **anaphoric qualifiers** — "E per i clienti business?" after "Come posso
  sbloccare la carta di credito?".  The qualifier is grafted onto the
  previous turn's resolved question, so retrieval sees the full topic
  instead of a contentless fragment.
* **clarification replies** — when the previous answer ended with a typed
  clarification request (:data:`~repro.llm.base.RESPONSE_KIND_CLARIFICATION`),
  the next message in the session is the user *supplying the missing
  details*; it is appended to the original question rather than treated as
  a fresh one.

Resolution is deterministic string surgery — the resolved question then
takes the ordinary lookup pipeline, so follow-up answers inherit every
guardrail unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.agents.memory import SessionTurn

#: Leading connective tokens stripped off an anaphoric qualifier.  Only the
#: discourse glue goes ("E", "ed", "invece", "quindi", "anche"); the
#: content-bearing remainder ("per i clienti business") is kept verbatim.
_LEAD_CONNECTIVES_RE = re.compile(
    r"^(?:e|ed|invece|quindi|anche|e\s+invece|e\s+anche|lo\s+stesso(?:\s+vale)?)\s+",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class ResolvedFollowUp:
    """One resolved follow-up turn.

    Attributes:
        question: the rewritten, self-contained question handed to the
            lookup pipeline.
        source_question: the previous turn's question it resolved against.
        merged_clarification: True when the turn answered a pending
            clarification request (merge semantics) rather than adding an
            anaphoric qualifier.
    """

    question: str
    source_question: str
    merged_clarification: bool


class FollowUpAgent:
    """Rewrites session continuations into self-contained questions."""

    def resolve(self, question: str, last_turn: SessionTurn | None) -> ResolvedFollowUp:
        """Resolve *question* against the session's most recent turn.

        Without a previous turn there is nothing to resolve: the question
        comes back unchanged (the Orchestrator then runs it as a lookup).
        """
        if last_turn is None:
            return ResolvedFollowUp(
                question=question, source_question="", merged_clarification=False
            )
        base = last_turn.resolved_question.strip().rstrip("?").rstrip()
        if last_turn.clarification_pending:
            detail = question.strip()
            return ResolvedFollowUp(
                question=f"{base} {detail}" if detail else last_turn.resolved_question,
                source_question=last_turn.resolved_question,
                merged_clarification=True,
            )
        qualifier = _LEAD_CONNECTIVES_RE.sub("", question.strip(), count=1)
        qualifier = qualifier.strip().rstrip("?").rstrip()
        if not qualifier:
            return ResolvedFollowUp(
                question=last_turn.resolved_question,
                source_question=last_turn.resolved_question,
                merged_clarification=False,
            )
        return ResolvedFollowUp(
            question=f"{base} {qualifier}?",
            source_question=last_turn.resolved_question,
            merged_clarification=False,
        )
