"""Multi-hop decomposition.

Comparative and conjunctive questions ("Qual è la differenza tra bloccare
la carta di credito e chiudere il conto corrente?") retrieve poorly as one
query: the two operations' terms dilute each other and one side's pages
crowd the other's out of the top ranks.  The multi-hop agent splits such a
question into its constituent sub-queries; the Orchestrator then retrieves
each hop independently and fuses the per-hop rankings through the *same*
:func:`~repro.search.fusion.reciprocal_rank_fusion` used everywhere else —
so the fused scores obey the exact bit-for-bit sum rules explain reports
already verify (``sum(rrf_hop_*) == fused score``).

Decomposition is deterministic pattern surgery, not an LLM call: the same
connectives the intent classifier keyed on are reused as split points.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_DIFFERENCE_RE = re.compile(
    r"\bdifferenz[ae]\b.*?\btra\b\s*(?P<body>.+)$", re.IGNORECASE | re.DOTALL
)
_CONFRONTA_RE = re.compile(
    r"^confronta\s+(?P<left>.+?)\s+(?:con|e)\s+(?P<right>.+)$",
    re.IGNORECASE | re.DOTALL,
)
_SIA_CHE_RE = re.compile(
    r"\bsia\b\s*(?P<left>.+?)\s*\b(?:sia|che)\b\s*(?P<right>.+)$",
    re.IGNORECASE | re.DOTALL,
)
_INOLTRE_RE = re.compile(
    r"^(?P<left>.+?)\s+e\s+inoltre\s+come\s+(?P<right>.+)$",
    re.IGNORECASE | re.DOTALL,
)


def _clean(fragment: str) -> str:
    return fragment.strip().strip("?.,;:").strip()


@dataclass(frozen=True)
class Decomposition:
    """One decomposed multi-hop question.

    Attributes:
        hops: the sub-queries to retrieve independently, in question order.
        rule: which surgery produced them (span/debugging attribute).
    """

    hops: tuple[str, ...]
    rule: str


class MultiHopAgent:
    """Splits comparative/conjunctive questions into retrieval hops."""

    def __init__(self, max_hops: int = 4) -> None:
        if max_hops < 2:
            raise ValueError("max_hops must be at least 2")
        self._max_hops = max_hops

    def decompose(self, question: str) -> Decomposition:
        """Decompose *question*; fewer than 2 hops means "not multi-hop".

        The caller (the Orchestrator) treats a degenerate decomposition as
        a plain lookup — a misfired connective must never make an answer
        worse than the single-path pipeline would have produced.
        """
        match = _DIFFERENCE_RE.search(question)
        if match:
            parts = re.split(r"\s+e\s+", match.group("body"), maxsplit=self._max_hops - 1)
            hops = tuple(h for h in (_clean(p) for p in parts) if h)
            if len(hops) >= 2:
                return Decomposition(hops=hops[: self._max_hops], rule="differenza_tra")

        match = _CONFRONTA_RE.match(question.strip())
        if match:
            hops = tuple(
                h for h in (_clean(match.group("left")), _clean(match.group("right"))) if h
            )
            if len(hops) == 2:
                return Decomposition(hops=hops, rule="confronta")

        match = _SIA_CHE_RE.search(question)
        if match:
            hops = tuple(
                h for h in (_clean(match.group("left")), _clean(match.group("right"))) if h
            )
            if len(hops) == 2:
                return Decomposition(hops=hops, rule="sia_che")

        match = _INOLTRE_RE.match(question.strip())
        if match:
            hops = tuple(
                h for h in (_clean(match.group("left")), _clean(match.group("right"))) if h
            )
            if len(hops) == 2:
                return Decomposition(hops=hops, rule="e_inoltre")

        return Decomposition(hops=(), rule="none")
