"""The structured route: a from-scratch mini query engine over KB tables.

The synthetic knowledge base is not just prose — its error pages and
procedure pages are *typed records rendered as HTML*.  ReportGenAI answers
such questions by compiling them to SQL (SQLMaker) and repairing failed
plans with a Validator agent; this module reproduces that loop end to end
without a database:

1. **Typed table extraction** (:class:`StructuredCatalog`): every store
   document is parsed (:func:`repro.htmlproc.parser.parse_html`) and the
   error/procedure pages are lifted into two in-memory tables —

   * ``error_codes(code, system, resolution, doc_id, title)``
   * ``procedures(operation, system, segment, domain, doc_id, title)``

2. **A tiny AST** (:class:`TablePlan` / :class:`Predicate`): the query
   language is deliberately minimal — conjunctive predicates (``eq`` /
   ``contains`` / ``prefix``) over one table, optional ``count``
   aggregation, a row limit.

3. **Compiler** (:class:`StructuredCompiler`): pattern-compiles the
   question ("errore ERR-1003", "Quali errori sono noti per CreditFlow?",
   "Quante procedure riguardano FinWork?") into a plan.

4. **Validator + executor** (:class:`PlanValidator`, :func:`execute_plan`):
   the validator type-checks the plan against the catalog schema and the
   executor runs it deterministically (rows ordered by primary key).

5. **Repair agent** (:class:`StructuredAgent`): a failed plan — schema
   error or empty result — is retried through an ordered list of repair
   strategies (normalize identifier case, relax ``eq`` to ``contains``,
   drop unknown predicates, re-derive predicates from the question's
   identifier tokens), ReportGenAI's "SQL Validator fixes failed SQL"
   loop.  Every attempt is recorded so traces and tests can see exactly
   which repair saved the query.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.htmlproc.parser import parse_html

#: Table names of the catalog.
TABLE_ERROR_CODES = "error_codes"
TABLE_PROCEDURES = "procedures"

#: Predicate operators of the mini AST.
OP_EQ = "eq"
OP_CONTAINS = "contains"
OP_PREFIX = "prefix"
ALL_OPS = (OP_EQ, OP_CONTAINS, OP_PREFIX)

_ERROR_TITLE_RE = re.compile(r"^Errore (ERR-\d+) in (.+)$")
_PROCEDURE_LEAD_RE = re.compile(
    r"la procedura per (.+?) tramite l'applicativo (.+?), riservata ai (.+?)\.",
)
_CODE_RE = re.compile(r"\berr[\s-]?(\d{3,5})\b", re.IGNORECASE)


class PlanError(Exception):
    """A structured plan failed validation or could not be compiled."""


@dataclass(frozen=True)
class Predicate:
    """One conjunctive filter of a table plan."""

    column: str
    op: str
    value: str


@dataclass(frozen=True)
class TablePlan:
    """The mini query AST: one table, conjunctive predicates, projection.

    Attributes:
        table: target table name.
        predicates: conjunctive filters (all must hold).
        aggregate: "" for row results, ``"count"`` for a row count.
        limit: maximum rows returned (ignored by aggregates).
    """

    table: str
    predicates: tuple[Predicate, ...] = ()
    aggregate: str = ""
    limit: int = 5


@dataclass(frozen=True)
class StructuredTable:
    """One extracted table: a schema plus deterministic rows."""

    name: str
    columns: tuple[str, ...]
    rows: tuple[dict, ...]


@dataclass(frozen=True)
class StructuredResult:
    """The outcome of one structured-agent run.

    Attributes:
        plan: the plan that finally executed (None when every attempt
            failed).
        rows: the matched rows (empty for failures and counts).
        count: the aggregate count (None for row results).
        attempts: the repair ledger — ``"initial"`` plus one entry per
            repair strategy tried, in order.
        repaired: True when a repair strategy (not the initial plan)
            produced the final result.
        error: the last failure message when the run did not succeed.
    """

    plan: TablePlan | None
    rows: tuple[dict, ...] = ()
    count: int | None = None
    attempts: tuple[str, ...] = ()
    repaired: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        """True when the run produced rows or an aggregate."""
        return self.plan is not None and (bool(self.rows) or self.count is not None)


class StructuredCatalog:
    """The typed tables extracted from the knowledge-base store."""

    def __init__(self, tables: dict[str, StructuredTable]) -> None:
        self.tables = tables

    @classmethod
    def from_store(cls, store) -> "StructuredCatalog":
        """Extract the error-code and procedure tables from *store*.

        Extraction works purely from the documents' parsed HTML (title +
        paragraphs), never from generator ground truth — the same pages
        the retrieval index sees are the rows the mini engine queries.
        """
        error_rows: list[dict] = []
        procedure_rows: list[dict] = []
        for document in store.all_documents():
            parsed = parse_html(document.html)
            title_match = _ERROR_TITLE_RE.match(parsed.title)
            if title_match:
                resolution = next(
                    (p for p in parsed.paragraphs if p.startswith("Per risolvere")), ""
                )
                error_rows.append(
                    {
                        "code": title_match.group(1),
                        "system": title_match.group(2),
                        "resolution": resolution,
                        "doc_id": document.doc_id,
                        "title": parsed.title,
                    }
                )
                continue
            for paragraph in parsed.paragraphs:
                lead = _PROCEDURE_LEAD_RE.search(paragraph)
                if lead:
                    procedure_rows.append(
                        {
                            "operation": lead.group(1),
                            "system": lead.group(2),
                            "segment": lead.group(3),
                            "domain": document.domain,
                            "doc_id": document.doc_id,
                            "title": parsed.title,
                        }
                    )
                    break
        error_rows.sort(key=lambda row: row["code"])
        procedure_rows.sort(key=lambda row: row["doc_id"])
        return cls(
            {
                TABLE_ERROR_CODES: StructuredTable(
                    name=TABLE_ERROR_CODES,
                    columns=("code", "system", "resolution", "doc_id", "title"),
                    rows=tuple(error_rows),
                ),
                TABLE_PROCEDURES: StructuredTable(
                    name=TABLE_PROCEDURES,
                    columns=("operation", "system", "segment", "domain", "doc_id", "title"),
                    rows=tuple(procedure_rows),
                ),
            }
        )

    def systems(self) -> tuple[str, ...]:
        """Every application-system name mentioned by any table row."""
        names = {
            row["system"]
            for table in self.tables.values()
            for row in table.rows
            if "system" in table.columns
        }
        return tuple(sorted(names))


class PlanValidator:
    """Type-checks a plan against the catalog schema (the Validator agent)."""

    def __init__(self, catalog: StructuredCatalog) -> None:
        self._catalog = catalog

    def validate(self, plan: TablePlan) -> None:
        """Raise :class:`PlanError` when *plan* cannot execute."""
        table = self._catalog.tables.get(plan.table)
        if table is None:
            raise PlanError(f"unknown table {plan.table!r}")
        if plan.aggregate not in ("", "count"):
            raise PlanError(f"unknown aggregate {plan.aggregate!r}")
        if plan.limit <= 0:
            raise PlanError("limit must be positive")
        for predicate in plan.predicates:
            if predicate.column not in table.columns:
                raise PlanError(
                    f"unknown column {predicate.column!r} of table {plan.table!r}"
                )
            if predicate.op not in ALL_OPS:
                raise PlanError(f"unknown operator {predicate.op!r}")
            if not predicate.value:
                raise PlanError(f"empty value for column {predicate.column!r}")


def _matches(row: dict, predicate: Predicate) -> bool:
    cell = str(row.get(predicate.column, "")).casefold()
    value = predicate.value.casefold()
    if predicate.op == OP_EQ:
        return cell == value
    if predicate.op == OP_PREFIX:
        return cell.startswith(value)
    return value in cell  # OP_CONTAINS


def execute_plan(plan: TablePlan, catalog: StructuredCatalog) -> tuple[tuple[dict, ...], int]:
    """Run a validated *plan*; returns (limited rows, full match count)."""
    table = catalog.tables[plan.table]
    matched = [
        row
        for row in table.rows
        if all(_matches(row, predicate) for predicate in plan.predicates)
    ]
    return tuple(matched[: plan.limit]), len(matched)


class StructuredCompiler:
    """Pattern-compiles a question into a :class:`TablePlan`."""

    def __init__(self, catalog: StructuredCatalog, limit: int = 5) -> None:
        self._catalog = catalog
        self._limit = limit

    def compile(self, question: str) -> TablePlan:
        """Compile *question*; raises :class:`PlanError` when no pattern fits."""
        code_match = _CODE_RE.search(question)
        if code_match:
            code = f"ERR-{code_match.group(1)}"
            return TablePlan(
                table=TABLE_ERROR_CODES,
                predicates=(Predicate("code", OP_EQ, code),),
                limit=self._limit,
            )

        lowered = question.lower()
        aggregate = "count" if re.match(r"^\s*quant[ei]\b", lowered) else ""
        system = self._mentioned_system(question)
        if re.search(r"\b(errori|codici)\b", lowered):
            predicates = (
                (Predicate("system", OP_EQ, system),) if system else ()
            )
            if not predicates and not aggregate:
                raise PlanError("error-table question names no known system")
            return TablePlan(
                table=TABLE_ERROR_CODES,
                predicates=predicates,
                aggregate=aggregate,
                limit=self._limit,
            )
        if re.search(r"\bprocedure\b", lowered):
            if system:
                predicates = (Predicate("system", OP_EQ, system),)
            else:
                segment = self._mentioned_segment(question)
                if segment:
                    predicates = (Predicate("segment", OP_CONTAINS, segment),)
                elif aggregate:
                    predicates = ()
                else:
                    raise PlanError("procedure-table question names no known system")
            return TablePlan(
                table=TABLE_PROCEDURES,
                predicates=predicates,
                aggregate=aggregate,
                limit=self._limit,
            )
        raise PlanError("no structured pattern matched the question")

    def _mentioned_system(self, question: str) -> str:
        lowered = question.casefold()
        for system in self._catalog.systems():
            if system.casefold() in lowered:
                return system
        return ""

    def _mentioned_segment(self, question: str) -> str:
        table = self._catalog.tables.get(TABLE_PROCEDURES)
        if table is None:
            return ""
        segments = sorted({row["segment"] for row in table.rows})
        lowered = question.casefold()
        for segment in segments:
            if segment.casefold() in lowered:
                return segment
        return ""


class StructuredAgent:
    """Compile → validate → execute, with the Validator repair loop.

    Args:
        catalog: the extracted table catalog.
        max_repair_attempts: repair strategies tried after the initial
            plan fails (schema error or empty result).
        limit: row limit handed to compiled plans.
    """

    def __init__(
        self,
        catalog: StructuredCatalog,
        max_repair_attempts: int = 3,
        limit: int = 5,
    ) -> None:
        self.catalog = catalog
        self.validator = PlanValidator(catalog)
        self.compiler = StructuredCompiler(catalog, limit=limit)
        self._max_repairs = max_repair_attempts
        self._limit = limit

    def run(self, question: str) -> StructuredResult:
        """Answer *question* over the catalog, repairing failed plans."""
        attempts: list[str] = []
        try:
            plan: TablePlan | None = self.compiler.compile(question)
            attempts.append("initial")
        except PlanError as error:
            return StructuredResult(plan=None, attempts=("compile",), error=str(error))

        error_text = ""
        for attempt_no in range(self._max_repairs + 1):
            if attempt_no > 0:
                plan, strategy = self._repair(plan, question, error_text, attempt_no)
                if plan is None:
                    break
                attempts.append(strategy)
            try:
                self.validator.validate(plan)
                rows, total = execute_plan(plan, self.catalog)
            except PlanError as error:
                error_text = str(error)
                continue
            if plan.aggregate == "count":
                return StructuredResult(
                    plan=plan,
                    count=total,
                    attempts=tuple(attempts),
                    repaired=attempt_no > 0,
                )
            if rows:
                return StructuredResult(
                    plan=plan,
                    rows=rows,
                    attempts=tuple(attempts),
                    repaired=attempt_no > 0,
                )
            error_text = "plan matched no rows"
        return StructuredResult(
            plan=plan, attempts=tuple(attempts), error=error_text or "no plan executed"
        )

    # -- repair strategies ----------------------------------------------------

    def _repair(
        self, plan: TablePlan | None, question: str, error: str, attempt_no: int
    ) -> tuple[TablePlan | None, str]:
        """The ordered repair ladder; returns (new plan, strategy name)."""
        if plan is None:
            return None, ""
        if attempt_no == 1:
            return self._repair_schema(plan), "repair_schema"
        if attempt_no == 2:
            return self._repair_relax(plan), "repair_relax"
        if attempt_no == 3:
            return self._repair_rederive(plan, question), "repair_rederive"
        return None, ""

    def _repair_schema(self, plan: TablePlan) -> TablePlan:
        """Drop predicates the schema rejects; normalize identifier case.

        A plan over an unknown table is retargeted to the table whose
        schema covers most of its predicate columns — the mini-engine
        equivalent of the Validator rewriting a bad ``FROM`` clause.
        """
        table = self.catalog.tables.get(plan.table)
        if table is None:
            best_name, best_cover = TABLE_ERROR_CODES, -1
            for name, candidate in self.catalog.tables.items():
                cover = sum(
                    1 for p in plan.predicates if p.column in candidate.columns
                )
                if cover > best_cover:
                    best_name, best_cover = name, cover
            plan = replace(plan, table=best_name)
            table = self.catalog.tables[best_name]
        kept = tuple(
            replace(p, op=p.op if p.op in ALL_OPS else OP_CONTAINS)
            for p in plan.predicates
            if p.column in table.columns and p.value
        )
        kept = tuple(
            replace(p, value=p.value.upper()) if p.column == "code" else p
            for p in kept
        )
        return replace(plan, predicates=kept, limit=max(plan.limit, 1))

    def _repair_relax(self, plan: TablePlan) -> TablePlan:
        """Relax exact matches to substring matches."""
        return replace(
            plan,
            predicates=tuple(
                replace(p, op=OP_CONTAINS) if p.op in (OP_EQ, OP_PREFIX) else p
                for p in plan.predicates
            ),
        )

    def _repair_rederive(self, plan: TablePlan, question: str) -> TablePlan | None:
        """Rebuild predicates from the question's identifier tokens.

        The last resort: forget the failed predicates and match any
        identifier-looking token (codes, CamelCase system names) against
        the table's text columns.
        """
        from repro.llm.simulated import _identifier_tokens

        identifiers = sorted(_identifier_tokens(question))
        if not identifiers:
            return None
        table = self.catalog.tables[plan.table]
        column = "code" if "code" in table.columns else table.columns[0]
        return replace(
            plan,
            predicates=(Predicate(column, OP_CONTAINS, identifiers[0]),),
        )


def render_structured_answer(
    question: str, result: StructuredResult, context: list
) -> str:
    """Render a :class:`StructuredResult` as a cited Italian answer.

    Rows whose document appears in the retrieval *context* get a standard
    ``[docK]`` citation marker, so the ordinary citation-resolution stage
    maps them to chunks exactly as it does for generated answers.
    """
    positions = {
        chunk.record.doc_id: index + 1 for index, chunk in enumerate(context)
    }

    def cite(doc_id: str) -> str:
        position = positions.get(doc_id)
        return f" [doc{position}]" if position is not None else ""

    if result.count is not None and not result.rows:
        table_label = (
            "codici di errore" if result.plan.table == TABLE_ERROR_CODES else "procedure"
        )
        criteria = ", ".join(
            f"{p.column}={p.value}" for p in result.plan.predicates
        )
        suffix = f" per {criteria}" if criteria else ""
        return (
            f"Nella documentazione risultano {result.count} {table_label}{suffix}."
        )

    parts: list[str] = []
    for row in result.rows:
        if result.plan is not None and result.plan.table == TABLE_ERROR_CODES:
            resolution = row["resolution"].rstrip(".")
            parts.append(
                f"L'errore {row['code']} è un errore applicativo di {row['system']}. "
                f"{resolution}{cite(row['doc_id'])}."
            )
        else:
            parts.append(
                f"La pagina '{row['title']}' descrive la procedura per "
                f"{row['operation']} tramite {row['system']}, riservata ai "
                f"{row['segment']}{cite(row['doc_id'])}."
            )
    return " ".join(parts)
